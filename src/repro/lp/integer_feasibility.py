"""Exact search for non-negative integer solutions of 0/1 equation systems.

The paper's program P(R1, ..., Rm) (Equation 14) asks for non-negative
integers x_t, one per join tuple, whose sums along each marginal
constraint hit prescribed values.  For m >= 3 the constraint matrix is
not totally unimodular and deciding integer feasibility is NP-complete
for cyclic schemas (Theorem 4), so this module implements a worst-case
exponential but *exact* branch-and-prune search.  It is the library's
oracle: every polynomial algorithm is validated against it on small
instances, and it is the honest solver for the NP-hard side of the
dichotomy (used by the benchmarks that exhibit the dichotomy's shape).

The search is depth-first over variables with three prunings:

* residuals never go negative;
* a constraint with no unassigned variables must have residual zero;
* a constraint's residual can never exceed the sum over its unassigned
  variables of their upper bounds (each variable is bounded by the
  minimum residual among its constraints);

plus forced-value propagation: the last unassigned variable of a
constraint must equal that constraint's residual exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import SearchLimitExceeded

DEFAULT_NODE_BUDGET = 5_000_000


@dataclass(frozen=True)
class ZeroOneSystem:
    """A sparse 0/1 equation system ``Ax = b`` over x >= 0 integer.

    ``var_constraints[j]`` lists the constraint indices with a 1 in
    column j; ``rhs[i]`` is the (non-negative integer) right-hand side of
    constraint i.
    """

    n_vars: int
    var_constraints: tuple[tuple[int, ...], ...]
    rhs: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.var_constraints) != self.n_vars:
            raise ValueError("var_constraints length must equal n_vars")
        if any(b < 0 for b in self.rhs):
            raise ValueError("rhs must be non-negative")

    def constraint_vars(self) -> list[list[int]]:
        out: list[list[int]] = [[] for _ in self.rhs]
        for j, constraints in enumerate(self.var_constraints):
            for c in constraints:
                out[c].append(j)
        return out

    def check_solution(self, solution: Sequence[int]) -> bool:
        """Exact verification that ``solution`` satisfies the system."""
        if len(solution) != self.n_vars or any(x < 0 for x in solution):
            return False
        totals = [0] * len(self.rhs)
        for j, x in enumerate(solution):
            if x:
                for c in self.var_constraints[j]:
                    totals[c] += x
        return totals == list(self.rhs)


class _Search:
    """DFS state shared across the enumeration generator."""

    def __init__(self, system: ZeroOneSystem, node_budget: int | None) -> None:
        self.system = system
        self.node_budget = node_budget
        self.nodes = 0
        cons_vars = system.constraint_vars()
        # Static variable order: tightest constraints first.  A variable's
        # key is the size of the smallest constraint containing it.
        def key(j: int) -> tuple:
            sizes = [len(cons_vars[c]) for c in system.var_constraints[j]]
            return (min(sizes) if sizes else 1 << 30, -len(sizes), j)

        self.order = sorted(range(system.n_vars), key=key)
        self.residual = list(system.rhs)
        self.remaining = [len(vs) for vs in cons_vars]
        self.assignment = [0] * system.n_vars

    def _tick(self) -> None:
        self.nodes += 1
        if self.node_budget is not None and self.nodes > self.node_budget:
            raise SearchLimitExceeded(
                f"integer search exceeded {self.node_budget} nodes"
            )

    def _upper_bound(self, var: int) -> int:
        constraints = self.system.var_constraints[var]
        if not constraints:
            return 0  # an unconstrained variable gains nothing by being > 0
        return min(self.residual[c] for c in constraints)

    def _prune(self, depth: int) -> bool:
        """True if the current partial assignment cannot be completed.

        Checks, for every constraint, that the residual is attainable by
        the unassigned variables' upper bounds.
        """
        unassigned = self.order[depth:]
        # Sum of upper bounds contributed to each constraint.
        contribution = [0] * len(self.residual)
        for var in unassigned:
            ub = self._upper_bound(var)
            if ub:
                for c in self.system.var_constraints[var]:
                    contribution[c] += ub
        for c, residual in enumerate(self.residual):
            if residual > contribution[c]:
                return True
        return False

    def enumerate(self, depth: int) -> Iterator[list[int]]:
        self._tick()
        if depth == len(self.order):
            if all(r == 0 for r in self.residual):
                yield list(self.assignment)
            return
        if self._prune(depth):
            return
        var = self.order[depth]
        constraints = self.system.var_constraints[var]
        ub = self._upper_bound(var)
        # Forced value: a constraint in which `var` is the last unassigned
        # variable pins the value to its residual.
        forced: int | None = None
        for c in constraints:
            if self.remaining[c] == 1:
                if forced is None:
                    forced = self.residual[c]
                elif forced != self.residual[c]:
                    return  # two constraints disagree
        if forced is not None and forced > ub:
            return
        values = (forced,) if forced is not None else range(ub, -1, -1)
        for c in constraints:
            self.remaining[c] -= 1
        for value in values:
            self.assignment[var] = value
            for c in constraints:
                self.residual[c] -= value
            yield from self.enumerate(depth + 1)
            for c in constraints:
                self.residual[c] += value
        self.assignment[var] = 0
        for c in constraints:
            self.remaining[c] += 1


def find_solution(
    system: ZeroOneSystem, node_budget: int | None = DEFAULT_NODE_BUDGET
) -> list[int] | None:
    """One non-negative integer solution, or None if infeasible.

    Raises :class:`SearchLimitExceeded` if the node budget runs out
    before the search is complete — the honest outcome for an NP-hard
    problem.
    """
    search = _Search(system, node_budget)
    for solution in search.enumerate(0):
        return solution
    return None


def enumerate_solutions(
    system: ZeroOneSystem,
    limit: int | None = None,
    node_budget: int | None = DEFAULT_NODE_BUDGET,
) -> list[list[int]]:
    """All solutions (up to ``limit``), e.g. to count the witnesses of the
    Section 3 family (exactly 2^(n-1) of them)."""
    out: list[list[int]] = []
    for solution in iter_solutions(system, node_budget):
        out.append(solution)
        if limit is not None and len(out) >= limit:
            break
    return out


def iter_solutions(
    system: ZeroOneSystem,
    node_budget: int | None = DEFAULT_NODE_BUDGET,
) -> Iterator[list[int]]:
    """Lazily stream all non-negative integer solutions.

    Each yielded list is a fresh copy; consuming a prefix costs only the
    search work needed to reach it, so 'find the first k witnesses' does
    not pay for the full (potentially exponential) enumeration.
    """
    search = _Search(system, node_budget)
    for solution in search.enumerate(0):
        yield list(solution)


def count_solutions(
    system: ZeroOneSystem, node_budget: int | None = DEFAULT_NODE_BUDGET
) -> int:
    search = _Search(system, node_budget)
    return sum(1 for _ in search.enumerate(0))


def is_feasible(
    system: ZeroOneSystem, node_budget: int | None = DEFAULT_NODE_BUDGET
) -> bool:
    return find_solution(system, node_budget) is not None
