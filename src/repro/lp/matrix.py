"""Exact rational linear algebra.

Dense matrices over ``fractions.Fraction`` with the operations the
consistency layer needs: reduced row echelon form, rank, solving
``Ax = b``, and nullspace bases.  Exactness matters: the paper's
feasibility questions (Lemma 2(3), the Hoffman-Kruskal integrality
argument, Carathéodory sparsification in Theorem 5) are all decided over
the rationals, and floating point would turn certificates into guesses.

Matrices are lists of lists of Fractions; all functions are pure
(inputs are copied, never mutated).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

Row = list[Fraction]
Matrix = list[Row]


def to_fraction_matrix(rows: Iterable[Sequence]) -> Matrix:
    """Deep-copy any numeric matrix into Fractions."""
    return [[Fraction(x) for x in row] for row in rows]


def to_fraction_vector(values: Iterable) -> Row:
    return [Fraction(x) for x in values]


def identity(n: int) -> Matrix:
    return [
        [Fraction(1) if i == j else Fraction(0) for j in range(n)]
        for i in range(n)
    ]


def mat_vec(matrix: Matrix, vector: Sequence[Fraction]) -> Row:
    return [
        sum((row[j] * vector[j] for j in range(len(vector))), Fraction(0))
        for row in matrix
    ]


def transpose(matrix: Matrix) -> Matrix:
    if not matrix:
        return []
    return [list(col) for col in zip(*matrix)]


def rref(matrix: Iterable[Sequence]) -> tuple[Matrix, list[int]]:
    """Reduced row echelon form and the list of pivot column indices."""
    m = to_fraction_matrix(matrix)
    if not m:
        return [], []
    rows, cols = len(m), len(m[0])
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        pivot_row = None
        for i in range(r, rows):
            if m[i][c] != 0:
                pivot_row = i
                break
        if pivot_row is None:
            continue
        m[r], m[pivot_row] = m[pivot_row], m[r]
        pivot = m[r][c]
        m[r] = [x / pivot for x in m[r]]
        for i in range(rows):
            if i != r and m[i][c] != 0:
                factor = m[i][c]
                m[i] = [a - factor * b for a, b in zip(m[i], m[r])]
        pivots.append(c)
        r += 1
    return m, pivots


def rank(matrix: Iterable[Sequence]) -> int:
    _, pivots = rref(matrix)
    return len(pivots)


def solve(matrix: Iterable[Sequence], rhs: Sequence) -> Row | None:
    """One solution of ``Ax = b`` over the rationals, or None if
    inconsistent (free variables are set to zero)."""
    a = to_fraction_matrix(matrix)
    b = to_fraction_vector(rhs)
    if len(a) != len(b):
        raise ValueError("matrix and rhs dimensions disagree")
    if not a:
        return []
    cols = len(a[0])
    augmented = [row + [b[i]] for i, row in enumerate(a)]
    reduced, pivots = rref(augmented)
    # Inconsistent iff a pivot lands in the rhs column.
    if cols in pivots:
        return None
    solution = [Fraction(0)] * cols
    for r, c in enumerate(pivots):
        solution[c] = reduced[r][cols]
    return solution


def nullspace_vector(matrix: Iterable[Sequence]) -> Row | None:
    """A non-zero vector y with ``Ay = 0``, or None if the columns are
    linearly independent.

    The Carathéodory sparsification step (Theorem 5) repeatedly asks for
    such a vector restricted to the support columns of a solution.
    """
    a = to_fraction_matrix(matrix)
    if not a or not a[0]:
        return None
    cols = len(a[0])
    reduced, pivots = rref(a)
    pivot_set = set(pivots)
    free = [c for c in range(cols) if c not in pivot_set]
    if not free:
        return None
    # Set the first free variable to 1, all other free vars to 0.
    target = free[0]
    y = [Fraction(0)] * cols
    y[target] = Fraction(1)
    for r, c in enumerate(pivots):
        y[c] = -reduced[r][target]
    return y


def determinant(matrix: Iterable[Sequence]) -> Fraction:
    """Exact determinant by fraction-free-ish Gaussian elimination."""
    m = to_fraction_matrix(matrix)
    n = len(m)
    if any(len(row) != n for row in m):
        raise ValueError("determinant requires a square matrix")
    det = Fraction(1)
    for c in range(n):
        pivot_row = None
        for r in range(c, n):
            if m[r][c] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            return Fraction(0)
        if pivot_row != c:
            m[c], m[pivot_row] = m[pivot_row], m[c]
            det = -det
        det *= m[c][c]
        inv = Fraction(1) / m[c][c]
        for r in range(c + 1, n):
            if m[r][c] != 0:
                factor = m[r][c] * inv
                m[r] = [a - factor * b for a, b in zip(m[r], m[c])]
    return det
