"""Exact two-phase simplex over the rationals.

Solves ``min c.x  subject to  Ax = b, x >= 0`` with
``fractions.Fraction`` arithmetic and Bland's anti-cycling rule, so
feasibility answers are exact decisions, never numerical guesses.  This
is the decider behind Lemma 2(3) ("P(R, S) is feasible over the
rationals") and the rational relaxation used before the integer search on
cyclic schemas.

The paper remarks (end of Section 3) that any polynomial LP algorithm can
simultaneously find a consistency witness minimizing a linear function of
the multiplicities; :func:`solve_lp` exposes exactly that interface.
Sizes here are modest (the programs are indexed by join tuples), so the
exponential worst case of simplex is irrelevant in practice and
exactness is worth far more than asymptotics.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Literal, Sequence

from ..errors import SolverError
from .matrix import Matrix, Row, to_fraction_matrix, to_fraction_vector

Status = Literal["optimal", "infeasible", "unbounded"]


@dataclass(frozen=True)
class LPResult:
    """Outcome of an exact LP solve."""

    status: Status
    objective: Fraction | None
    solution: Row | None


def _pivot(tableau: Matrix, basis: list[int], row: int, col: int) -> None:
    pivot = tableau[row][col]
    tableau[row] = [x / pivot for x in tableau[row]]
    for r in range(len(tableau)):
        if r != row and tableau[r][col] != 0:
            factor = tableau[r][col]
            tableau[r] = [
                a - factor * b for a, b in zip(tableau[r], tableau[row])
            ]
    basis[row] = col


def _simplex_iterate(
    tableau: Matrix, basis: list[int], cost: Row, n_vars: int
) -> tuple[Status, Row]:
    """Run simplex iterations on (tableau | rhs) minimizing cost.

    The reduced-cost row is recomputed from scratch each iteration; with
    Bland's rule this terminates.  Returns the status and the final
    objective row is not needed by callers (they re-derive values).
    """
    m = len(tableau)
    while True:
        # Reduced costs: c_j - c_B . B^{-1} A_j  (tableau already holds
        # B^{-1} A in its body and B^{-1} b in its last column).
        duals = [cost[basis[r]] for r in range(m)]
        entering = -1
        for j in range(n_vars):
            reduced = cost[j] - sum(
                (duals[r] * tableau[r][j] for r in range(m)), Fraction(0)
            )
            if reduced < 0:
                entering = j  # Bland: first improving index
                break
        if entering < 0:
            return "optimal", [tableau[r][-1] for r in range(m)]
        # Ratio test (Bland: smallest basis index breaks ties implicitly
        # by scanning rows in order and keeping strict improvement only).
        leaving = -1
        best: Fraction | None = None
        for r in range(m):
            coef = tableau[r][entering]
            if coef > 0:
                ratio = tableau[r][-1] / coef
                if best is None or ratio < best or (
                    ratio == best and basis[r] < basis[leaving]
                ):
                    best = ratio
                    leaving = r
        if leaving < 0:
            return "unbounded", []
        _pivot(tableau, basis, leaving, entering)


def solve_lp(
    a: Iterable[Sequence],
    b: Sequence,
    c: Sequence | None = None,
) -> LPResult:
    """Exact solution of ``min c.x : Ax = b, x >= 0``.

    With ``c`` omitted the zero objective is used, making this a pure
    feasibility check.  Rows with all-zero coefficients and non-zero rhs
    are reported infeasible immediately.
    """
    matrix = to_fraction_matrix(a)
    rhs = to_fraction_vector(b)
    if len(matrix) != len(rhs):
        raise ValueError("matrix and rhs dimensions disagree")
    n_vars = len(matrix[0]) if matrix else 0
    if c is None:
        cost = [Fraction(0)] * n_vars
    else:
        cost = to_fraction_vector(c)
        if len(cost) != n_vars:
            raise ValueError("cost vector has wrong dimension")
    # Normalize rhs to be non-negative.
    for i in range(len(matrix)):
        if rhs[i] < 0:
            matrix[i] = [-x for x in matrix[i]]
            rhs[i] = -rhs[i]
    m = len(matrix)
    if m == 0:
        return LPResult("optimal", Fraction(0), [Fraction(0)] * n_vars)

    # ---- Phase I: artificial variables, minimize their sum. ----
    tableau: Matrix = []
    for i in range(m):
        artificial = [
            Fraction(1) if j == i else Fraction(0) for j in range(m)
        ]
        tableau.append(list(matrix[i]) + artificial + [rhs[i]])
    basis = [n_vars + i for i in range(m)]
    phase1_cost = [Fraction(0)] * n_vars + [Fraction(1)] * m
    status, _ = _simplex_iterate(tableau, basis, phase1_cost, n_vars + m)
    if status == "unbounded":
        raise SolverError("phase-I objective cannot be unbounded")
    phase1_value = sum(
        (phase1_cost[basis[r]] * tableau[r][-1] for r in range(m)),
        Fraction(0),
    )
    if phase1_value > 0:
        return LPResult("infeasible", None, None)
    # Drive any artificial variables out of the basis (degenerate rows).
    for r in range(m):
        if basis[r] >= n_vars:
            pivot_col = next(
                (j for j in range(n_vars) if tableau[r][j] != 0), None
            )
            if pivot_col is None:
                continue  # redundant row; harmless to leave
            _pivot(tableau, basis, r, pivot_col)

    # ---- Phase II: original objective, artificial columns frozen. ----
    # Truncate artificial columns, keep rhs.
    tableau = [row[:n_vars] + [row[-1]] for row in tableau]
    # Rows still basic in an artificial variable are redundant; give them
    # a harmless placeholder basis marker by re-expanding with a zero-cost
    # slack that is fixed at its current value.  Simplest: drop such rows
    # (they are linearly dependent once artificials are zero).
    keep_rows = [r for r in range(m) if basis[r] < n_vars]
    tableau = [tableau[r] for r in keep_rows]
    basis = [basis[r] for r in keep_rows]
    status, _ = _simplex_iterate(tableau, basis, cost, n_vars)
    if status == "unbounded":
        return LPResult("unbounded", None, None)
    solution = [Fraction(0)] * n_vars
    for r, var in enumerate(basis):
        solution[var] = tableau[r][-1]
    objective = sum(
        (cost[j] * solution[j] for j in range(n_vars)), Fraction(0)
    )
    return LPResult("optimal", objective, solution)


def is_feasible(a: Iterable[Sequence], b: Sequence) -> bool:
    """Exact feasibility of ``Ax = b, x >= 0`` over the rationals."""
    return solve_lp(a, b).status == "optimal"


def farkas_certificate(
    a: Iterable[Sequence], b: Sequence
) -> Row | None:
    """A Farkas certificate of infeasibility, or None when feasible.

    For ``Ax = b, x >= 0`` infeasible over the rationals, Farkas' lemma
    guarantees a vector y with ``y^T A <= 0`` (componentwise) and
    ``y^T b > 0``.  The certificate is read off the phase-I simplex
    multipliers: the artificial columns of the tableau hold B^{-1}, so
    ``y = c_B^T B^{-1}`` is available at optimality, and phase-I
    optimality (all reduced costs >= 0) is exactly the Farkas
    inequality system.

    Verify with :func:`verify_farkas`.
    """
    matrix = to_fraction_matrix(a)
    rhs = to_fraction_vector(b)
    if len(matrix) != len(rhs):
        raise ValueError("matrix and rhs dimensions disagree")
    n_vars = len(matrix[0]) if matrix else 0
    signs = []
    for i in range(len(matrix)):
        if rhs[i] < 0:
            matrix[i] = [-x for x in matrix[i]]
            rhs[i] = -rhs[i]
            signs.append(Fraction(-1))
        else:
            signs.append(Fraction(1))
    m = len(matrix)
    if m == 0:
        return None
    tableau: Matrix = []
    for i in range(m):
        artificial = [
            Fraction(1) if j == i else Fraction(0) for j in range(m)
        ]
        tableau.append(list(matrix[i]) + artificial + [rhs[i]])
    basis = [n_vars + i for i in range(m)]
    phase1_cost = [Fraction(0)] * n_vars + [Fraction(1)] * m
    status, _ = _simplex_iterate(tableau, basis, phase1_cost, n_vars + m)
    if status == "unbounded":
        raise SolverError("phase-I objective cannot be unbounded")
    value = sum(
        (phase1_cost[basis[r]] * tableau[r][-1] for r in range(m)),
        Fraction(0),
    )
    if value == 0:
        return None
    # y_i = sum_r c_B[r] * (B^{-1})[r][i]; the artificial block of the
    # tableau is exactly B^{-1}.
    y = []
    for i in range(m):
        y.append(
            sum(
                (
                    phase1_cost[basis[r]] * tableau[r][n_vars + i]
                    for r in range(m)
                ),
                Fraction(0),
            )
        )
    # Undo the row sign normalization (rows were scaled by `signs`).
    return [y[i] * signs[i] for i in range(m)]


def verify_farkas(
    a: Iterable[Sequence], b: Sequence, y: Sequence
) -> bool:
    """Check a Farkas certificate: ``y^T A <= 0`` and ``y^T b > 0``."""
    matrix = to_fraction_matrix(a)
    rhs = to_fraction_vector(b)
    ys = to_fraction_vector(y)
    if len(ys) != len(matrix) or len(rhs) != len(matrix):
        return False
    n_vars = len(matrix[0]) if matrix else 0
    for j in range(n_vars):
        column = sum(
            (ys[i] * matrix[i][j] for i in range(len(matrix))), Fraction(0)
        )
        if column > 0:
            return False
    total = sum((ys[i] * rhs[i] for i in range(len(rhs))), Fraction(0))
    return total > 0
