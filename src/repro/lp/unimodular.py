"""Total unimodularity checks.

Section 3 of the paper observes that the constraint matrix of P(R, S) is
the vertex-edge incidence matrix of a bipartite graph, hence totally
unimodular, hence (Hoffman-Kruskal) the polytope of P(R, S) has integral
vertices.  This module makes both halves of that argument executable:

* :func:`is_bipartite_incidence_structure` checks the structural property
  the paper invokes — the rows split into two groups such that every
  column has at most one 1 in each group and zeros elsewhere.
* :func:`is_totally_unimodular_bruteforce` checks the definition (every
  square submatrix has determinant in {-1, 0, 1}) by enumeration, for
  small matrices; the test suite uses it to validate the structural
  shortcut.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Iterable, Sequence

from .matrix import determinant, to_fraction_matrix


def is_zero_one_matrix(matrix: Iterable[Sequence]) -> bool:
    return all(
        x in (0, 1, Fraction(0), Fraction(1)) for row in matrix for x in row
    )


def is_bipartite_incidence_structure(
    matrix: Iterable[Sequence], split: int
) -> bool:
    """True if rows [0, split) and [split, end) each hit every column at
    most once, and all entries are 0/1.

    With this structure the matrix is the vertex-edge incidence matrix of
    a bipartite graph, hence totally unimodular (Schrijver, Example 1 of
    Section 19.3, as cited by the paper).
    """
    rows = [list(row) for row in matrix]
    if not is_zero_one_matrix(rows):
        return False
    if not rows:
        return True
    n_cols = len(rows[0])
    for part in (rows[:split], rows[split:]):
        for col in range(n_cols):
            ones = sum(1 for row in part if row[col] == 1)
            if ones > 1:
                return False
    return True


def is_totally_unimodular_bruteforce(
    matrix: Iterable[Sequence], max_order: int | None = None
) -> bool:
    """Definitional TU check: all square submatrix determinants lie in
    {-1, 0, 1}.

    Exponential — intended for matrices with at most ~6x6 relevant
    submatrices in tests.  ``max_order`` caps the submatrix order checked.
    """
    m = to_fraction_matrix(matrix)
    if not m:
        return True
    n_rows, n_cols = len(m), len(m[0])
    top = min(n_rows, n_cols)
    if max_order is not None:
        top = min(top, max_order)
    allowed = {Fraction(-1), Fraction(0), Fraction(1)}
    for order in range(1, top + 1):
        for row_idx in combinations(range(n_rows), order):
            for col_idx in combinations(range(n_cols), order):
                sub = [[m[r][c] for c in col_idx] for r in row_idx]
                if determinant(sub) not in allowed:
                    return False
    return True
