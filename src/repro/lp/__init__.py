"""Exact optimization substrate: rational linear algebra, two-phase
simplex, total-unimodularity checks, integer feasibility search, and
Carathéodory sparsification."""

from .caratheodory import (
    eisenbrand_shmonin_bound,
    minimize_support,
    restrict_system,
    sparsify_conic,
)
from .caratheodory import lemma5_step
from .integer_feasibility import (
    DEFAULT_NODE_BUDGET,
    ZeroOneSystem,
    count_solutions,
    enumerate_solutions,
    find_solution,
    is_feasible,
    iter_solutions,
)
from .simplex import farkas_certificate, verify_farkas
from .matrix import (
    determinant,
    mat_vec,
    nullspace_vector,
    rank,
    rref,
    solve,
    to_fraction_matrix,
    to_fraction_vector,
    transpose,
)
from .simplex import LPResult, is_feasible as lp_is_feasible, solve_lp
from .unimodular import (
    is_bipartite_incidence_structure,
    is_totally_unimodular_bruteforce,
    is_zero_one_matrix,
)

__all__ = [
    "DEFAULT_NODE_BUDGET",
    "LPResult",
    "ZeroOneSystem",
    "count_solutions",
    "determinant",
    "eisenbrand_shmonin_bound",
    "enumerate_solutions",
    "farkas_certificate",
    "find_solution",
    "is_bipartite_incidence_structure",
    "is_feasible",
    "iter_solutions",
    "lemma5_step",
    "verify_farkas",
    "is_totally_unimodular_bruteforce",
    "is_zero_one_matrix",
    "lp_is_feasible",
    "mat_vec",
    "minimize_support",
    "nullspace_vector",
    "rank",
    "restrict_system",
    "rref",
    "solve",
    "solve_lp",
    "sparsify_conic",
    "to_fraction_matrix",
    "to_fraction_vector",
    "transpose",
]
