"""Carathéodory-style support sparsification.

Two bound regimes from the paper:

* **Rational conic Carathéodory** (classical; used in Theorem 5): if b is
  in the conic hull of a set of d-dimensional vectors, it is in the conic
  hull of at most d of them.  :func:`sparsify_conic` makes this
  constructive: given any non-negative rational combination it repeatedly
  moves along a nullspace direction of the support columns until the
  support columns are linearly independent, shrinking the support to at
  most rank(A) <= d columns without leaving the non-negative orthant.

* **Integer Carathéodory** (Eisenbrand-Shmonin, Lemma 5; used in
  Theorem 3): if b lies in the integer conic hull of X and
  |X| > sum_i log2(b_i + 1), a proper subset of X suffices.  The bound
  function is :func:`eisenbrand_shmonin_bound`; the constructive
  counterpart offered here is :func:`minimize_support`, a greedy
  inclusion-minimal reduction (feasibility is monotone in the allowed
  support, so one greedy pass yields an inclusion-minimal support, and
  Theorem 3(3) guarantees every minimal witness meets the ES bound).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

from .integer_feasibility import (
    DEFAULT_NODE_BUDGET,
    ZeroOneSystem,
    find_solution,
)
from .matrix import nullspace_vector, to_fraction_matrix


def eisenbrand_shmonin_bound(rhs: Sequence[int]) -> float:
    """sum_i log2(b_i + 1) — Lemma 5's support bound for minimal
    integer conic representations."""
    return sum(math.log2(b + 1) for b in rhs)


def sparsify_conic(
    columns: Sequence[Sequence],
    x: Sequence,
) -> list[Fraction]:
    """Shrink the support of a non-negative combination without changing
    the combined vector.

    ``columns[j]`` is the j-th d-dimensional column; ``x`` is a
    non-negative rational vector with ``sum_j x_j columns[j] = b``.
    Returns x' >= 0 with the same combination and support columns
    linearly independent (so |supp(x')| <= d).
    """
    cols = [to_fraction_matrix([col])[0] for col in columns]
    current = [Fraction(v) for v in x]
    if any(v < 0 for v in current):
        raise ValueError("x must be non-negative")
    while True:
        support = [j for j, v in enumerate(current) if v > 0]
        if not support:
            return current
        # Matrix whose columns are the support columns: d x |support|.
        d = len(cols[0]) if cols else 0
        a = [[cols[j][i] for j in support] for i in range(d)]
        y = nullspace_vector(a)
        if y is None:
            return current
        # Ensure the direction has a positive component so the step below
        # drives some coordinate to zero.
        if all(v <= 0 for v in y):
            y = [-v for v in y]
        step = min(
            current[support[k]] / y[k] for k in range(len(y)) if y[k] > 0
        )
        for k, j in enumerate(support):
            current[j] = current[j] - step * y[k]
            if current[j] < 0:  # guard against arithmetic slips
                raise AssertionError("sparsification left the orthant")


def minimize_support(
    system: ZeroOneSystem,
    solution: Sequence[int],
    node_budget: int | None = DEFAULT_NODE_BUDGET,
) -> list[int]:
    """An inclusion-minimal-support integer solution refining ``solution``.

    Greedy: try zeroing each support variable in turn and re-solve
    restricted to the remaining support.  Because feasibility is monotone
    in the allowed support set, a single pass yields a solution whose
    support is inclusion-minimal, hence a *minimal witness* in the
    paper's sense, which by Theorem 3(3) satisfies the
    Eisenbrand-Shmonin support bound.

    Worst-case exponential per re-solve (the restricted systems are still
    NP-hard in general); intended for the small instances the tests and
    benchmarks use, and raises :class:`SearchLimitExceeded` beyond the
    node budget.
    """
    if not system.check_solution(solution):
        raise ValueError("initial solution does not satisfy the system")
    current = list(solution)
    support = [j for j, v in enumerate(current) if v > 0]
    for candidate in list(support):
        if current[candidate] == 0:
            continue
        allowed = [
            j for j, v in enumerate(current) if v > 0 and j != candidate
        ]
        restricted = restrict_system(system, allowed)
        sub = find_solution(restricted, node_budget)
        if sub is not None:
            current = [0] * system.n_vars
            for local_idx, j in enumerate(allowed):
                current[j] = sub[local_idx]
    return current


def restrict_system(
    system: ZeroOneSystem, allowed_vars: Sequence[int]
) -> ZeroOneSystem:
    """The subsystem using only ``allowed_vars`` (other columns dropped)."""
    return ZeroOneSystem(
        n_vars=len(allowed_vars),
        var_constraints=tuple(
            system.var_constraints[j] for j in allowed_vars
        ),
        rhs=system.rhs,
    )


def lemma5_step(
    system: ZeroOneSystem,
    solution: Sequence[int],
    node_budget: int | None = DEFAULT_NODE_BUDGET,
) -> list[int] | None:
    """One application of the Eisenbrand-Shmonin lemma (Lemma 5).

    If the support of ``solution`` is larger than
    ``sum_i log2(b_i + 1)``, the lemma *guarantees* a solution over a
    proper subset of the support; this finds one by trying to drop each
    support column (the first drop that stays feasible, by the lemma, is
    guaranteed to exist).  Returns the smaller solution, or None when
    the support is already within the bound (the lemma is silent there
    and a proper subset may or may not exist).

    Raises :class:`AssertionError` if the lemma's guarantee fails — that
    would falsify Lemma 5 (or reveal a solver bug), so it is a hard
    check, exercised by property tests.
    """
    if not system.check_solution(solution):
        raise ValueError("initial solution does not satisfy the system")
    support = [j for j, v in enumerate(solution) if v > 0]
    if len(support) <= eisenbrand_shmonin_bound(system.rhs):
        return None
    for drop in support:
        allowed = [j for j in support if j != drop]
        sub = find_solution(restrict_system(system, allowed), node_budget)
        if sub is not None:
            full = [0] * system.n_vars
            for local, j in enumerate(allowed):
                full[j] = sub[local]
            return full
    raise AssertionError(
        "Lemma 5 guarantee failed: support exceeds the Eisenbrand-"
        "Shmonin bound yet no proper sub-support carries a solution"
    )
