"""Exception hierarchy for the bag-consistency library.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch a single base class.  The hierarchy mirrors the main
failure modes of the paper's algorithms: malformed schemas, mismatched
schemas between operands, inconsistent inputs handed to witness
constructors, and structural requirements (e.g. an algorithm that requires
an acyclic hypergraph receiving a cyclic one).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A schema is malformed or two schemas are incompatible.

    Raised, for example, when a tuple's values do not match its schema's
    arity, or when a marginal is requested on attributes that are not a
    subset of the bag's schema.
    """


class MultiplicityError(ReproError):
    """A bag multiplicity is invalid (negative or non-integer)."""


class InconsistentError(ReproError):
    """A witness was requested for bags that are not consistent."""


class CyclicSchemaError(ReproError):
    """An acyclic-only algorithm received a cyclic hypergraph."""


class AcyclicSchemaError(ReproError):
    """A cyclic-only construction received an acyclic hypergraph.

    The Tseitin-style counterexample construction of Theorem 2 only exists
    for cyclic schemas; asking for a counterexample over an acyclic schema
    is a caller error (Theorem 2 proves none exists).
    """


class NotRegularError(ReproError):
    """The Tseitin construction requires a k-uniform, d-regular hypergraph
    with d >= 2."""


class SolverError(ReproError):
    """An internal solver failed (e.g. the simplex method detected an
    unbounded program where only feasibility questions were expected)."""


class SearchLimitExceeded(ReproError):
    """An exact (worst-case exponential) search exceeded its node budget.

    The global consistency problem for bags over cyclic schemas is
    NP-complete (Theorem 4), so the exact search is allowed to give up after
    a caller-specified number of nodes rather than run forever.
    """


class ReductionError(ReproError):
    """A polynomial-time reduction received an instance outside its domain."""
