"""Command-line interface.

Usage (all inputs are the JSON encodings of :mod:`repro.io`):

* ``python -m repro check-pair R.json S.json`` — Lemma 2 consistency test.
* ``python -m repro witness R.json S.json [--minimal] [-o OUT]`` — a
  (minimal) witness via Corollary 1 / Corollary 4.
* ``python -m repro global-check COLLECTION.json [--method M]`` — the
  GCPB decision with the Theorem 4 dispatch, plus a witness when one
  exists.
* ``python -m repro audit-schema HYPERGRAPH.json [--counterexample OUT]``
  — acyclicity audit; for cyclic schemas optionally emits the Theorem 2
  counterexample collection.
* ``python -m repro show BAG.json`` — render a bag in the paper's
  tabular format.
* ``python -m repro certificate COLLECTION.json [-v]`` — a verifiable
  inconsistency certificate (marginal cell / Farkas / search marker).
* ``python -m repro repair COLLECTION.json [-o OUT]`` — repair a
  collection over an acyclic schema into global consistency.
* ``python -m repro analyze R.json S.json`` — witness-space ambiguity
  report (per-tuple multiplicity ranges).
* ``python -m repro batch JOBS.json [-o OUT] [--witnesses]
  [--parallelism N] [--capacity N]`` — run many pair checks, global
  checks, and named workload suites through one memoizing
  :class:`repro.engine.Engine` (optionally over a thread pool, with a
  bounded LRU result cache); emits a JSON report with per-job results
  plus the engine's cache statistics.

Exit codes: 0 for "yes"/success, 1 for "no" (inconsistent / cyclic),
2 for usage or input errors.  ``batch`` exits 0 when every job ran
(individual verdicts live in the report).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import io as repro_io
from .consistency.global_ import global_witness
from .consistency.local_global import find_local_to_global_counterexample
from .consistency.pairwise import are_consistent, consistency_witness
from .consistency.witness import minimal_pairwise_witness
from .display import bag_table, collection_summary
from .errors import InconsistentError, ReproError
from .hypergraphs.acyclicity import is_acyclic, running_intersection_order
from .hypergraphs.obstructions import find_obstruction


def _load_bag(path: str):
    return repro_io.bag_from_json(Path(path).read_text())


def _cmd_check_pair(args: argparse.Namespace) -> int:
    r = _load_bag(args.left)
    s = _load_bag(args.right)
    consistent = are_consistent(r, s)
    print("consistent" if consistent else "inconsistent")
    return 0 if consistent else 1


def _cmd_witness(args: argparse.Namespace) -> int:
    r = _load_bag(args.left)
    s = _load_bag(args.right)
    try:
        if args.minimal:
            witness = minimal_pairwise_witness(r, s)
        else:
            witness = consistency_witness(r, s)
    except InconsistentError:
        print("inconsistent", file=sys.stderr)
        return 1
    if args.output:
        Path(args.output).write_text(repro_io.bag_to_json(witness, indent=2))
        print(f"witness written to {args.output}")
    else:
        print(bag_table(witness))
    return 0


def _cmd_global_check(args: argparse.Namespace) -> int:
    bags = repro_io.collection_from_json(Path(args.collection).read_text())
    print(collection_summary(bags))
    result = global_witness(bags, method=args.method)
    print(f"method: {result.method}")
    if not result.consistent:
        print("globally inconsistent")
        return 1
    print("globally consistent")
    if result.witness is not None:
        if args.output:
            Path(args.output).write_text(
                repro_io.bag_to_json(result.witness, indent=2)
            )
            print(f"witness written to {args.output}")
        else:
            print(bag_table(result.witness))
    return 0


def _cmd_audit_schema(args: argparse.Namespace) -> int:
    hypergraph = repro_io.hypergraph_from_json(
        Path(args.hypergraph).read_text()
    )
    if is_acyclic(hypergraph):
        print("acyclic: pairwise consistency checks are sound and complete")
        rip = running_intersection_order(hypergraph)
        for i, edge in enumerate(rip.order):
            print(f"  {i + 1}. {tuple(edge.attrs)}")
        return 0
    obstruction = find_obstruction(hypergraph)
    print(
        f"cyclic: obstruction {obstruction.kind} on "
        f"{sorted(map(str, obstruction.vertices))}"
    )
    if args.counterexample:
        bags = find_local_to_global_counterexample(hypergraph)
        Path(args.counterexample).write_text(
            repro_io.collection_to_json(bags, indent=2)
        )
        print(f"counterexample collection written to {args.counterexample}")
    return 1


def _cmd_show(args: argparse.Namespace) -> int:
    print(bag_table(_load_bag(args.bag)))
    return 0


def _cmd_certificate(args: argparse.Namespace) -> int:
    from .consistency.certificates import (
        FarkasCertificate,
        MarginalCertificate,
        SearchRefutation,
        collection_certificate,
        verify_certificate,
    )

    bags = repro_io.collection_from_json(Path(args.collection).read_text())
    certificate = collection_certificate(bags)
    if certificate is None:
        print("globally consistent: no inconsistency certificate exists")
        return 0
    assert verify_certificate(bags, certificate)
    if isinstance(certificate, MarginalCertificate):
        print(
            f"inconsistent: bags {certificate.left_index} and "
            f"{certificate.right_index} disagree on common cell "
            f"{certificate.cell}: {certificate.left_value} vs "
            f"{certificate.right_value}"
        )
    elif isinstance(certificate, FarkasCertificate):
        print(
            f"inconsistent: Farkas certificate with "
            f"{len(certificate.multipliers)} multipliers refutes even the "
            f"rational relaxation"
        )
        if args.verbose:
            for (bag, row), mult in zip(
                certificate.labels, certificate.multipliers
            ):
                if mult:
                    print(f"  y[bag {bag}, row {row}] = {mult}")
    elif isinstance(certificate, SearchRefutation):
        print(
            "inconsistent: exhaustive search found no witness "
            "(no succinct certificate exists for this instance)"
        )
    return 1


def _cmd_repair(args: argparse.Namespace) -> int:
    from .consistency.repair import repair_collection

    bags = repro_io.collection_from_json(Path(args.collection).read_text())
    fixed, cost = repair_collection(bags)
    print(f"repair cost: {cost} tuple edits")
    if args.output:
        Path(args.output).write_text(
            repro_io.collection_to_json(fixed, indent=2)
        )
        print(f"repaired collection written to {args.output}")
    else:
        print(collection_summary(fixed))
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Batched serving: one engine, many jobs.

    The jobs file is a JSON object with any of the keys:

    * ``"pairs"``: a list of two-element lists of bag encodings —
      consistency of each pair (plus a witness with ``--witnesses``);
    * ``"collections"``: a list of collection encodings
      (``{"bags": [...]}``) — the GCPB decision for each;
    * ``"suites"``: a list of ``[name, size, seed]`` specs resolved via
      :mod:`repro.workloads.suites`.
    """
    import json as json_module

    from .engine.session import Engine
    from .workloads.suites import run_suites

    jobs = json_module.loads(Path(args.jobs).read_text())
    if not isinstance(jobs, dict):
        raise ReproError("batch file must be a JSON object")
    unknown = set(jobs) - {"pairs", "collections", "suites"}
    if unknown:
        raise ReproError(f"unknown batch job keys: {sorted(unknown)}")
    if args.parallelism < 1:
        raise ReproError(
            f"--parallelism must be positive, got {args.parallelism}"
        )
    if args.capacity is not None and args.capacity < 1:
        raise ReproError(f"--capacity must be positive, got {args.capacity}")
    parallelism = args.parallelism
    engine = Engine(capacity=args.capacity)
    report: dict = {}
    # Intern value-equal bags so repeated jobs share one instance and
    # therefore one entry in the engine's identity-keyed cache.
    interned: dict = {}

    def load_bag(encoded: dict):
        bag = repro_io.bag_from_dict(encoded)
        return interned.setdefault(bag, bag)

    if jobs.get("pairs"):
        try:
            pairs = [
                (load_bag(left), load_bag(right))
                for left, right in jobs["pairs"]
            ]
        except (TypeError, ValueError) as exc:
            raise ReproError(f"bad pair entry: {exc}") from exc
        verdicts = engine.are_consistent_many(pairs, parallelism=parallelism)
        entries = [{"consistent": verdict} for verdict in verdicts]
        if args.witnesses:
            for entry, witness in zip(
                entries, engine.witness_many(pairs, parallelism=parallelism)
            ):
                if witness is not None:
                    entry["witness"] = repro_io.bag_to_dict(witness)
        report["pairs"] = entries
    if jobs.get("collections"):
        try:
            collections = [
                [load_bag(encoded) for encoded in entry["bags"]]
                for entry in jobs["collections"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"bad collection entry: {exc}") from exc
        report["collections"] = [
            {"consistent": outcome.consistent, "method": outcome.method}
            for outcome in engine.global_check_many(
                collections, method=args.method, parallelism=parallelism
            )
        ]
    if jobs.get("suites"):
        specs = [tuple(spec) for spec in jobs["suites"]]
        try:
            report["suites"] = [
                result.as_dict()
                for result in run_suites(
                    specs,
                    engine=engine,
                    method=args.method,
                    parallelism=parallelism,
                )
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"bad suite spec: {exc}") from exc
    report["stats"] = engine.stats.as_dict()
    text = json_module.dumps(report, indent=2)
    if args.output:
        Path(args.output).write_text(text)
        print(f"batch report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import format_report, witness_space_report

    r = _load_bag(args.left)
    s = _load_bag(args.right)
    report = witness_space_report(r, s)
    print(format_report(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Bag consistency toolkit (Atserias & Kolaitis, PODS 2021)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check-pair", help="two-bag consistency (Lemma 2)")
    p.add_argument("left")
    p.add_argument("right")
    p.set_defaults(func=_cmd_check_pair)

    p = sub.add_parser("witness", help="two-bag witness (Corollary 1/4)")
    p.add_argument("left")
    p.add_argument("right")
    p.add_argument("--minimal", action="store_true")
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_witness)

    p = sub.add_parser(
        "global-check", help="global consistency of a collection (GCPB)"
    )
    p.add_argument("collection")
    p.add_argument(
        "--method", choices=["auto", "acyclic", "search"], default="auto"
    )
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_global_check)

    p = sub.add_parser(
        "audit-schema",
        help="acyclicity audit + Theorem 2 counterexample synthesis",
    )
    p.add_argument("hypergraph")
    p.add_argument("--counterexample", metavar="OUT")
    p.set_defaults(func=_cmd_audit_schema)

    p = sub.add_parser("show", help="render a bag in the paper's format")
    p.add_argument("bag")
    p.set_defaults(func=_cmd_show)

    p = sub.add_parser(
        "certificate",
        help="produce a verifiable inconsistency certificate",
    )
    p.add_argument("collection")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_certificate)

    p = sub.add_parser(
        "repair",
        help="repair a collection over an acyclic schema",
    )
    p.add_argument("collection")
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_repair)

    p = sub.add_parser(
        "analyze",
        help="witness-space ambiguity report for a pair of bags",
    )
    p.add_argument("left")
    p.add_argument("right")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "batch",
        help="run many pair/collection/suite jobs through one engine",
    )
    p.add_argument("jobs")
    p.add_argument(
        "--method", choices=["auto", "acyclic", "search"], default="auto"
    )
    p.add_argument(
        "--witnesses",
        action="store_true",
        help="include a witness bag for every consistent pair",
    )
    p.add_argument(
        "--parallelism",
        type=int,
        default=1,
        metavar="N",
        help="fan each batch over a thread pool of N workers",
    )
    p.add_argument(
        "--capacity",
        type=int,
        default=None,
        metavar="N",
        help="bound the engine cache to N results (LRU eviction)",
    )
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_batch)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
