"""Command-line interface.

Usage (all inputs are the JSON encodings of :mod:`repro.io`):

* ``python -m repro check-pair R.json S.json`` — Lemma 2 consistency test.
* ``python -m repro witness R.json S.json [--minimal] [-o OUT]`` — a
  (minimal) witness via Corollary 1 / Corollary 4.
* ``python -m repro global-check COLLECTION.json [--method M]`` — the
  GCPB decision with the Theorem 4 dispatch, plus a witness when one
  exists.
* ``python -m repro audit-schema HYPERGRAPH.json [--counterexample OUT]``
  — acyclicity audit; for cyclic schemas optionally emits the Theorem 2
  counterexample collection.
* ``python -m repro show BAG.json`` — render a bag in the paper's
  tabular format.
* ``python -m repro certificate COLLECTION.json [-v]`` — a verifiable
  inconsistency certificate (marginal cell / Farkas / search marker).
* ``python -m repro repair COLLECTION.json [-o OUT]`` — repair a
  collection over an acyclic schema into global consistency.
* ``python -m repro analyze R.json S.json`` — witness-space ambiguity
  report (per-tuple multiplicity ranges).
* ``python -m repro batch JOBS.json [-o OUT] [--witnesses]
  [--parallelism N] [--backend B] [--capacity N]`` — run many pair
  checks, global checks, and named workload suites through one
  memoizing :class:`repro.engine.Engine` (with a bounded LRU result
  store and a selectable execution backend — ``serial``, ``thread``,
  or ``process`` for CPU-bound batches); emits a JSON report with
  per-job results plus the engine's cache statistics.
* ``python -m repro serve (--socket PATH | --port N) [--capacity N]
  [--parallelism N] [--backend B] [--store-dir DIR] [--max-inflight N]``
  — a long-running daemon speaking the batch JSON protocol over a
  Unix/TCP socket, one shared content-addressed verdict store across
  all connections with an engine per connection and a batch admission
  cap (see :mod:`repro.server` for the wire protocol and ``stats``
  endpoint).  With ``--store-dir`` the store is durable: a restarted
  daemon reopens its shards and answers repeat traffic warm.
* ``python -m repro batch JOBS.json --store-dir DIR`` — same durable
  store for one-shot batches: verdicts computed today are disk hits
  tomorrow.
* ``python -m repro obs [--socket PATH | --port N]
  [--format json|prometheus] [--traces]`` — telemetry exposition:
  scrape a running daemon's ``metrics`` op (merged metric registries,
  per-op latency percentiles, recent request traces), or dump the
  current process's registry when no daemon address is given.  The
  daemon side pairs with ``repro serve --slow-ms MS``, which logs a
  span breakdown for any request slower than MS milliseconds.
* ``python -m repro store (stats|compact|clear) --store-dir DIR`` —
  offline maintenance of a persistent store; prints one JSON line
  (per-shard record/byte counts, compaction results) for scripting.

Exit codes: 0 for "yes"/success, 1 for "no" (inconsistent / cyclic),
2 for usage or input errors.  ``batch`` exits 0 when every job ran
(individual verdicts live in the report); malformed job files exit 2
with a structured one-line error.  ``serve`` exits 0 on a clean
shutdown (the ``shutdown`` op or Ctrl-C).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import io as repro_io
from .consistency.global_ import global_witness
from .consistency.local_global import find_local_to_global_counterexample
from .consistency.pairwise import are_consistent, consistency_witness
from .consistency.witness import minimal_pairwise_witness
from .display import bag_table, collection_summary
from .errors import InconsistentError, ReproError
from .hypergraphs.acyclicity import is_acyclic, running_intersection_order
from .hypergraphs.obstructions import find_obstruction


def _load_bag(path: str):
    return repro_io.bag_from_json(Path(path).read_text())


def _cmd_check_pair(args: argparse.Namespace) -> int:
    r = _load_bag(args.left)
    s = _load_bag(args.right)
    consistent = are_consistent(r, s)
    print("consistent" if consistent else "inconsistent")
    return 0 if consistent else 1


def _cmd_witness(args: argparse.Namespace) -> int:
    r = _load_bag(args.left)
    s = _load_bag(args.right)
    try:
        if args.minimal:
            witness = minimal_pairwise_witness(r, s)
        else:
            witness = consistency_witness(r, s)
    except InconsistentError:
        print("inconsistent", file=sys.stderr)
        return 1
    if args.output:
        Path(args.output).write_text(repro_io.bag_to_json(witness, indent=2))
        print(f"witness written to {args.output}")
    else:
        print(bag_table(witness))
    return 0


def _cmd_global_check(args: argparse.Namespace) -> int:
    bags = repro_io.collection_from_json(Path(args.collection).read_text())
    print(collection_summary(bags))
    result = global_witness(bags, method=args.method)
    print(f"method: {result.method}")
    if not result.consistent:
        print("globally inconsistent")
        return 1
    print("globally consistent")
    if result.witness is not None:
        if args.output:
            Path(args.output).write_text(
                repro_io.bag_to_json(result.witness, indent=2)
            )
            print(f"witness written to {args.output}")
        else:
            print(bag_table(result.witness))
    return 0


def _cmd_audit_schema(args: argparse.Namespace) -> int:
    hypergraph = repro_io.hypergraph_from_json(
        Path(args.hypergraph).read_text()
    )
    if is_acyclic(hypergraph):
        print("acyclic: pairwise consistency checks are sound and complete")
        rip = running_intersection_order(hypergraph)
        for i, edge in enumerate(rip.order):
            print(f"  {i + 1}. {tuple(edge.attrs)}")
        return 0
    obstruction = find_obstruction(hypergraph)
    print(
        f"cyclic: obstruction {obstruction.kind} on "
        f"{sorted(map(str, obstruction.vertices))}"
    )
    if args.counterexample:
        bags = find_local_to_global_counterexample(hypergraph)
        Path(args.counterexample).write_text(
            repro_io.collection_to_json(bags, indent=2)
        )
        print(f"counterexample collection written to {args.counterexample}")
    return 1


def _cmd_show(args: argparse.Namespace) -> int:
    print(bag_table(_load_bag(args.bag)))
    return 0


def _cmd_certificate(args: argparse.Namespace) -> int:
    from .consistency.certificates import (
        FarkasCertificate,
        MarginalCertificate,
        SearchRefutation,
        collection_certificate,
        verify_certificate,
    )

    bags = repro_io.collection_from_json(Path(args.collection).read_text())
    certificate = collection_certificate(bags)
    if certificate is None:
        print("globally consistent: no inconsistency certificate exists")
        return 0
    assert verify_certificate(bags, certificate)
    if isinstance(certificate, MarginalCertificate):
        print(
            f"inconsistent: bags {certificate.left_index} and "
            f"{certificate.right_index} disagree on common cell "
            f"{certificate.cell}: {certificate.left_value} vs "
            f"{certificate.right_value}"
        )
    elif isinstance(certificate, FarkasCertificate):
        print(
            f"inconsistent: Farkas certificate with "
            f"{len(certificate.multipliers)} multipliers refutes even the "
            f"rational relaxation"
        )
        if args.verbose:
            for (bag, row), mult in zip(
                certificate.labels, certificate.multipliers
            ):
                if mult:
                    print(f"  y[bag {bag}, row {row}] = {mult}")
    elif isinstance(certificate, SearchRefutation):
        print(
            "inconsistent: exhaustive search found no witness "
            "(no succinct certificate exists for this instance)"
        )
    return 1


def _cmd_repair(args: argparse.Namespace) -> int:
    from .consistency.repair import repair_collection

    bags = repro_io.collection_from_json(Path(args.collection).read_text())
    fixed, cost = repair_collection(bags)
    print(f"repair cost: {cost} tuple edits")
    if args.output:
        Path(args.output).write_text(
            repro_io.collection_to_json(fixed, indent=2)
        )
        print(f"repaired collection written to {args.output}")
    else:
        print(collection_summary(fixed))
    return 0


def _validate_batch_knobs(args: argparse.Namespace) -> None:
    if args.parallelism is not None and args.parallelism < 1:
        raise ReproError(
            f"--parallelism must be positive, got {args.parallelism}"
        )
    if args.capacity is not None and args.capacity < 1:
        raise ReproError(f"--capacity must be positive, got {args.capacity}")
    if getattr(args, "shards", None) is not None:
        if args.shards < 1:
            raise ReproError(f"--shards must be positive, got {args.shards}")
        if args.store_dir is None:
            raise ReproError("--shards only makes sense with --store-dir")


def _open_store(args: argparse.Namespace):
    """The persistent store for ``--store-dir`` (``None`` without it).
    ``--capacity`` then bounds the store's hot tier, not a private
    engine store."""
    if getattr(args, "store_dir", None) is None:
        return None
    from .store import PersistentVerdictStore

    return PersistentVerdictStore(
        args.store_dir, shards=args.shards, capacity=args.capacity
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    """Batched serving: one engine, many jobs.

    Job parsing/validation lives in :mod:`repro.engine.jobs` (shared
    with ``repro serve``); a malformed jobs file exits 2 with one
    structured error line.
    """
    import json as json_module

    from .engine import executors
    from .engine.jobs import parse_jobs_text, run_jobs
    from .engine.session import Engine

    _validate_batch_knobs(args)
    executors.set_wire_format(args.wire_format)
    jobs = parse_jobs_text(Path(args.jobs).read_text())
    store = _open_store(args)
    engine = (
        Engine(store=store) if store is not None
        else Engine(capacity=args.capacity)
    )
    try:
        report = run_jobs(
            jobs,
            engine,
            method=args.method,
            witnesses=args.witnesses,
            parallelism=args.parallelism,
            backend=args.backend,
        )
    finally:
        if store is not None:
            store.close()  # flush the write-behind tail
    text = json_module.dumps(report, indent=2)
    if args.output:
        Path(args.output).write_text(text)
        print(f"batch report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """The long-running daemon: bind, announce, serve until shutdown."""
    from .engine import executors
    from .server import ReproServer

    _validate_batch_knobs(args)
    # the same knob governs both transports the daemon uses: frames on
    # the socket, and shm spill under its process-backend batches
    executors.set_wire_format(args.wire_format)
    if (args.socket is None) == (args.port is None):
        raise ReproError("serve needs exactly one of --socket or --port")
    if args.max_inflight is not None and args.max_inflight < 1:
        raise ReproError(
            f"--max-inflight must be positive, got {args.max_inflight}"
        )
    server = ReproServer(
        capacity=args.capacity,
        method=args.method,
        witnesses=args.witnesses,
        parallelism=args.parallelism,
        backend=args.backend,
        store_dir=args.store_dir,
        shards=args.shards,
        max_inflight=args.max_inflight,
        wire_format=args.wire_format,
        slow_ms=args.slow_ms,
    )
    if args.store_dir:
        persisted = server.store.stats_dict()["persistent"]
        print(
            f"persistent store at {args.store_dir}: "
            f"{persisted['shards']} shards, "
            f"{persisted['records']} records warm",
            flush=True,
        )
    try:
        if args.socket:
            address = server.bind_unix(args.socket)
            print(f"serving on unix socket {address}", flush=True)
        else:
            host, port = server.bind_tcp(args.host, args.port)
            print(f"serving on tcp {host}:{port}", flush=True)
    except OSError as exc:
        # address in use, bad permissions, unwritable socket path: a
        # usage error (exit 2), not a traceback
        raise ReproError(f"cannot bind: {exc}") from exc
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        # Reached on Ctrl-C *and* on the wire `shutdown` op (which
        # stops serve_forever from a helper thread): shutdown() is
        # idempotent and blocks until the store flush has happened, so
        # the process cannot exit with an unflushed write-behind tail.
        server.shutdown()
        if args.socket:
            import contextlib
            import os

            with contextlib.suppress(OSError):
                os.unlink(args.socket)
    print("serve shut down cleanly", flush=True)
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Offline persistent-store maintenance: one-line JSON per action
    (``stats`` / ``compact`` / ``clear`` / ``verify``) for scripting.
    ``verify`` CRC-scans every segment and cross-checks a random sample
    of stored verdicts/witnesses against fresh recompute; it exits
    nonzero on any framing damage or recompute mismatch."""
    import json as json_module

    from .store import PersistentVerdictStore

    if not (Path(args.store_dir) / "META.json").exists():
        raise ReproError(
            f"no verdict store at {args.store_dir} (missing META.json); "
            f"create one with `repro batch --store-dir` or "
            f"`repro serve --store-dir`"
        )
    if args.action == "verify":
        from .store.verify import verify_store

        out = verify_store(
            args.store_dir, sample=args.sample, seed=args.seed
        )
        print(json_module.dumps(out))
        return 0 if out["ok"] else 1
    store = PersistentVerdictStore(args.store_dir)
    try:
        if args.action == "stats":
            persisted = store.stats_dict()["persistent"]
            persisted["per_shard"] = [
                {
                    "shard": i,
                    "records": s["records"],
                    "dead_records": s["dead_records"],
                    "bytes": s["bytes"],
                    "segments": s["segments"],
                    "torn_tails": s["torn_tails"],
                }
                for i, s in enumerate(store.shard_stats())
            ]
            out = {"action": "stats", **persisted}
        elif args.action == "compact":
            live = store.compact()
            out = {
                "action": "compact",
                "store_dir": str(args.store_dir),
                "live_records": live,
                "disk_bytes": store.stats_dict()["persistent"]["disk_bytes"],
            }
        else:  # clear
            store.clear()
            out = {
                "action": "clear",
                "store_dir": str(args.store_dir),
                "cleared": True,
            }
    finally:
        store.close()
    print(json_module.dumps(out))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Telemetry exposition.  With ``--socket``/``--port`` scrape a
    running daemon's ``metrics`` op (merged registries + trace ring);
    without, render this process's global registry — useful after an
    in-process ``repro batch`` run under the same interpreter, and as
    the quickest way to eyeball the Prometheus shape."""
    from .obs import RECENT, REGISTRY, render_json, render_prometheus

    if args.socket and args.port:
        raise ReproError("obs takes at most one of --socket or --port")
    if args.socket or args.port:
        from .server import ServeClient

        address = args.socket if args.socket else (args.host, args.port)
        with ServeClient(address, wire_format="json") as client:
            response = client.request({"op": "metrics"})
        if not response.get("ok"):
            raise ReproError(
                f"metrics op failed: {response.get('error', response)}"
            )
        snapshot = response["json"]
        traces = response.get("traces", [])
        prometheus = response["prometheus"]
    else:
        snapshot = REGISTRY.snapshot()
        traces = RECENT.snapshot()
        prometheus = None
    if args.obs_format == "prometheus":
        if prometheus is None:
            prometheus = render_prometheus(snapshot)
        print(prometheus, end="")
    else:
        print(render_json(snapshot, traces=traces if args.traces else None))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import format_report, witness_space_report

    r = _load_bag(args.left)
    s = _load_bag(args.right)
    report = witness_space_report(r, s)
    print(format_report(report))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.cli import main as lint_main

    return lint_main(args.lint_args, prog="repro lint")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Bag consistency toolkit (Atserias & Kolaitis, PODS 2021)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check-pair", help="two-bag consistency (Lemma 2)")
    p.add_argument("left")
    p.add_argument("right")
    p.set_defaults(func=_cmd_check_pair)

    p = sub.add_parser("witness", help="two-bag witness (Corollary 1/4)")
    p.add_argument("left")
    p.add_argument("right")
    p.add_argument("--minimal", action="store_true")
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_witness)

    p = sub.add_parser(
        "global-check", help="global consistency of a collection (GCPB)"
    )
    p.add_argument("collection")
    p.add_argument(
        "--method", choices=["auto", "acyclic", "search"], default="auto"
    )
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_global_check)

    p = sub.add_parser(
        "audit-schema",
        help="acyclicity audit + Theorem 2 counterexample synthesis",
    )
    p.add_argument("hypergraph")
    p.add_argument("--counterexample", metavar="OUT")
    p.set_defaults(func=_cmd_audit_schema)

    p = sub.add_parser("show", help="render a bag in the paper's format")
    p.add_argument("bag")
    p.set_defaults(func=_cmd_show)

    p = sub.add_parser(
        "certificate",
        help="produce a verifiable inconsistency certificate",
    )
    p.add_argument("collection")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_certificate)

    p = sub.add_parser(
        "repair",
        help="repair a collection over an acyclic schema",
    )
    p.add_argument("collection")
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_repair)

    p = sub.add_parser(
        "analyze",
        help="witness-space ambiguity report for a pair of bags",
    )
    p.add_argument("left")
    p.add_argument("right")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "lint",
        help="repo-aware static analysis: lock, cache, and snapshot "
        "invariants (RL01-RL05)",
        add_help=False,  # flags pass through to the lint parser
    )
    p.add_argument("lint_args", nargs=argparse.REMAINDER)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "batch",
        help="run many pair/collection/suite jobs through one engine",
    )
    p.add_argument("jobs")
    p.add_argument(
        "--method", choices=["auto", "acyclic", "search"], default="auto"
    )
    p.add_argument(
        "--witnesses",
        action="store_true",
        help="include a witness bag for every consistent pair",
    )
    _add_engine_knobs(p)
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "serve",
        help="long-running batch daemon over a Unix/TCP socket",
    )
    p.add_argument(
        "--socket", metavar="PATH", help="listen on a Unix domain socket"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, metavar="N", help="listen on TCP host:port"
    )
    p.add_argument(
        "--method", choices=["auto", "acyclic", "search"], default="auto"
    )
    p.add_argument(
        "--witnesses",
        action="store_true",
        help="include a witness bag for every consistent pair",
    )
    _add_engine_knobs(p)
    p.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="admission cap: at most N batches execute concurrently "
        "(default: scaled to the core count)",
    )
    p.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        dest="slow_ms",
        help="log a warning with the full span breakdown for any "
        "request slower than MS milliseconds (default: off)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "obs",
        help="telemetry exposition: scrape a daemon's metrics op, or "
        "dump this process's registry",
    )
    p.add_argument(
        "--socket", metavar="PATH", help="scrape a daemon on a Unix socket"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, metavar="N", help="scrape a daemon on TCP"
    )
    p.add_argument(
        "--format",
        choices=["json", "prometheus"],
        default="json",
        dest="obs_format",
        help="output format (default: one-line JSON)",
    )
    p.add_argument(
        "--traces",
        action="store_true",
        help="include the recent-trace ring in JSON output",
    )
    p.set_defaults(func=_cmd_obs)

    p = sub.add_parser(
        "store",
        help="inspect or maintain a persistent verdict store directory",
    )
    p.add_argument("action", choices=["stats", "compact", "clear", "verify"])
    p.add_argument(
        "--store-dir",
        required=True,
        metavar="DIR",
        help="the persistent store directory (as given to batch/serve)",
    )
    p.add_argument(
        "--sample",
        type=int,
        default=32,
        metavar="N",
        help="(verify) cross-check at most N sampled records against "
        "fresh recompute (0 skips sampling, CRC scan only)",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="(verify) RNG seed for the record sample",
    )
    p.set_defaults(func=_cmd_store)

    return parser


def _add_engine_knobs(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--parallelism",
        type=int,
        default=None,
        metavar="N",
        help="fan each batch over N workers (default: serial, or every "
        "core when --backend thread/process is chosen)",
    )
    p.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default=None,
        help="execution backend for batches (process scales CPU-bound "
        "global checks across cores)",
    )
    p.add_argument(
        "--capacity",
        type=int,
        default=None,
        metavar="N",
        help="bound the engine's verdict store to N results (LRU "
        "eviction; with --store-dir this bounds the in-memory hot "
        "tier — disk is unbounded)",
    )
    p.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="durable sharded verdict store: verdicts/witnesses/global "
        "results spill to segment logs here and are reloaded warm on "
        "the next run",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard count when creating a new --store-dir (default 8; "
        "an existing store keeps its count)",
    )
    p.add_argument(
        "--wire-format",
        choices=["json", "columnar"],
        default="columnar",
        dest="wire_format",
        help="payload transport (default columnar): for serve, accept "
        "and advertise v2 binary frames alongside newline JSON; for "
        "batch, let the process backend spill large encodings to "
        "shared memory ('json' forces the v1 row path everywhere)",
    )


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["lint"]:
        # Route around argparse: REMAINDER drops leading optionals
        # (`repro lint --strict`), so hand the tail straight to the
        # lint CLI, which owns all of its flags.
        from .analysis.cli import main as lint_main

        return lint_main(argv[1:], prog="repro lint")
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
