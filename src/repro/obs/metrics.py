"""The metrics registry: named counters, gauges, and log-bucket
latency histograms.

Every layer of the stack (serve socket, jobs driver, Engine, executors,
wire codec, persistent store) records into one of two registries:

* the process-global :data:`REGISTRY` for process-wide totals — kernel
  dispatch counters, wire/shm traffic, store I/O latency — exactly the
  counters the pre-telemetry code kept as racy module-level dicts, and
* a per-:class:`~repro.server.ReproServer` registry for daemon totals
  and per-op request latency, so tests (and a multi-daemon host) see
  exact per-server counts.

Counters and gauges are lock-protected (the ``obs`` tier sits *last* in
the declared lock order, so any layer may record while holding its own
lock).  The histogram is fixed-bound log-bucketed: geometric bucket
bounds spanning 1 microsecond to 100 seconds at :data:`BUCKETS_PER_DECADE`
per decade, so ``record`` is a bisect into a 65-slot table (O(1) — the
table size is a constant) and percentile readout walks the counts once.
A reported percentile is the *upper bound* of the bucket holding the
target rank, so it overshoots the true sample by at most one bucket
ratio (``10**(1/8)`` ≈ 1.33) — exact enough for p50/p95/p99 dashboards
and regression gates, with exact ``min``/``max``/``sum`` kept alongside.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from ..analysis.registry import shared_state

__all__ = [
    "BUCKET_BOUNDS",
    "BUCKET_RATIO",
    "BUCKETS_PER_DECADE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "percentiles",
]

# Geometric bucket bounds: 8 per decade from 1e-6 s to 100 s.  A sample
# lands in the first bucket whose upper bound is >= the sample; anything
# past the last bound lands in the overflow bucket (reported as the
# exact observed max).
BUCKETS_PER_DECADE = 8
BUCKET_RATIO = 10.0 ** (1.0 / BUCKETS_PER_DECADE)
_DECADES = range(-6, 2)  # 1e-6 .. 1e+2
BUCKET_BOUNDS = tuple(
    10.0 ** (exp + step / BUCKETS_PER_DECADE)
    for exp in _DECADES
    for step in range(BUCKETS_PER_DECADE)
) + (10.0 ** 2,)
_N_BOUNDS = len(BUCKET_BOUNDS)


@shared_state("_lock", "_value", tier="obs")
class Counter:
    """A monotonically increasing named total."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: dict | None = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


@shared_state("_lock", "_value", tier="obs")
class Gauge:
    """A point-in-time value (set or adjusted, not summed over time)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: dict | None = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


@shared_state(
    "_lock", "_counts", "_count", "_sum", "_min", "_max", tier="obs"
)
class Histogram:
    """Fixed-bound log-bucket latency histogram (seconds).

    ``record`` is a bisect into the constant 65-bound table plus one
    slot increment under the lock; ``percentile`` reports the upper
    bound of the bucket holding the target rank (within one
    :data:`BUCKET_RATIO` of the true sample), except the overflow
    bucket, which reports the exact observed max.
    """

    __slots__ = ("name", "labels", "_lock", "_counts", "_count",
                 "_sum", "_min", "_max")

    def __init__(self, name: str, labels: dict | None = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._lock = threading.Lock()
        # one slot per bound + the overflow slot
        self._counts = [0] * (_N_BOUNDS + 1)
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        index = bisect_left(BUCKET_BOUNDS, seconds)
        with self._lock:
            self._counts[index] += 1
            if self._count == 0 or seconds < self._min:
                self._min = seconds
            if seconds > self._max:
                self._max = seconds
            self._count += 1
            self._sum += seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def reset(self) -> None:
        with self._lock:
            for i in range(len(self._counts)):
                self._counts[i] = 0
            self._count = 0
            self._sum = 0.0
            self._min = 0.0
            self._max = 0.0

    def _percentile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        # rank of the q-quantile sample, 1-indexed: the smallest sample
        # with cumulative count >= q * n (matching a sorted-list oracle
        # ``values[ceil(q * n) - 1]``).
        rank = max(1, -(-int(q * self._count * 1_000_000) // 1_000_000))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                if index >= _N_BOUNDS:
                    return self._max
                # cap at the exact observed max: still >= the true
                # sample, and keeps p99 <= max for sparse histograms
                return min(BUCKET_BOUNDS[index], self._max)
        return self._max

    def percentile(self, q: float) -> float:
        with self._lock:
            return self._percentile_locked(q)

    def summary(self) -> dict:
        """The JSON-shaped readout: count/sum/min/max plus p50/p95/p99."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "p50": self._percentile_locked(0.50),
                "p95": self._percentile_locked(0.95),
                "p99": self._percentile_locked(0.99),
            }

    def buckets(self) -> list:
        """Cumulative ``[upper_bound, count]`` pairs for Prometheus
        exposition, trimmed after the last occupied bucket (the ``+Inf``
        bucket is always appended by the renderer)."""
        with self._lock:
            counts = list(self._counts)
        occupied = [i for i in range(_N_BOUNDS) if counts[i]]
        if not occupied:
            return []
        out = []
        cumulative = 0
        for index in range(occupied[0], occupied[-1] + 1):
            cumulative += counts[index]
            out.append([BUCKET_BOUNDS[index], cumulative])
        return out


def percentiles(samples, qs=(0.50, 0.99)) -> dict:
    """Exact percentiles of a small in-memory sample list — the helper
    the benchmarks use for their per-section ``latency`` blocks (no
    bucketing: benches hold every sample anyway)."""
    ordered = sorted(samples)
    out = {"count": len(ordered)}
    for q in qs:
        key = f"p{int(q * 100)}"
        if not ordered:
            out[key] = 0.0
            continue
        rank = max(1, -(-int(q * len(ordered) * 1_000_000) // 1_000_000))
        out[key] = ordered[min(rank, len(ordered)) - 1]
    return out


@shared_state("_lock", "_metrics", tier="obs")
class MetricsRegistry:
    """Thread-safe name -> metric table.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent,
    so module-level call sites can cache the returned object and hot
    paths skip the registry lock entirely).  A metric's identity is its
    ``(kind, name, sorted(labels))`` key; registering the same name
    with a different kind is an error.
    """

    __slots__ = ("_lock", "_metrics")

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics = {}

    def _get(self, kind: str, name: str, labels: dict | None):
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, self._KINDS[kind]):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind}"
                    )
                return existing
            metric = self._KINDS[kind](name, labels)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, labels: dict | None = None) -> Histogram:
        return self._get("histogram", name, labels)

    def metrics(self) -> list:
        with self._lock:
            return list(self._metrics.values())

    def reset(self) -> None:
        """Zero every registered metric (test and bench isolation)."""
        for metric in self.metrics():
            metric.reset()

    def snapshot(self) -> dict:
        """A JSON-shaped dump: ``{"counters": {...}, "gauges": {...},
        "histograms": {name: summary+buckets}}`` with ``name{k=v,...}``
        flat keys for labelled metrics."""
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        for metric in self.metrics():
            key = flat_name(metric.name, metric.labels)
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            else:
                entry = metric.summary()
                entry["buckets"] = metric.buckets()
                histograms[key] = entry
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def flat_name(name: str, labels: dict | None) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


# The process-global registry: process-wide totals (kernel dispatch,
# wire/shm traffic, store I/O).  Per-server counters live on each
# ReproServer's own registry instead.
REGISTRY = MetricsRegistry()
