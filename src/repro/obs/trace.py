"""Request tracing: per-request spans across serve → engine → executor
→ store, including process-executor workers.

A :class:`Trace` is a trace id plus an append-only span list.  The
serve layer opens one per request (:func:`start_trace`) and publishes
it in a :mod:`contextvars` context variable, so any layer below can
attach spans without plumbing arguments through every signature —
the hot-path contract is::

    tr = current()
    if tr is not None:
        tr.add_span("engine.marginal", t0, elapsed)

(one contextvar read and a ``None`` check when tracing is off or no
request is in flight — the overhead budget the bench_serve gate
measures).

Crossing the thread pool: ``contextvars.Context`` objects cannot run
concurrently in two threads, so the ThreadExecutor propagates the
*trace object* — it captures ``current()`` at submit and each worker
call re-sets the contextvar around the callable (``Trace.add_span`` is
lock-protected, so worker threads appending concurrently is safe).

Crossing the process boundary: the trace id rides the job payload to
process workers; each worker runs under its own local :class:`Trace`
and ships its span list back with the verdict deltas, which the parent
merges via :meth:`Trace.merge_remote` — worker span offsets are
worker-local clocks, so merged spans are tagged ``"remote": True``
rather than re-based.

Finished traces land in the bounded ring buffer :data:`RECENT`
(:class:`TraceBuffer`) and, above the configurable ``--slow-ms``
threshold, in the ``repro.obs`` slow-request log.  Per-trace span
count is capped at :data:`MAX_SPANS` with an explicit drop counter, so
a pathological batch cannot balloon memory.
"""

from __future__ import annotations

import contextvars
import itertools
import logging
import threading
import time
from contextlib import contextmanager

from ..analysis.registry import shared_state

__all__ = [
    "MAX_SPANS",
    "RECENT",
    "Trace",
    "TraceBuffer",
    "activate",
    "current",
    "enabled",
    "finish_trace",
    "set_enabled",
    "span",
    "start_trace",
    "worker_trace",
]

logger = logging.getLogger("repro.obs")

MAX_SPANS = 256

# Transient kill switch (benchmark baselines measure the untraced
# path on the same build).  Plain bool: flipped by the bench/test
# driver thread, read-only everywhere else.
_enabled = True

# Monotonic trace-id source: wall-clock seed + process-local counter,
# cheap and unique enough across a daemon fleet's logs.
_ids = itertools.count(int(time.time() * 1000) << 20)

_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


def set_enabled(value: bool) -> None:
    global _enabled
    _enabled = bool(value)


def enabled() -> bool:
    return _enabled


def current():
    """The in-flight :class:`Trace` of this context, or ``None``."""
    return _CURRENT.get()


@shared_state("_lock", "spans", "dropped", tier="obs")
class Trace:
    """One request's span list.  ``add_span`` offsets are seconds since
    the trace's own ``perf_counter`` origin (workers' offsets are their
    local origins — see ``merge_remote``)."""

    __slots__ = ("trace_id", "op", "origin", "spans", "dropped", "_lock")

    def __init__(self, op: str, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or f"{next(_ids):x}"
        self.op = op
        self.origin = time.perf_counter()
        self.spans = []
        self.dropped = 0
        self._lock = threading.Lock()

    def add_span(self, name: str, start: float, duration: float,
                 **extra) -> None:
        """Record one span; ``start`` is an absolute ``perf_counter``
        reading taken in this process (re-based onto the trace
        origin)."""
        entry = {
            "name": name,
            "start_ms": round((start - self.origin) * 1000.0, 3),
            "ms": round(duration * 1000.0, 3),
        }
        if extra:
            entry.update(extra)
        with self._lock:
            if len(self.spans) >= MAX_SPANS:
                self.dropped += 1
                return
            self.spans.append(entry)

    def merge_remote(self, spans, worker: int | None = None) -> None:
        """Fold a process worker's span list back in (the span analogue
        of merging verdict deltas).  Offsets stay worker-local clocks;
        spans are tagged remote instead of re-based."""
        spans = list(spans)
        with self._lock:
            for index, entry in enumerate(spans):
                if len(self.spans) >= MAX_SPANS:
                    self.dropped += len(spans) - index
                    break
                tagged = dict(entry)
                tagged["remote"] = True
                if worker is not None:
                    tagged["worker"] = worker
                self.spans.append(tagged)

    def export_spans(self) -> list:
        """The picklable span list a worker ships back to its parent."""
        with self._lock:
            return [dict(entry) for entry in self.spans]

    def to_dict(self) -> dict:
        with self._lock:
            out = {
                "id": self.trace_id,
                "op": self.op,
                "spans": [dict(entry) for entry in self.spans],
            }
            if self.dropped:
                out["dropped_spans"] = self.dropped
            return out


@shared_state("_lock", "_ring", "_next", tier="obs")
class TraceBuffer:
    """Bounded ring of the most recent finished traces (as dicts)."""

    __slots__ = ("capacity", "_lock", "_ring", "_next")

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring = []
        self._next = 0

    def append(self, entry: dict) -> None:
        with self._lock:
            if len(self._ring) < self.capacity:
                self._ring.append(entry)
            else:
                self._ring[self._next] = entry
                self._next = (self._next + 1) % self.capacity

    def snapshot(self) -> list:
        """Oldest-first copy of the buffered traces."""
        with self._lock:
            return self._ring[self._next:] + self._ring[:self._next]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            del self._ring[:]
            self._next = 0


# The process-wide ring of recent traces — what the ``metrics`` serve
# op and ``repro obs --traces`` expose.
RECENT = TraceBuffer(64)


def finish_trace(trace: Trace, duration: float,
                 slow_ms: float | None = None) -> dict:
    """Close out a request trace: stamp the total duration, append to
    :data:`RECENT`, and emit the slow-request log line when the total
    clears ``slow_ms``.  Returns the buffered dict."""
    entry = trace.to_dict()
    entry["total_ms"] = round(duration * 1000.0, 3)
    RECENT.append(entry)
    if slow_ms is not None and entry["total_ms"] >= slow_ms > 0:
        logger.warning(
            "slow request trace=%s op=%s total_ms=%.3f spans=%d",
            trace.trace_id, trace.op, entry["total_ms"],
            len(entry["spans"]),
        )
    return entry


@contextmanager
def start_trace(op: str, slow_ms: float | None = None):
    """Open the root trace for one request (serve layer / CLI batch).
    Yields the :class:`Trace` (or ``None`` when tracing is disabled)
    and finishes it into :data:`RECENT` on exit."""
    if not _enabled:
        yield None
        return
    trace = Trace(op)
    token = _CURRENT.set(trace)
    start = trace.origin
    try:
        yield trace
    finally:
        _CURRENT.reset(token)
        finish_trace(trace, time.perf_counter() - start, slow_ms)


@contextmanager
def activate(trace):
    """Make an existing :class:`Trace` current in *this* thread — the
    ThreadExecutor propagation shim.  ``contextvars.Context`` objects
    cannot run concurrently in two threads, so the pool captures the
    trace object at submit and re-sets the var around each worker call
    (``add_span`` is lock-protected; concurrent appends are safe).
    No-op for ``None``."""
    if trace is None:
        yield None
        return
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)


@contextmanager
def worker_trace(trace_id: str | None):
    """The process-worker side: run the chunk under a local trace
    carrying the parent's id, or a no-op when the parent wasn't
    tracing.  The caller ships ``trace.export_spans()`` back with the
    verdict deltas."""
    if trace_id is None:
        yield None
        return
    trace = Trace("worker", trace_id=trace_id)
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)


@contextmanager
def span(name: str, **extra):
    """Attach one span to the in-flight trace, if any.  Cheap no-op
    otherwise — safe to wrap cold paths wholesale; hot paths should
    use the explicit ``current()`` check instead."""
    trace = _CURRENT.get()
    if trace is None:
        yield None
        return
    start = time.perf_counter()
    try:
        yield trace
    finally:
        trace.add_span(name, start, time.perf_counter() - start, **extra)
