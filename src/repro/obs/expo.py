"""Exposition: render registry snapshots as one-line JSON or
Prometheus text format.

Both renderers consume the JSON-shaped :meth:`MetricsRegistry.snapshot`
dict (optionally several, merged with :func:`merge_snapshots` — the
``metrics`` serve op merges the per-server registry with the
process-global one).  :func:`gauge_family` bridges the legacy
dict-shaped stats surfaces (``EngineStats.as_dict``, store
``stats_dict``, kernel counters) into gauge entries at exposition time,
so those dataclasses stay byte-compatible and collision-free — they
are *views*, not registered metrics.
"""

from __future__ import annotations

import json
import re

from .metrics import flat_name

__all__ = [
    "gauge_family",
    "merge_snapshots",
    "render_json",
    "render_prometheus",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")
_KEY_SPLIT = re.compile(r"^([^{]+)(?:\{(.*)\})?$")


def _prom_name(name: str) -> str:
    if _NAME_OK.match(name):
        return name
    fixed = _NAME_FIX.sub("_", name)
    if not re.match(r"[a-zA-Z_:]", fixed):
        fixed = "_" + fixed
    return fixed


def _prom_key(flat: str) -> str:
    """``name{k=v,...}`` flat key -> Prometheus ``name{k="v",...}``."""
    match = _KEY_SPLIT.match(flat)
    name = _prom_name(match.group(1))
    raw = match.group(2)
    if not raw:
        return name
    pairs = []
    for part in raw.split(","):
        key, _, value = part.partition("=")
        value = value.replace("\\", "\\\\").replace('"', '\\"')
        pairs.append(f'{_prom_name(key)}="{value}"')
    return f"{name}{{{','.join(pairs)}}}"


def _labelled(flat: str, extra: str, suffix: str = "") -> str:
    """Rebuild a flat key as ``name+suffix`` with one extra
    pre-rendered ``k="v"`` label appended."""
    match = _KEY_SPLIT.match(flat)
    name = _prom_name(match.group(1)) + suffix
    raw = match.group(2)
    if not raw:
        return f"{name}{{{extra}}}"
    rendered = _prom_key(f"{match.group(1)}{{{raw}}}")
    labels = rendered[rendered.index("{") + 1:-1]
    return f"{name}{{{labels},{extra}}}"


def merge_snapshots(*snapshots: dict) -> dict:
    """Union several registry snapshots (later keys win on collision —
    callers keep namespaces disjoint by metric-name prefix)."""
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        for section in out:
            out[section].update(snap.get(section, {}))
    return out


def gauge_family(prefix: str, stats: dict,
                 labels: dict | None = None) -> dict:
    """Bridge a legacy dict-shaped stats surface into snapshot gauge
    entries: ``{"gauges": {prefix_key: value, ...}}``, numeric values
    only (booleans ride as 0/1, non-numerics are dropped)."""
    gauges = {}
    for key, value in stats.items():
        if isinstance(value, bool):
            value = int(value)
        elif not isinstance(value, (int, float)):
            continue
        gauges[flat_name(f"{prefix}_{key}", labels)] = value
    return {"gauges": gauges}


def render_json(snapshot: dict, traces: list | None = None) -> str:
    """One-line JSON: the snapshot dict verbatim (plus the recent-trace
    ring when given)."""
    payload = dict(snapshot)
    if traces is not None:
        payload["traces"] = traces
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text format: counters as ``_total``-suffixed
    counters, gauges as gauges, histograms as cumulative
    ``_bucket{le=...}`` series with ``_sum``/``_count``."""
    lines: list = []
    for flat, value in sorted(snapshot.get("counters", {}).items()):
        key = _prom_key(flat)
        base = _prom_name(_KEY_SPLIT.match(flat).group(1))
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{key} {value}")
    for flat, value in sorted(snapshot.get("gauges", {}).items()):
        key = _prom_key(flat)
        base = _prom_name(_KEY_SPLIT.match(flat).group(1))
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{key} {value}")
    for flat, entry in sorted(snapshot.get("histograms", {}).items()):
        base = _prom_name(_KEY_SPLIT.match(flat).group(1))
        lines.append(f"# TYPE {base} histogram")
        for upper, cumulative in entry.get("buckets", []):
            le = 'le="%g"' % upper
            lines.append(f"{_labelled(flat, le, '_bucket')} {cumulative}")
        inf = 'le="+Inf"'
        lines.append(f"{_labelled(flat, inf, '_bucket')} {entry['count']}")
        match = _KEY_SPLIT.match(flat)
        raw = match.group(2)
        suffix = f"{{{raw}}}" if raw else ""
        sum_key = _prom_key(f"{match.group(1)}_sum{suffix}")
        count_key = _prom_key(f"{match.group(1)}_count{suffix}")
        lines.append(f"{sum_key} {entry['sum']:g}")
        lines.append(f"{count_key} {entry['count']}")
    return "\n".join(lines) + "\n"
