"""Unified telemetry: metrics registry, latency histograms, request
tracing, and exposition.

Three small modules, one contract:

* :mod:`repro.obs.metrics` — thread-safe counters/gauges/log-bucket
  histograms in a :class:`MetricsRegistry`; the process-global
  :data:`REGISTRY` carries process-wide totals (kernel dispatch, wire
  traffic, store I/O latency) while each ``ReproServer`` owns a private
  registry for exact per-daemon counts.
* :mod:`repro.obs.trace` — per-request spans behind a contextvar,
  propagated through the thread pool by re-setting the var per worker
  call and across the process boundary by shipping the trace id out
  and span deltas back (exactly like verdict deltas); finished traces
  land in the bounded :data:`RECENT` ring with a ``--slow-ms`` log.
* :mod:`repro.obs.expo` — renders merged registry snapshots as
  one-line JSON and Prometheus text (the ``metrics`` serve op and
  ``repro obs`` CLI).

Overhead contract: on the warm serve path, telemetry costs one
per-request histogram record plus one contextvar read per layer —
engine-layer histograms record only on *miss* (compute) branches, so a
cache-hit workload pays nothing there.  bench_serve measures the
end-to-end overhead and gates it (≤ 3% target, reported in
``BENCH_serve.json``).

All locks and shared containers here are declared in the
:mod:`repro.analysis` registry under the terminal ``obs`` tier, so
recording a metric while holding any engine/store/columnar/interner
lock is legal under RL05 and the ``REPRO_SANITIZE=1`` proxies.
"""

from __future__ import annotations

from .expo import (
    gauge_family,
    merge_snapshots,
    render_json,
    render_prometheus,
)
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentiles,
)
from .trace import (
    RECENT,
    Trace,
    TraceBuffer,
    activate,
    current,
    finish_trace,
    set_enabled,
    span,
    start_trace,
    worker_trace,
)

__all__ = [
    "REGISTRY",
    "RECENT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Trace",
    "TraceBuffer",
    "activate",
    "current",
    "finish_trace",
    "gauge_family",
    "merge_snapshots",
    "percentiles",
    "render_json",
    "render_prometheus",
    "set_enabled",
    "span",
    "start_trace",
    "worker_trace",
]
