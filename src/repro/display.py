"""Tabular rendering of bags and relations, in the paper's format.

Section 2 renders a bag as::

    A   B   #
    a1  b1  : 2
    a2  b2  : 1
    a3  b3  : 5

:func:`bag_table` reproduces that layout; :func:`relation_table` does the
same without the multiplicity column; :func:`collection_summary` prints a
one-line-per-bag digest of a collection with the Section 5.2 size
measures.
"""

from __future__ import annotations

from typing import Sequence

from .core.bags import Bag
from .core.relations import Relation


def _column_widths(header: Sequence[str], rows: Sequence[Sequence[str]]) -> list[int]:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    return widths


def bag_table(bag: Bag) -> str:
    """The paper's tabular form of a bag (deterministic row order)."""
    header = [str(a) for a in bag.schema.attrs] + ["#"]
    rows = []
    for tup, mult in bag.tuples():
        rows.append([str(v) for v in tup.values] + [f": {mult}"])
    if not rows:
        rows = [["(empty)"] + [""] * (len(header) - 1)]
    widths = _column_widths(header, rows)
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()
    ]
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def relation_table(relation: Relation) -> str:
    """Tabular form of a relation (set semantics; no multiplicity
    column)."""
    header = [str(a) for a in relation.schema.attrs]
    rows = [[str(v) for v in tup.values] for tup in relation]
    if not rows:
        rows = [["(empty)"] + [""] * (len(header) - 1)]
    widths = _column_widths(header, rows)
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()
    ]
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def collection_summary(bags: Sequence[Bag]) -> str:
    """One line per bag: schema, support size, unary/binary sizes, and
    multiplicity bound (the Section 5.2 measures)."""
    lines = []
    for i, bag in enumerate(bags):
        attrs = ",".join(str(a) for a in bag.schema.attrs)
        lines.append(
            f"R{i + 1}({attrs}): supp={bag.support_size} "
            f"u={bag.unary_size} b={bag.binary_size:.1f} "
            f"mu={bag.multiplicity_bound}"
        )
    return "\n".join(lines)
