"""Workload generators: planted consistent collections, perturbed
inconsistent instances, and the paper's named example families."""

from .generators import (
    example1_instance,
    inconsistent_pair,
    perturb_bag,
    planted_collection,
    planted_pair,
    random_bag,
    random_collection_over,
    witness_family_pair,
)

__all__ = [
    "example1_instance",
    "inconsistent_pair",
    "perturb_bag",
    "planted_collection",
    "planted_pair",
    "random_bag",
    "random_collection_over",
    "witness_family_pair",
]
