"""Named instance suites: a registry of the workload families.

Benchmarks, examples, and external users reference instance families by
name + size instead of copy-pasting construction code.  Each suite knows
its expected answer (consistent / inconsistent / depends), so harnesses
can assert correctness alongside timing.

    >>> suite = get_suite("tseitin-cycle")
    >>> bags = suite.build(4, seed=0)
    >>> suite.expected
    'inconsistent'
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Literal, Sequence

from ..core.bags import Bag
from ..hypergraphs.families import (
    cycle_hypergraph,
    hn_hypergraph,
    path_hypergraph,
    triangle_hypergraph,
)

Expected = Literal["consistent", "inconsistent", "depends"]


@dataclass(frozen=True)
class InstanceSuite:
    """A named family of GCPB instances.

    ``build(size, seed)`` returns a collection of bags; ``expected``
    states the global-consistency answer for every member ("depends"
    when it varies by seed/size).
    """

    name: str
    description: str
    expected: Expected
    schema_kind: Literal["acyclic", "cyclic"]
    min_size: int
    builder: Callable[[int, int], list[Bag]]

    def build(self, size: int, seed: int = 0) -> list[Bag]:
        if size < self.min_size:
            raise ValueError(
                f"suite {self.name!r} needs size >= {self.min_size}"
            )
        return self.builder(size, seed)


def _planted_path(size: int, seed: int) -> list[Bag]:
    from .generators import random_collection_over

    return random_collection_over(
        path_hypergraph(size + 1), random.Random(seed), n_tuples=5
    )


def _planted_triangle(size: int, seed: int) -> list[Bag]:
    from .generators import random_collection_over

    return random_collection_over(
        triangle_hypergraph(), random.Random(seed),
        domain_size=size, n_tuples=size * size,
    )


def _planted_star(size: int, seed: int) -> list[Bag]:
    from ..hypergraphs.families import star_hypergraph
    from .generators import random_collection_over

    return random_collection_over(
        star_hypergraph(size), random.Random(seed), n_tuples=5
    )


def _tseitin_cycle(size: int, seed: int) -> list[Bag]:
    from ..consistency.local_global import tseitin_collection

    return tseitin_collection(list(cycle_hypergraph(size).edges))


def _tseitin_hn(size: int, seed: int) -> list[Bag]:
    from ..consistency.local_global import tseitin_collection

    return tseitin_collection(list(hn_hypergraph(size).edges))


def _example1(size: int, seed: int) -> list[Bag]:
    from .generators import example1_instance

    return example1_instance(size)[0]


def _witness_family(size: int, seed: int) -> list[Bag]:
    from .generators import witness_family_pair

    return list(witness_family_pair(size))


def _planted_wide(size: int, seed: int) -> list[Bag]:
    from .generators import wide_planted_collection

    _, bags = wide_planted_collection(
        random.Random(seed),
        n_bags=3,
        width=size + 2,
        overlap=2,
        n_rows=16 * size,
        domain_size=1 << 16,
    )
    return bags


def _perturbed_path(size: int, seed: int) -> list[Bag]:
    from .generators import perturb_bag, random_collection_over

    rng = random.Random(seed)
    bags = random_collection_over(
        path_hypergraph(size + 1), rng, n_tuples=5
    )
    victim = rng.randrange(len(bags))
    bags[victim] = perturb_bag(bags[victim], rng)
    return bags


_SUITES: dict[str, InstanceSuite] = {}


def _register(suite: InstanceSuite) -> None:
    _SUITES[suite.name] = suite


_register(InstanceSuite(
    name="planted-path",
    description="Marginals of a hidden witness over the path P_{n+1}; "
                "globally consistent by construction.",
    expected="consistent",
    schema_kind="acyclic",
    min_size=2,
    builder=_planted_path,
))
_register(InstanceSuite(
    name="planted-triangle",
    description="Marginals of a hidden witness over the triangle with "
                "domain size n; consistent but on a cyclic schema.",
    expected="consistent",
    schema_kind="cyclic",
    min_size=2,
    builder=_planted_triangle,
))
_register(InstanceSuite(
    name="planted-star",
    description="Marginals of a hidden witness over the star {Hub, A_i}; "
                "globally consistent, acyclic with a depth-2 join tree "
                "(the wide-fan fold-tree shape).",
    expected="consistent",
    schema_kind="acyclic",
    min_size=1,
    builder=_planted_star,
))
_register(InstanceSuite(
    name="tseitin-cycle",
    description="The Theorem 2 counterexample over C_n: pairwise "
                "consistent, globally inconsistent.",
    expected="inconsistent",
    schema_kind="cyclic",
    min_size=3,
    builder=_tseitin_cycle,
))
_register(InstanceSuite(
    name="tseitin-hn",
    description="The Theorem 2 counterexample over H_n.",
    expected="inconsistent",
    schema_kind="cyclic",
    min_size=3,
    builder=_tseitin_hn,
))
_register(InstanceSuite(
    name="example1",
    description="Example 1: path bags with multiplicity 2^n; "
                "consistent, join witness exponential.",
    expected="consistent",
    schema_kind="acyclic",
    min_size=2,
    builder=_example1,
))
_register(InstanceSuite(
    name="witness-family",
    description="Section 3's R_{n-1}, S_{n-1}: consistent with exactly "
                "2^(n-1) witnesses.",
    expected="consistent",
    schema_kind="acyclic",
    min_size=2,
    builder=_witness_family,
))
_register(InstanceSuite(
    name="planted-wide",
    description="Marginals of a hidden witness over wide sliding-window "
                "schemas with a high-cardinality domain — the "
                "dictionary-encoding stress shape of the columnar "
                "kernels; consistent, acyclic.",
    expected="consistent",
    schema_kind="acyclic",
    min_size=1,
    builder=_planted_wide,
))
_register(InstanceSuite(
    name="perturbed-path",
    description="A planted path collection with one bumped "
                "multiplicity; pairwise inconsistent.",
    expected="inconsistent",
    schema_kind="acyclic",
    min_size=2,
    builder=_perturbed_path,
))


@dataclass(frozen=True)
class SuiteRunResult:
    """One engine-routed suite evaluation: the decision, the method the
    Theorem 4 dispatch picked, and whether it matched ``expected``."""

    suite: str
    size: int
    seed: int
    consistent: bool
    method: str
    ok: bool

    def as_dict(self) -> dict:
        return {
            "suite": self.suite,
            "size": self.size,
            "seed": self.seed,
            "consistent": self.consistent,
            "method": self.method,
            "ok": self.ok,
        }


def run_suites(
    specs: Sequence[tuple[str, int, int]],
    engine=None,
    method: str = "auto",
    parallelism: int | None = None,
    backend: str | None = None,
) -> list[SuiteRunResult]:
    """Evaluate ``(name, size, seed)`` specs through one shared
    :class:`repro.engine.Engine`.

    This is the batched-serving entry point for workload replay: all
    specs share the engine's marginal/pairwise caches, so sweeping a
    suite across seeds or re-running a spec costs one decision, not
    many.  ``parallelism``/``backend`` select an execution backend for
    the decisions (:mod:`repro.engine.executors`: ``serial``,
    ``thread``, or ``process`` for CPU-bound sweeps; duplicate specs
    share one built collection, hence one cache entry, regardless).
    ``ok`` records agreement with the suite's expected answer (always
    true for ``expected="depends"``).
    """
    if engine is None:
        from ..engine.session import Engine

        engine = Engine()
    spec_list = [(name, size, seed) for name, size, seed in specs]
    built: dict[tuple[str, int, int], list[Bag]] = {}
    for spec in spec_list:
        if spec not in built:
            name, size, seed = spec
            built[spec] = get_suite(name).build(size, seed)
    outcomes = engine.global_check_many(
        [built[spec] for spec in spec_list],
        method=method,
        parallelism=parallelism,
        backend=backend,
    )
    results = []
    for (name, size, seed), outcome in zip(spec_list, outcomes):
        suite = get_suite(name)
        ok = (
            suite.expected == "depends"
            or outcome.consistent == (suite.expected == "consistent")
        )
        results.append(
            SuiteRunResult(
                suite=name,
                size=size,
                seed=seed,
                consistent=outcome.consistent,
                method=outcome.method,
                ok=ok,
            )
        )
    return results


def repeated_stream(
    specs: Sequence[tuple[str, int, int]], rounds: int
) -> list[tuple[str, int, int]]:
    """``specs`` replayed ``rounds`` times, round-robin — the
    repeat-heavy serving pattern (the same audits re-checked after
    every sync) that the engine's verdict store, and the persistent
    store across restarts, amortize to one computation per distinct
    spec.  Benchmarks and the serve smoke jobs build their traffic
    with this instead of hand-rolled loops."""
    if rounds < 1:
        raise ValueError(f"rounds must be positive, got {rounds}")
    return [tuple(spec) for _ in range(rounds) for spec in specs]


def get_suite(name: str) -> InstanceSuite:
    """Look up a suite by name; raises KeyError with the catalogue."""
    try:
        return _SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown suite {name!r}; available: {sorted(_SUITES)}"
        ) from None


def list_suites() -> list[InstanceSuite]:
    return [_SUITES[name] for name in sorted(_SUITES)]
