"""Workload generators for tests, examples, and benchmarks.

Three kinds of instances:

* **Planted** — draw a hidden witness bag and marginalize it onto each
  schema: the resulting collection is globally consistent by
  construction (the plant is a witness), hence also pairwise consistent.
* **Perturbed** — take a planted instance and nudge one multiplicity:
  the pair/collection becomes inconsistent (totals disagree).
* **Paper families** — the Section 3 witness-counting family
  ``R_{n-1}, S_{n-1}`` (exactly 2^(n-1) pairwise-incomparable
  witnesses) and Example 1's exponential-join family (path schemas with
  multiplicity 2^n whose bag join has 2^n-sized support while small
  witnesses exist).
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.bags import Bag
from ..core.schema import Schema
from ..hypergraphs.hypergraph import Hypergraph


def random_bag(
    schema: Schema,
    rng: random.Random,
    domain_size: int = 3,
    n_tuples: int = 4,
    max_multiplicity: int = 5,
) -> Bag:
    """A random bag: ``n_tuples`` draws from a cubic domain with random
    multiplicities (collisions add up)."""
    rows = []
    for _ in range(n_tuples):
        row = tuple(rng.randrange(domain_size) for _ in schema.attrs)
        rows.append((row, rng.randint(1, max_multiplicity)))
    return Bag.from_pairs(schema, rows)


def planted_collection(
    schemas: Sequence[Schema],
    rng: random.Random,
    domain_size: int = 3,
    n_tuples: int = 5,
    max_multiplicity: int = 4,
) -> tuple[Bag, list[Bag]]:
    """A hidden witness over the union schema and its marginals — a
    globally consistent collection with the plant as certificate."""
    union = Schema([])
    for schema in schemas:
        union = union | schema
    plant = random_bag(union, rng, domain_size, n_tuples, max_multiplicity)
    while not plant:
        plant = random_bag(union, rng, domain_size, n_tuples, max_multiplicity)
    return plant, [plant.marginal(schema) for schema in schemas]


def planted_pair(
    left: Schema,
    right: Schema,
    rng: random.Random,
    domain_size: int = 3,
    n_tuples: int = 5,
    max_multiplicity: int = 4,
) -> tuple[Bag, Bag, Bag]:
    """(plant, R, S): a consistent pair with its planted witness."""
    plant, (r, s) = planted_collection(
        [left, right], rng, domain_size, n_tuples, max_multiplicity
    )
    return plant, r, s


def perturb_bag(bag: Bag, rng: random.Random) -> Bag:
    """Add 1 to one multiplicity (or insert a fresh tuple into an empty
    bag), breaking any exact marginal agreement on totals."""
    if not bag:
        row = tuple(0 for _ in bag.schema.attrs)
        return Bag.from_pairs(bag.schema, [(row, 1)])
    rows = sorted(bag.support_rows(), key=repr)
    chosen = rows[rng.randrange(len(rows))]
    bump = Bag.from_pairs(bag.schema, [(chosen, 1)])
    return bag + bump


def inconsistent_pair(
    left: Schema,
    right: Schema,
    rng: random.Random,
    domain_size: int = 3,
    n_tuples: int = 5,
    max_multiplicity: int = 4,
) -> tuple[Bag, Bag]:
    """A pair that is *not* consistent: perturbing one side changes its
    total multiplicity, so the common marginals (which always share the
    grand total) cannot agree."""
    _, r, s = planted_pair(
        left, right, rng, domain_size, n_tuples, max_multiplicity
    )
    return r, perturb_bag(s, rng)


def witness_family_pair(n: int) -> tuple[Bag, Bag]:
    """The Section 3 family ``R_{n-1}(A, B), S_{n-1}(B, C)`` for n >= 2.

    R = {(1,2):1, (2,2):1, (1,3):1, (3,3):1, ..., (1,n):1, (n,n):1} and
    S = {(2,1):1, (2,2):1, (3,1):1, (3,3):1, ..., (n,1):1, (n,n):1}.
    The pair is consistent with exactly 2^(n-1) witnesses, pairwise
    incomparable under bag containment, each with support strictly
    inside the join of supports.
    """
    if n < 2:
        raise ValueError(f"the witness family needs n >= 2, got {n}")
    ab = Schema(["A", "B"])
    bc = Schema(["B", "C"])
    r_rows = []
    s_rows = []
    for v in range(2, n + 1):
        r_rows.append(((1, v), 1))
        r_rows.append(((v, v), 1))
        s_rows.append(((v, 1), 1))
        s_rows.append(((v, v), 1))
    return Bag.from_pairs(ab, r_rows), Bag.from_pairs(bc, s_rows)


def example1_instance(n: int) -> tuple[list[Bag], Bag]:
    """Example 1: path bags R_i(A_i A_{i+1}) with support {0,1}^2 and
    multiplicity 2^n, plus the join-like witness J with support {0,1}^n
    and multiplicity 4 — exponentially larger than the input when
    multiplicities are written in binary."""
    if n < 2:
        raise ValueError(f"Example 1 needs n >= 2, got {n}")
    attrs = [f"A{i}" for i in range(1, n + 1)]
    bags = []
    for i in range(n - 1):
        schema = Schema([attrs[i], attrs[i + 1]])
        rows = [((a, b), 2**n) for a in (0, 1) for b in (0, 1)]
        bags.append(Bag.from_pairs(schema, rows))
    full = Schema(attrs)
    big_rows = []
    for bits in range(2**n):
        mapping = {
            attrs[i]: (bits >> i) & 1 for i in range(n)
        }
        big_rows.append((mapping, 4))
    witness = Bag.from_mappings(big_rows, schema=full)
    return bags, witness


def wide_window_schemas(
    n_bags: int, width: int, overlap: int
) -> list[Schema]:
    """``n_bags`` sliding-window schemas over attributes ``W000, W001,
    ...``: window j covers ``width`` consecutive attributes and shares
    ``overlap`` of them with its neighbour.  Consecutive intervals form
    an acyclic (interval) hypergraph, and the zero-padded names keep
    the canonical attribute order equal to the window order.
    """
    if width < 1 or n_bags < 1:
        raise ValueError("wide windows need n_bags >= 1 and width >= 1")
    if not 0 <= overlap < width:
        raise ValueError(
            f"overlap must be in [0, width), got {overlap} for width {width}"
        )
    step = width - overlap
    return [
        Schema([f"W{step * j + i:03d}" for i in range(width)])
        for j in range(n_bags)
    ]


def wide_planted_collection(
    rng: random.Random,
    n_bags: int = 3,
    width: int = 6,
    overlap: int = 2,
    n_rows: int = 64,
    domain_size: int = 1 << 16,
    max_multiplicity: int = 3,
) -> tuple[Bag, list[Bag]]:
    """A planted collection over wide sliding-window schemas with a
    high-cardinality domain — the workload shape that stresses
    dictionary encoding (many attributes, many distinct values, few
    repeated keys) and exposes the row-kernel gap the columnar bench
    gate measures.  Globally consistent by construction."""
    return planted_collection(
        wide_window_schemas(n_bags, width, overlap),
        rng,
        domain_size=domain_size,
        n_tuples=n_rows,
        max_multiplicity=max_multiplicity,
    )


def wide_planted_pair(
    rng: random.Random,
    width: int = 8,
    overlap: int = 3,
    n_rows: int = 256,
    domain_size: int = 1 << 20,
    max_multiplicity: int = 6,
) -> tuple[Bag, Bag, Bag]:
    """(plant, R, S) over two overlapping wide windows — the two-bag
    unit of the wide workload (``benchmarks/bench_columnar.py``)."""
    plant, (r, s) = wide_planted_collection(
        rng,
        n_bags=2,
        width=width,
        overlap=overlap,
        n_rows=n_rows,
        domain_size=domain_size,
        max_multiplicity=max_multiplicity,
    )
    return plant, r, s


def random_collection_over(
    hypergraph: Hypergraph,
    rng: random.Random,
    domain_size: int = 3,
    n_tuples: int = 5,
    max_multiplicity: int = 4,
) -> list[Bag]:
    """A planted (globally consistent) collection over a hypergraph's
    hyperedges."""
    _, bags = planted_collection(
        list(hypergraph.edges), rng, domain_size, n_tuples, max_multiplicity
    )
    return bags


def planted_stream(
    schemas: Sequence[Schema],
    rng: random.Random,
    n_transactions: int,
    domain_size: int = 4,
    n_tuples: int = 5,
    max_multiplicity: int = 4,
    delete_probability: float = 0.4,
) -> tuple[list[Bag], list[list[tuple[int, tuple, int]]]]:
    """A planted collection plus a consistency-preserving update stream.

    Each **transaction** inserts or deletes one tuple of the hidden
    union-schema witness and propagates its marginal row to every bag,
    returned as a list of ``(bag index, row, amount)`` updates.
    Mid-transaction the collection is (usually) inconsistent; at every
    transaction boundary it is globally consistent again, with the
    evolved plant as certificate — the monitoring pattern behind
    ``benchmarks/bench_live.py`` / ``bench_live_global.py`` and the
    fold-tree stream tests, generated in one place so they replay the
    identical traffic.
    """
    from ..core.schema import projection_plan

    plant, bags = planted_collection(
        schemas, rng, domain_size, n_tuples, max_multiplicity
    )
    union = plant.schema
    plans = [
        projection_plan(union.attrs, schema.attrs) for schema in schemas
    ]
    pool = dict(plant.items())
    transactions = []
    for _ in range(n_transactions):
        if pool and rng.random() < delete_probability:
            rows = sorted(pool)
            row = rows[rng.randrange(len(rows))]
            amount = -1
            if pool[row] == 1:
                del pool[row]
            else:
                pool[row] -= 1
        else:
            row = tuple(rng.randrange(domain_size) for _ in union.attrs)
            amount = 1
            pool[row] = pool.get(row, 0) + 1
        transactions.append(
            [(index, plan(row), amount) for index, plan in enumerate(plans)]
        )
    return bags, transactions
