"""Repairing inconsistent bags: minimal updates restoring consistency.

A practical companion to the decision procedures: when ledgers disagree,
*how little* must change to reconcile them?  For two bags the answer is
exact and cheap, because Lemma 2(2) localizes inconsistency to the
common marginal:

* the **repair distance** is the total-variation distance
  ``sum_z |R[Z](z) - S[Z](z)|`` between the common marginals — every
  single-tuple insertion or deletion moves exactly one marginal cell by
  one, so this is a lower bound, and the constructive repair below
  achieves it;
* :func:`repair_pair` edits one designated side, cell by cell: surplus
  mass is removed from existing rows, deficits are filled by cloning an
  existing row with the right projection (or padding fresh attributes
  with a default value).

For collections over **acyclic** schemas, :func:`repair_collection`
repairs child against parent down a join tree.  Agreement along tree
edges implies agreement for every pair (shared attributes live on the
whole tree path, by join-tree coherence), so one root-first pass makes
the collection pairwise consistent — and then Theorem 2 upgrades that to
global consistency.  Cost optimality across a whole collection is not
claimed (the single-pair optimum is).
"""

from __future__ import annotations

from typing import Sequence

from ..core.bags import Bag
from ..core.schema import Schema, project_values
from ..errors import InconsistentError
from ..hypergraphs.acyclicity import join_tree
from ..hypergraphs.hypergraph import hypergraph_of_bags


def repair_distance(r: Bag, s: Bag) -> int:
    """The total-variation distance of the common marginals: the exact
    minimal number of single-tuple insertions/deletions (on either side)
    that restores consistency."""
    common = r.schema & s.schema
    left = r.marginal(common)
    right = s.marginal(common)
    cells = set(left.support_rows()) | set(right.support_rows())
    return sum(
        abs(left.multiplicity(c) - right.multiplicity(c)) for c in cells
    )


def repair_pair(
    r: Bag, s: Bag, default_value=0
) -> tuple[Bag, int]:
    """Repair ``s`` so that the pair becomes consistent; ``r`` is the
    authoritative side.

    Returns ``(s', cost)`` where cost is the number of single-tuple
    edits, always equal to :func:`repair_distance`.  Deficit cells are
    filled by cloning an existing ``s`` row with the matching common
    projection; if the cell is entirely absent from ``s``, a fresh row
    is synthesized with ``default_value`` on the non-common attributes.
    """
    common = r.schema & s.schema
    target = r.marginal(common)
    current = dict(s.items())
    cost = 0

    def rows_for(cell: tuple) -> list[tuple]:
        return [
            row
            for row in current
            if project_values(row, s.schema, common) == cell
        ]

    cells = set(target.support_rows()) | {
        project_values(row, s.schema, common) for row in current
    }
    for cell in sorted(cells, key=repr):
        want = target.multiplicity(cell)
        have = sum(
            current[row]
            for row in rows_for(cell)
        )
        if have > want:
            surplus = have - want
            cost += surplus
            for row in sorted(rows_for(cell), key=repr):
                if surplus == 0:
                    break
                take = min(surplus, current[row])
                current[row] -= take
                surplus -= take
                if current[row] == 0:
                    del current[row]
        elif want > have:
            deficit = want - have
            cost += deficit
            candidates = rows_for(cell)
            if candidates:
                template = max(candidates, key=lambda row: current[row])
            else:
                mapping = dict(zip(common.attrs, cell))
                for attr in s.schema.attrs:
                    mapping.setdefault(attr, default_value)
                template = tuple(mapping[a] for a in s.schema.attrs)
            current[template] = current.get(template, 0) + deficit
    repaired = Bag(s.schema, current)
    expected = repair_distance(r, s)
    if cost != expected:
        raise AssertionError(
            f"repair cost {cost} != repair distance {expected}; "
            f"construction bug"
        )
    return repaired, cost


def repair_collection(
    bags: Sequence[Bag], default_value=0
) -> tuple[list[Bag], int]:
    """Repair a collection over an acyclic schema into global
    consistency with one root-first pass down a join tree.

    Bag 0's schema-edge... more precisely: the bag matched to the join
    tree root is authoritative; every other bag is repaired against its
    (already repaired) tree parent.  Returns the repaired collection
    (order preserved) and the total edit cost.  Raises
    :class:`CyclicSchemaError` on cyclic schemas, where tree-edge
    agreement would not imply pairwise consistency.

    Duplicate-schema bags are repaired against the first bag with that
    schema (made equal to it).
    """
    if not bags:
        raise InconsistentError("empty collection")
    hypergraph = hypergraph_of_bags(bags)
    tree = join_tree(hypergraph)  # raises when cyclic
    # One representative bag per schema (first occurrence wins).
    representative: dict[Schema, int] = {}
    for i, bag in enumerate(bags):
        representative.setdefault(bag.schema, i)
    repaired_by_schema: dict[Schema, Bag] = {}
    total_cost = 0
    # Root-first order over tree nodes.
    children = tree.children()
    order = [tree.root]
    queue = [tree.root]
    while queue:
        node = queue.pop(0)
        for child in sorted(children[node]):
            order.append(child)
            queue.append(child)
    for node in order:
        schema = tree.edges[node]
        bag = bags[representative[schema]]
        parent = tree.parent[node]
        if parent < 0:
            repaired_by_schema[schema] = bag
            continue
        anchor = repaired_by_schema[tree.edges[parent]]
        fixed, cost = repair_pair(anchor, bag, default_value)
        repaired_by_schema[schema] = fixed
        total_cost += cost
    out = []
    for bag in bags:
        fixed = repaired_by_schema[bag.schema]
        if bag != fixed:
            # Count making duplicates equal (unary-size difference is a
            # coarse but honest cost for the duplicate case).
            if bags[representative[bag.schema]] is not bag:
                total_cost += _edit_cost(bag, fixed)
        out.append(fixed)
    return out, total_cost


def _edit_cost(before: Bag, after: Bag) -> int:
    rows = set(before.support_rows()) | set(after.support_rows())
    return sum(
        abs(before.multiplicity(row) - after.multiplicity(row))
        for row in rows
    )
