"""Witness verification, minimal witnesses, and the size bounds.

Implements the algorithmic content of Section 5.3 and the bound
statements of Theorems 3 and 5:

* :func:`is_witness` — the NP certificate check behind Corollary 3:
  verify ``W[Xi] = Ri`` for every bag of the collection.
* :func:`minimal_pairwise_witness` — Corollary 4's strongly polynomial
  self-reducibility: delete middle edges of N(R, S) one at a time,
  keeping an edge only if every saturated flow uses it; the surviving
  edges support a *minimal* witness with
  ``||W||supp <= ||R||supp + ||S||supp`` (Theorem 5).
* :func:`minimize_witness` — for m >= 3 bags, greedy inclusion-minimal
  support reduction via the exact integer search (worst-case
  exponential; the small-instance oracle for Theorem 3(3)).
* :func:`check_theorem3_bounds` / :func:`check_theorem5_bound` — runnable
  bound checkers used by tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.bags import Bag
from ..errors import InconsistentError
from ..flows.maxflow import saturated_flow
from ..lp.caratheodory import eisenbrand_shmonin_bound, minimize_support
from ..lp.integer_feasibility import DEFAULT_NODE_BUDGET
from .pairwise import build_network, witness_from_flow
from .program import ConsistencyProgram


def is_witness(bags: Sequence[Bag], candidate: Bag) -> bool:
    """True iff ``candidate`` witnesses the global consistency of the
    collection: its marginal on each bag's schema equals that bag."""
    union = None
    for bag in bags:
        union = bag.schema if union is None else union | bag.schema
    if union is None or candidate.schema != union:
        return False
    return all(
        candidate.marginal(bag.schema) == bag for bag in bags
    )


def witness_marginal_residuals(
    bags: Sequence[Bag], candidate: Bag
) -> dict:
    """Where (and by how much) a candidate witness misses each bag.

    Maps each bag's schema to the sparse signed difference ``bag -
    candidate[schema]`` per cell; a true witness has every residual
    empty (``is_witness`` is "all residuals empty" plus the union-schema
    check).  This is the quantity the fold-tree delta repair
    (:mod:`repro.engine.live_global`) drives to zero cell-by-cell, and
    the actionable diagnostic when a maintained or stored witness is
    suspected of drift: it names the exact cells to fix.
    """
    residuals: dict = {}
    for bag in bags:
        marginal = candidate.marginal(bag.schema)
        delta: dict[tuple, int] = {}
        for row, mult in bag.items():
            diff = mult - marginal.multiplicity(row)
            if diff:
                delta[row] = diff
        for row, mult in marginal.items():
            if bag.multiplicity(row) == 0:
                delta[row] = -mult
        residuals[bag.schema] = delta
    return residuals


def minimal_pairwise_witness(r: Bag, s: Bag) -> Bag:
    """Corollary 4: a minimal witness to the consistency of two bags.

    Loops over the middle edges of N(R, S); each edge is temporarily
    removed and the max flow recomputed — if still saturated the edge is
    deleted permanently.  The final saturated flow has inclusion-minimal
    middle-edge support, giving a minimal witness; Theorem 5 then bounds
    ``||W||supp`` by ``||R||supp + ||S||supp`` (checked before return).

    Raises :class:`InconsistentError` when the bags are inconsistent.
    """
    network = build_network(r, s)
    if saturated_flow(network) is None:
        raise InconsistentError(
            "bags are not consistent (no saturated flow in N(R, S))"
        )
    middles = [
        (u, v)
        for u, v, _ in network.edges()
        if u != network.source and v != network.sink
    ]
    for u, v in sorted(middles, key=repr):
        trial = network.copy()
        trial.remove_edge(u, v)
        if saturated_flow(trial) is not None:
            network = trial
    flow = saturated_flow(network)
    assert flow is not None, "deletions preserved saturation by construction"
    witness = witness_from_flow(r, s, flow)
    limit = r.support_size + s.support_size
    if witness.support_size > limit:
        raise AssertionError(
            f"Theorem 5 violated: minimal witness support "
            f"{witness.support_size} exceeds {limit}"
        )
    return witness


def minimize_witness(
    bags: Sequence[Bag],
    witness: Bag,
    node_budget: int | None = DEFAULT_NODE_BUDGET,
) -> Bag:
    """An inclusion-minimal-support witness refining ``witness``.

    Uses the greedy support-reduction of
    :func:`repro.lp.caratheodory.minimize_support` on P(R1, ..., Rm).
    The result is a *minimal witness* in the paper's sense (no witness
    has support strictly contained in it), hence obeys Theorem 3(3).
    """
    if not is_witness(bags, witness):
        raise InconsistentError("candidate is not a witness for the bags")
    program = ConsistencyProgram.build(bags)
    solution = program.solution_from_witness(witness)
    reduced = minimize_support(program.system, solution, node_budget)
    return program.witness_from_solution(reduced)


@dataclass(frozen=True)
class Theorem3Report:
    """Outcome of checking Theorem 3's three bounds on a witness."""

    multiplicity_ok: bool
    support_unary_ok: bool
    support_binary_ok: bool | None  # None when minimality was not claimed
    witness_support: int
    unary_bound: int
    binary_bound: float
    multiplicity_bound: int

    @property
    def all_ok(self) -> bool:
        checks = [self.multiplicity_ok, self.support_unary_ok]
        if self.support_binary_ok is not None:
            checks.append(self.support_binary_ok)
        return all(checks)


def check_theorem3_bounds(
    bags: Sequence[Bag], witness: Bag, minimal: bool = False
) -> Theorem3Report:
    """Verify Theorem 3 on a concrete witness.

    1. ``||W||mu <= max_i ||Ri||mu``;
    2. ``||W||supp <= sum_i ||Ri||u``;
    3. for minimal witnesses, ``||W||supp <= sum_i ||Ri||b``.
    """
    if not is_witness(bags, witness):
        raise InconsistentError("candidate is not a witness for the bags")
    mult_bound = max((bag.multiplicity_bound for bag in bags), default=0)
    unary_bound = sum(bag.unary_size for bag in bags)
    binary_bound = sum(bag.binary_size for bag in bags)
    return Theorem3Report(
        multiplicity_ok=witness.multiplicity_bound <= mult_bound,
        support_unary_ok=witness.support_size <= unary_bound,
        support_binary_ok=(
            witness.support_size <= binary_bound + 1e-9 if minimal else None
        ),
        witness_support=witness.support_size,
        unary_bound=unary_bound,
        binary_bound=binary_bound,
        multiplicity_bound=mult_bound,
    )


def check_theorem5_bound(r: Bag, s: Bag, witness: Bag) -> bool:
    """``||W||supp <= ||R||supp + ||S||supp`` for a minimal two-bag
    witness (Theorem 5)."""
    if not is_witness([r, s], witness):
        raise InconsistentError("candidate is not a witness for the bags")
    return witness.support_size <= r.support_size + s.support_size


def certificate_size_bound(bags: Sequence[Bag]) -> float:
    """The Corollary 3 certificate bound: a minimal witness has support
    at most ``sum_i ||Ri||b`` (so global consistency is in NP even with
    binary multiplicities)."""
    return eisenbrand_shmonin_bound(
        [mult for bag in bags for _, mult in bag.items()]
    )
