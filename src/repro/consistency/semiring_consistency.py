"""Consistency of K-relations — the paper's Section 6 open problem.

The concluding remarks ask whether the paper's results extend to
K-relations over positive semirings under the *strict* notion of
consistency (exact marginal equality).  This module explores the
question executably for the semirings where linear-system reasoning is
available:

* **Booleans** (= relations): classical, delegated to the set case.
* **Naturals** (= bags): the paper itself, delegated to the bag layer.
* **Non-negative rationals**: answered positively here.  Lemma 2's
  closed-form construction ``x_t = R(t[X]) S(t[Y]) / R(t[Z])`` never
  leaves Q>=0, so two Q>=0-relations are consistent iff their common
  marginals agree, and the Theorem 2 Step-1 induction goes through
  verbatim: :func:`acyclic_global_witness_rationals` folds closed-form
  witnesses along a running-intersection order.

For the *negative* side, the Tseitin counterexamples transfer to every
positive semiring: a witness's support tuples must satisfy all the
modular constraints regardless of what ring the annotations live in, and
:func:`joint_support_is_empty` checks exactly that (the join of the
supports is empty), which refutes witnesses over *any* semiring with a
positivity property.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..core.krelations import KRelation
from ..core.relations import join_all
from ..core.schema import Schema
from ..core.semirings import BOOLEAN, NATURALS, NONNEG_RATIONALS
from ..engine import kernels
from ..errors import InconsistentError, MultiplicityError
from ..hypergraphs.acyclicity import running_intersection_order
from ..hypergraphs.hypergraph import Hypergraph


def krelations_consistent(r: KRelation, s: KRelation) -> bool:
    """Strict consistency of two K-relations over B, N, or Q>=0.

    For all three semirings, equal common marginals are necessary (any
    witness marginalizes to both sides) and sufficient (Booleans: the
    join witnesses; naturals: Lemma 2; rationals: the closed form below).
    """
    if r.semiring is not s.semiring:
        raise MultiplicityError(
            f"cannot compare a {r.semiring.name}-relation with a "
            f"{s.semiring.name}-relation"
        )
    if r.semiring not in (BOOLEAN, NATURALS, NONNEG_RATIONALS):
        raise MultiplicityError(
            f"no decision procedure for semiring {r.semiring.name}; "
            f"this is the paper's open problem"
        )
    common = r.schema & s.schema
    return r.marginal(common) == s.marginal(common)


def rational_pairwise_witness(r: KRelation, s: KRelation) -> KRelation:
    """The closed-form Q>=0 witness (Lemma 2's (2) => (3) construction,
    which is already a witness over the rationals — no integrality step
    is needed)."""
    for k in (r, s):
        if k.semiring is not NONNEG_RATIONALS:
            raise MultiplicityError(
                f"expected Q>=0-relations, got {k.semiring.name}"
            )
    plan = kernels.join_plan(r.schema.attrs, s.schema.attrs)
    common = plan.common
    r_common = r.marginal(common)
    if r_common != s.marginal(common):
        raise InconsistentError(
            "Q>=0-relations disagree on their common marginal"
        )
    buckets = kernels.group_items(s.items(), plan.right_key)
    left_key, emit = plan.left_key, plan.emit
    annots: dict[tuple, Fraction] = {}
    for lrow, lval in r.items():
        bucket = buckets.get(left_key(lrow))
        if not bucket:
            continue
        denominator = Fraction(r_common.annotation(left_key(lrow)))
        for rrow, rval in bucket:
            annots[emit(lrow + rrow)] = (
                Fraction(lval) * Fraction(rval) / denominator
            )
    return KRelation(plan.union, NONNEG_RATIONALS, annots)


def is_krelation_witness(
    collection: Sequence[KRelation], candidate: KRelation
) -> bool:
    """Strict witness check: the candidate marginalizes onto every
    member."""
    union = None
    for k in collection:
        union = k.schema if union is None else union | k.schema
    if union is None or candidate.schema != union:
        return False
    return all(candidate.marginal(k.schema) == k for k in collection)


def acyclic_global_witness_rationals(
    collection: Sequence[KRelation],
) -> KRelation:
    """Theorem 6 transplanted to Q>=0-relations.

    Requires pairwise consistency and an acyclic schema; folds the
    closed-form witness along a running-intersection ordering.  The
    existence of this construction answers the Section 6 question
    positively for the non-negative rational semiring (under strict
    consistency), mirroring the bag case without any integrality
    machinery.
    """
    if not collection:
        raise InconsistentError("empty collection")
    for k in collection:
        if k.semiring is not NONNEG_RATIONALS:
            raise MultiplicityError(
                f"expected Q>=0-relations, got {k.semiring.name}"
            )
    for i in range(len(collection)):
        for j in range(i + 1, len(collection)):
            if not krelations_consistent(collection[i], collection[j]):
                raise InconsistentError(
                    "collection is not pairwise consistent"
                )
    by_schema: dict[Schema, KRelation] = {}
    for k in collection:
        if k.schema in by_schema and by_schema[k.schema] != k:
            raise InconsistentError(
                "two distinct K-relations share a schema"
            )
        by_schema.setdefault(k.schema, k)
    hypergraph = Hypergraph.from_schemas(list(by_schema))
    rip = running_intersection_order(hypergraph)  # raises when cyclic
    ordered = [by_schema[edge] for edge in rip.order]
    witness = ordered[0]
    for k in ordered[1:]:
        witness = rational_pairwise_witness(witness, k)
    if not is_krelation_witness(list(by_schema.values()), witness):
        raise AssertionError(
            "rational Theorem 6 construction failed; contradicts the "
            "Step 1 induction"
        )
    return witness


def joint_support_is_empty(collection: Sequence[KRelation]) -> bool:
    """True when the join of the supports is empty — a semiring-agnostic
    refutation of global consistency.

    Any witness over any semiring with positive supports must place its
    support inside the join of supports (Lemma 1's argument never uses
    arithmetic beyond positivity), so an empty join refutes global
    consistency over *every* positive semiring at once.  The Tseitin
    collections all have this property, which is why Theorem 2's cyclic
    direction transfers to the K-relation setting wholesale.
    """
    supports = [k.to_relation() for k in collection]
    return len(join_all(supports)) == 0
