"""The set-semantics baseline (Section 5.1 and the classical facts).

For relations the landscape the paper contrasts against:

* two relations are consistent iff their projections on the common
  attributes agree, and the join witnesses consistency;
* a collection is globally consistent iff the n-ary join projects back
  onto every input (so for every *fixed* schema the problem is
  polynomial — the join has polynomially many rows when m is fixed);
* the join is the largest witness (every witness is contained in it);
* pairwise consistency does not imply global consistency on cyclic
  schemas — :func:`bfmy_counterexample` is the paper's three-relation
  example R(AB) = {00, 11}, S(BC) = {01, 10}, T(AC) = {00, 11}.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from ..core.relations import Relation, join_all
from ..core.schema import Schema
from ..errors import InconsistentError


def relations_consistent(r: Relation, s: Relation) -> bool:
    """Two relations are consistent iff their common projections agree."""
    common = r.schema & s.schema
    return r.project(common) == s.project(common)


def relations_pairwise_consistent(relations: Sequence[Relation]) -> bool:
    """Every two relations of the collection are consistent."""
    return all(
        relations_consistent(relations[i], relations[j])
        for i, j in combinations(range(len(relations)), 2)
    )


def relations_globally_consistent(relations: Sequence[Relation]) -> bool:
    """Global consistency for relations: the join projects back onto
    every input relation (Section 5.1)."""
    if not relations:
        raise InconsistentError("empty collection")
    joined = join_all(list(relations))
    return all(
        joined.project(rel.schema) == rel for rel in relations
    )


def universal_relation(relations: Sequence[Relation]) -> Relation:
    """The largest witness (the join) when the collection is globally
    consistent; raises :class:`InconsistentError` otherwise."""
    if not relations_globally_consistent(relations):
        raise InconsistentError(
            "collection is not globally consistent; no universal relation"
        )
    return join_all(list(relations))


def is_relation_witness(
    relations: Sequence[Relation], candidate: Relation
) -> bool:
    """Certificate check under set semantics."""
    union = None
    for rel in relations:
        union = rel.schema if union is None else union | rel.schema
    if union is None or candidate.schema != union:
        return False
    return all(
        candidate.project(rel.schema) == rel for rel in relations
    )


def bfmy_counterexample() -> list[Relation]:
    """The paper's Section 4 example of pairwise consistent but globally
    inconsistent relations over the triangle schema."""
    ab = Schema(["A", "B"])
    bc = Schema(["B", "C"])
    ac = Schema(["A", "C"])
    r = Relation.from_pairs(ab, [(0, 0), (1, 1)])
    s = Relation.from_pairs(bc, [(0, 1), (1, 0)])
    t = Relation.from_pairs(ac, [(0, 0), (1, 1)])
    return [r, s, t]
