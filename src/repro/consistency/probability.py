"""Vorob'ev's theorem: local-to-global consistency for distributions.

The related-work section recounts that Vorob'ev (1962) characterized
when every pairwise consistent family of probability distributions has a
joint distribution — by a hypergraph condition later recognized as
acyclicity.  With exact rational probabilities this is the Q>=0 story of
:mod:`repro.consistency.semiring_consistency` plus a normalization, so
the machinery here is thin and the theorems come out as corollaries:

* two distributions are consistent iff their common marginals agree
  (:func:`distributions_consistent`); the *conditional-independence
  glue* ``p(t) = p_R(t[X]) p_S(t[Y]) / p(t[Z])`` is a joint distribution
  (:func:`glue_pair`) — Lemma 2's closed form, renormalized by nothing;
* over acyclic schemas every pairwise consistent family has a joint
  distribution, built by folding the glue along a running-intersection
  order (:func:`joint_distribution_acyclic`) — Vorob'ev's positive
  direction;
* over cyclic schemas the normalized Tseitin collections are pairwise
  consistent families with no joint distribution
  (:func:`contextual_family`) — the negative direction, and the formal
  kinship with Bell-type contextuality the paper points out.

A distribution is a :class:`~repro.core.krelations.KRelation` over the
non-negative rationals whose annotations sum to 1.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..core.bags import Bag
from ..core.krelations import KRelation
from ..core.semirings import NONNEG_RATIONALS
from ..errors import MultiplicityError
from ..hypergraphs.hypergraph import Hypergraph
from .local_global import counterexample_for_cyclic
from .semiring_consistency import (
    acyclic_global_witness_rationals,
    krelations_consistent,
    rational_pairwise_witness,
)


def is_distribution(k: KRelation) -> bool:
    """A non-empty Q>=0-relation whose annotations sum to exactly 1."""
    if k.semiring is not NONNEG_RATIONALS or not k:
        return False
    total = sum((Fraction(v) for _, v in k.items()), Fraction(0))
    return total == 1


def distribution(schema_rows: dict, schema=None) -> KRelation:
    """Build a distribution from ``{row: probability}``; probabilities
    are normalized exactly if they do not already sum to 1."""

    if schema is None:
        raise MultiplicityError("distribution() requires schema=")
    values = {row: Fraction(v) for row, v in schema_rows.items()}
    total = sum(values.values(), Fraction(0))
    if total <= 0:
        raise MultiplicityError("probabilities must have positive total")
    return KRelation(
        schema,
        NONNEG_RATIONALS,
        {row: v / total for row, v in values.items()},
    )


def from_bag(bag: Bag) -> KRelation:
    """The empirical distribution of a bag (frequencies / total)."""
    total = bag.unary_size
    if total == 0:
        raise MultiplicityError("empty bag has no empirical distribution")
    return KRelation(
        bag.schema,
        NONNEG_RATIONALS,
        {row: Fraction(mult, total) for row, mult in bag.items()},
    )


def distributions_consistent(p: KRelation, q: KRelation) -> bool:
    """Two distributions are consistent iff their common marginals agree
    — the probability reading of Lemma 2(1) <=> (2)."""
    _require_distribution(p)
    _require_distribution(q)
    return krelations_consistent(p, q)


def glue_pair(p: KRelation, q: KRelation) -> KRelation:
    """The conditional-independence glue of two consistent distributions
    — a joint distribution with the given marginals.

    This is exactly Lemma 2's closed-form solution; its total mass is
    automatically 1 (summing the formula over the join telescopes to the
    total of p).
    """
    _require_distribution(p)
    _require_distribution(q)
    joint = rational_pairwise_witness(p, q)
    assert is_distribution(joint), "glue lost normalization"
    return joint


def joint_distribution_acyclic(
    family: Sequence[KRelation],
) -> KRelation:
    """Vorob'ev's positive direction: a joint distribution for any
    pairwise consistent family over an acyclic schema."""
    for p in family:
        _require_distribution(p)
    joint = acyclic_global_witness_rationals(family)
    assert is_distribution(joint), "fold lost normalization"
    return joint


def has_joint_distribution(family: Sequence[KRelation]) -> bool:
    """Decide existence of a joint distribution.

    Acyclic schemas: pairwise consistency decides (Vorob'ev).  Cyclic
    schemas: falls back to exact rational LP feasibility of the marginal
    equations over the join of supports.
    """
    from ..hypergraphs.acyclicity import is_acyclic
    from ..lp.simplex import solve_lp

    for p in family:
        _require_distribution(p)
    pairwise = all(
        krelations_consistent(family[i], family[j])
        for i in range(len(family))
        for j in range(i + 1, len(family))
    )
    if not pairwise:
        return False
    hypergraph = Hypergraph.from_schemas([p.schema for p in family])
    if is_acyclic(hypergraph):
        return True
    # Cyclic: exact LP over the join of supports (scaled to integers).
    from ..core.relations import join_all
    from ..core.schema import project_values

    join = join_all([p.to_relation() for p in family])
    rows = sorted(join.rows, key=repr)
    if not rows:
        return False
    union = join.schema
    a: list[list[Fraction]] = []
    b: list[Fraction] = []
    for p in family:
        for row, value in sorted(p.items(), key=repr):
            coeffs = [
                Fraction(1)
                if project_values(t, union, p.schema) == row
                else Fraction(0)
                for t in rows
            ]
            a.append(coeffs)
            b.append(Fraction(value))
    return solve_lp(a, b).status == "optimal"


def contextual_family(hypergraph: Hypergraph) -> list[KRelation]:
    """Vorob'ev's negative direction, constructively: for a cyclic
    hypergraph, a pairwise consistent family of distributions with no
    joint distribution (the normalized Tseitin collection).

    Raises :class:`AcyclicSchemaError` on acyclic hypergraphs, where
    Vorob'ev's theorem says no such family exists.
    """
    bags = counterexample_for_cyclic(hypergraph)  # raises when acyclic
    return [from_bag(bag) for bag in bags]


def _require_distribution(p: KRelation) -> None:
    if not is_distribution(p):
        raise MultiplicityError(
            f"{p!r} is not a probability distribution (Q>=0 annotations "
            f"summing to 1)"
        )
