"""Inconsistency certificates: succinct, independently checkable proofs.

A "no" answer deserves evidence as much as a "yes" answer (where the
witness bag is the evidence, Corollary 3).  This module produces and
verifies three kinds of refutation:

* **Marginal certificates** (pairwise): a common-attribute cell where
  the two marginals differ — O(1) to check, exists iff the pair is
  inconsistent (Lemma 2(2)).
* **Cut certificates** (pairwise): a source-sink cut of N(R, S) with
  capacity below the total supply — the max-flow/min-cut dual of
  Lemma 2(5).
* **Farkas certificates** (collections): a rational vector refuting
  even the LP relaxation of P(R1..Rm).  Checkable in polynomial time;
  exists whenever the relaxation is infeasible.  The Tseitin
  counterexamples (empty joint support with positive demands) always
  admit one.

Honesty note: a collection can be rationally feasible yet integrally
infeasible; there, no Farkas certificate exists and — GCPB being
NP-complete (Theorem 4) with no known coNP-side succinct certificates —
this module returns the honest ``SearchRefutation`` marker, whose
"verification" is re-running the exhaustive search.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence, Union

from ..core.bags import Bag
from ..core.schema import Schema
from ..flows.maxflow import CutResult, min_cut, verify_cut
from ..lp.integer_feasibility import DEFAULT_NODE_BUDGET, find_solution
from ..lp.simplex import farkas_certificate, verify_farkas
from .pairwise import build_network
from .program import ConsistencyProgram


@dataclass(frozen=True)
class MarginalCertificate:
    """A cell of the common marginal where two bags disagree."""

    left_index: int
    right_index: int
    common: Schema
    cell: tuple
    left_value: int
    right_value: int


@dataclass(frozen=True)
class CutCertificate:
    """A cut of N(R, S) whose capacity is below the total supply."""

    cut: CutResult
    supply: int


@dataclass(frozen=True)
class FarkasCertificate:
    """A rational refutation of the LP relaxation of P(R1..Rm).

    ``multipliers[i]`` pairs with ``labels[i] = (bag index, support
    row)``; checking requires only the original bags (see
    :func:`verify_certificate`).
    """

    multipliers: tuple[Fraction, ...]
    labels: tuple[tuple[int, tuple], ...]


@dataclass(frozen=True)
class SearchRefutation:
    """The honest marker for integrally-infeasible-but-LP-feasible
    collections: the exhaustive search found no witness.  Not succinct;
    re-verification means re-searching."""

    nodes_allowed: int | None


Certificate = Union[
    MarginalCertificate, CutCertificate, FarkasCertificate, SearchRefutation
]


def pairwise_certificate(r: Bag, s: Bag) -> MarginalCertificate | None:
    """A marginal disagreement cell, or None when the pair is
    consistent."""
    common = r.schema & s.schema
    left = r.marginal(common)
    right = s.marginal(common)
    cells = set(left.support_rows()) | set(right.support_rows())
    for cell in sorted(cells, key=repr):
        lv, rv = left.multiplicity(cell), right.multiplicity(cell)
        if lv != rv:
            return MarginalCertificate(0, 1, common, cell, lv, rv)
    return None


def cut_certificate(r: Bag, s: Bag) -> CutCertificate | None:
    """A deficient cut of N(R, S), or None when a saturated flow
    exists.

    Exists iff the bags are inconsistent *and* their totals could have
    been routed (for unequal totals the marginal certificate on the
    empty-schema cell is the natural evidence; a cut below min(total)
    still exists whenever max-flow < supply)."""
    network = build_network(r, s)
    supply = network.source_capacity()
    cut = min_cut(network)
    if cut.capacity >= supply and supply == network.sink_capacity():
        return None
    return CutCertificate(cut, supply)


def collection_certificate(
    bags: Sequence[Bag],
    node_budget: int | None = DEFAULT_NODE_BUDGET,
) -> Certificate | None:
    """Evidence that a collection is globally inconsistent, or None when
    it is consistent.

    Tries, in order of checkability: a pairwise marginal certificate; a
    Farkas certificate for the LP relaxation of P(R1..Rm); the honest
    search refutation.
    """
    for i in range(len(bags)):
        for j in range(i + 1, len(bags)):
            cert = pairwise_certificate(bags[i], bags[j])
            if cert is not None:
                return MarginalCertificate(
                    i, j, cert.common, cert.cell,
                    cert.left_value, cert.right_value,
                )
    program = ConsistencyProgram.build(list(bags))
    y = farkas_certificate(program.dense_matrix(), program.dense_rhs())
    if y is not None:
        return FarkasCertificate(tuple(y), program.constraint_labels)
    if find_solution(program.system, node_budget) is None:
        return SearchRefutation(node_budget)
    return None


def verify_certificate(
    bags: Sequence[Bag], certificate: Certificate
) -> bool:
    """Independently check a certificate against the original bags."""
    if isinstance(certificate, MarginalCertificate):
        r = bags[certificate.left_index]
        s = bags[certificate.right_index]
        if certificate.common != (r.schema & s.schema):
            return False
        lv = r.marginal(certificate.common).multiplicity(certificate.cell)
        rv = s.marginal(certificate.common).multiplicity(certificate.cell)
        return (
            lv == certificate.left_value
            and rv == certificate.right_value
            and lv != rv
        )
    if isinstance(certificate, CutCertificate):
        if len(bags) != 2:
            return False
        network = build_network(bags[0], bags[1])
        if not verify_cut(network, certificate.cut):
            return False
        return (
            certificate.supply == network.source_capacity()
            and (
                certificate.cut.capacity < certificate.supply
                or network.source_capacity() != network.sink_capacity()
            )
        )
    if isinstance(certificate, FarkasCertificate):
        program = ConsistencyProgram.build(list(bags))
        if certificate.labels != program.constraint_labels:
            return False
        return verify_farkas(
            program.dense_matrix(),
            program.dense_rhs(),
            list(certificate.multipliers),
        )
    if isinstance(certificate, SearchRefutation):
        program = ConsistencyProgram.build(list(bags))
        return find_solution(program.system, certificate.nodes_allowed) is None
    return False
