"""Consistency of two bags — all five characterizations of Lemma 2.

Lemma 2 proves the equivalence of:

1. R and S are consistent (some bag T has T[X] = R and T[Y] = S);
2. R[X & Y] = S[X & Y];
3. P(R, S) is feasible over the rationals;
4. P(R, S) is feasible over the integers;
5. N(R, S) admits a saturated flow.

Each statement is implemented as an independently runnable decider
(:func:`consistent_via_marginals`, :func:`consistent_via_lp`,
:func:`consistent_via_integer_search`, :func:`consistent_via_flow`,
:func:`consistent_via_witness_search`), and the test suite checks they
agree.  The practical API is :func:`are_consistent` (the O(n) marginal
test) and :func:`consistency_witness` (Corollary 1: a witness in
strongly polynomial time via max-flow).

:func:`rational_witness` exposes the explicit closed-form solution
``x_t = R(t[X]) * S(t[Y]) / R(t[Z])`` used in the (2) => (3) step.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.bags import Bag
from ..core.schema import project_values
from ..errors import InconsistentError
from ..flows.maxflow import FlowResult, saturated_flow
from ..flows.network import FlowNetwork
from ..lp.integer_feasibility import DEFAULT_NODE_BUDGET, find_solution
from ..lp.simplex import solve_lp
from .program import ConsistencyProgram

SOURCE = ("source", "*")
SINK = ("sink", "*")


def are_consistent(r: Bag, s: Bag) -> bool:
    """Lemma 2(2): the polynomial-time consistency test — equal marginals
    on the common attributes."""
    common = r.schema & s.schema
    return r.marginal(common) == s.marginal(common)


consistent_via_marginals = are_consistent


def build_network(r: Bag, s: Bag) -> FlowNetwork:
    """The network N(R, S) of Section 3.

    One node per support tuple of each bag plus source and sink; source
    edges carry R(r), sink edges carry S(s), and middle edges (one per
    join tuple) carry "unbounded" capacity, realized as the total
    multiplicity of R (no flow can exceed it).
    """
    network = FlowNetwork(SOURCE, SINK)
    unbounded = max(r.unary_size, s.unary_size, 1)
    for row, mult in r.items():
        network.add_edge(SOURCE, ("r", row), mult)
    for row, mult in s.items():
        network.add_edge(("s", row), SINK, mult)
    join = r.support().join(s.support())
    union = join.schema
    for t in join.rows:
        left = project_values(t, union, r.schema)
        right = project_values(t, union, s.schema)
        network.add_edge(("r", left), ("s", right), unbounded)
    return network


def consistent_via_flow(r: Bag, s: Bag) -> bool:
    """Lemma 2(5): N(R, S) admits a saturated flow."""
    return saturated_flow(build_network(r, s)) is not None


def witness_from_flow(r: Bag, s: Bag, flow: FlowResult) -> Bag:
    """The witness T(t) := f(t[X], t[Y]) extracted from a saturated flow
    (the (5) => (1) step of Lemma 2)."""
    union = r.schema | s.schema
    join = r.support().join(s.support())
    mults: dict[tuple, int] = {}
    for t in join.rows:
        left = ("r", project_values(t, union, r.schema))
        right = ("s", project_values(t, union, s.schema))
        value = flow.on(left, right)
        if value:
            mults[t] = value
    return Bag(union, mults)


def consistency_witness(r: Bag, s: Bag) -> Bag:
    """Corollary 1: a witness to the consistency of two bags, computed
    via one integral max-flow; raises :class:`InconsistentError` when the
    bags are inconsistent."""
    flow = saturated_flow(build_network(r, s))
    if flow is None:
        raise InconsistentError(
            "bags are not consistent (no saturated flow in N(R, S))"
        )
    return witness_from_flow(r, s, flow)


def rational_witness(r: Bag, s: Bag) -> dict[tuple, Fraction]:
    """The closed-form rational solution of P(R, S) from Lemma 2's
    (2) => (3) step: ``x_t = R(t[X]) * S(t[Y]) / R(t[Z])``.

    Keys are raw join tuples over the union schema.  Raises
    :class:`InconsistentError` when R[Z] != S[Z].
    """
    common = r.schema & s.schema
    if r.marginal(common) != s.marginal(common):
        raise InconsistentError("bags disagree on their common marginal")
    union = r.schema | s.schema
    r_common = r.marginal(common)
    join = r.support().join(s.support())
    out: dict[tuple, Fraction] = {}
    for t in join.rows:
        x = project_values(t, union, r.schema)
        y = project_values(t, union, s.schema)
        z = project_values(t, union, common)
        out[t] = Fraction(r.multiplicity(x) * s.multiplicity(y), r_common.multiplicity(z))
    return out


def consistent_via_lp(r: Bag, s: Bag) -> bool:
    """Lemma 2(3): rational feasibility of P(R, S), by exact simplex."""
    program = ConsistencyProgram.build([r, s])
    result = solve_lp(program.dense_matrix(), program.dense_rhs())
    return result.status == "optimal"


def consistent_via_integer_search(
    r: Bag, s: Bag, node_budget: int | None = DEFAULT_NODE_BUDGET
) -> bool:
    """Lemma 2(4): integer feasibility of P(R, S), by exact search."""
    program = ConsistencyProgram.build([r, s])
    return find_solution(program.system, node_budget) is not None


def consistent_via_witness_search(
    r: Bag, s: Bag, node_budget: int | None = DEFAULT_NODE_BUDGET
) -> Bag | None:
    """Lemma 2(1) taken literally: search for a witness bag directly.

    Returns a witness or None; the definitional (exponential) route, used
    as the oracle in cross-checks.
    """
    program = ConsistencyProgram.build([r, s])
    solution = find_solution(program.system, node_budget)
    if solution is None:
        return None
    return program.witness_from_solution(solution)


ALL_DECIDERS = (
    ("marginals", consistent_via_marginals),
    ("lp", consistent_via_lp),
    ("integer", consistent_via_integer_search),
    ("flow", consistent_via_flow),
    ("witness", lambda r, s: consistent_via_witness_search(r, s) is not None),
)
