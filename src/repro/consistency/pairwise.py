"""Consistency of two bags — all five characterizations of Lemma 2.

Lemma 2 proves the equivalence of:

1. R and S are consistent (some bag T has T[X] = R and T[Y] = S);
2. R[X & Y] = S[X & Y];
3. P(R, S) is feasible over the rationals;
4. P(R, S) is feasible over the integers;
5. N(R, S) admits a saturated flow.

Each statement is implemented as an independently runnable decider
(:func:`consistent_via_marginals`, :func:`consistent_via_lp`,
:func:`consistent_via_integer_search`, :func:`consistent_via_flow`,
:func:`consistent_via_witness_search`), and the test suite checks they
agree.  The practical API is :func:`are_consistent` (the O(n) marginal
test) and :func:`consistency_witness` (Corollary 1: a witness in
strongly polynomial time via max-flow).

:func:`rational_witness` exposes the explicit closed-form solution
``x_t = R(t[X]) * S(t[Y]) / R(t[Z])`` used in the (2) => (3) step.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.bags import Bag
from ..engine import columnar, kernels
from ..engine.index import BagIndex
from ..errors import InconsistentError
from ..flows.maxflow import FlowResult, saturated_flow
from ..flows.network import FlowNetwork
from ..lp.integer_feasibility import DEFAULT_NODE_BUDGET, find_solution
from ..lp.simplex import solve_lp
from .program import ConsistencyProgram

SOURCE = ("source", "*")
SINK = ("sink", "*")


def are_consistent(r: Bag, s: Bag) -> bool:
    """Lemma 2(2): the polynomial-time consistency test — equal marginals
    on the common attributes.

    When both bags carry a columnar encoding the comparison runs on
    their cached common-attribute groupings (two array equalities);
    otherwise the memoized marginal bags are compared directly.
    """
    verdict = columnar.try_consistent(r, s)
    if verdict is not None:
        return verdict
    columnar.count_row("consistency")
    common = r.schema & s.schema
    return r.marginal(common) == s.marginal(common)


consistent_via_marginals = are_consistent


def build_network(r: Bag, s: Bag) -> FlowNetwork:
    """The network N(R, S) of Section 3.

    One node per support tuple of each bag plus source and sink; source
    edges carry R(r), sink edges carry S(s), and middle edges (one per
    join tuple) carry "unbounded" capacity, realized as the total
    multiplicity of R (no flow can exceed it).

    Join tuples are in bijection with matching support pairs, so the
    engine streams ``(r row, s row)`` pairs straight out of S's cached
    common-attribute buckets instead of materializing the support join.
    """
    network = FlowNetwork(SOURCE, SINK)
    unbounded = max(r.unary_size, s.unary_size, 1)
    for row, mult in r.items():
        network.add_edge(SOURCE, ("r", row), mult)
    for row, mult in s.items():
        network.add_edge(("s", row), SINK, mult)
    plan = kernels.join_plan(r.schema.attrs, s.schema.attrs)
    buckets = BagIndex.of(s).buckets(plan.common)
    for lrow, (rrow, _) in kernels.iter_join_pairs(
        r.support_rows(), plan, buckets
    ):
        network.add_edge(("r", lrow), ("s", rrow), unbounded)
    return network


def consistent_via_flow(r: Bag, s: Bag) -> bool:
    """Lemma 2(5): N(R, S) admits a saturated flow."""
    return saturated_flow(build_network(r, s)) is not None


def witness_from_flow(r: Bag, s: Bag, flow: FlowResult) -> Bag:
    """The witness T(t) := f(t[X], t[Y]) extracted from a saturated flow
    (the (5) => (1) step of Lemma 2).

    Each join tuple t is emitted from its unique matching support pair,
    so the flow on the pair's middle edge is exactly T(t).
    """
    plan = kernels.join_plan(r.schema.attrs, s.schema.attrs)
    buckets = BagIndex.of(s).buckets(plan.common)
    emit = plan.emit
    mults: dict[tuple, int] = {}
    for lrow, (rrow, _) in kernels.iter_join_pairs(
        r.support_rows(), plan, buckets
    ):
        value = flow.on(("r", lrow), ("s", rrow))
        if value:
            mults[emit(lrow + rrow)] = value
    return Bag._from_clean(plan.union, mults)


def consistency_witness(r: Bag, s: Bag) -> Bag:
    """Corollary 1: a witness to the consistency of two bags; raises
    :class:`InconsistentError` when the bags are inconsistent.

    With columnar encodings on both sides the witness comes from the
    closed-form northwest-corner construction (every join pair inside a
    common-key group is admissible, so the per-group transportation
    problem needs no flow search; the result respects the Theorem 5
    support bound by construction).  Otherwise — and that includes the
    arbitrary-precision multiplicity regime — one integral max-flow
    over N(R, S) extracts the witness exactly as before.
    """
    plan = kernels.join_plan(r.schema.attrs, s.schema.attrs)
    table = columnar.try_witness(r, s, plan)  # raises when inconsistent
    if table is not None:
        return Bag._from_clean(plan.union, table)
    columnar.count_row("witnesses")
    flow = saturated_flow(build_network(r, s))
    if flow is None:
        raise InconsistentError(
            "bags are not consistent (no saturated flow in N(R, S))"
        )
    return witness_from_flow(r, s, flow)


def rational_witness(r: Bag, s: Bag) -> dict[tuple, Fraction]:
    """The closed-form rational solution of P(R, S) from Lemma 2's
    (2) => (3) step: ``x_t = R(t[X]) * S(t[Y]) / R(t[Z])``.

    Keys are raw join tuples over the union schema.  Raises
    :class:`InconsistentError` when R[Z] != S[Z].
    """
    plan = kernels.join_plan(r.schema.attrs, s.schema.attrs)
    common = plan.common
    r_common = r.marginal(common)
    if r_common != s.marginal(common):
        raise InconsistentError("bags disagree on their common marginal")
    buckets = BagIndex.of(s).buckets(common)
    left_key, emit = plan.left_key, plan.emit
    denominators = r_common._mults
    out: dict[tuple, Fraction] = {}
    for lrow, lmult in r.items():
        bucket = buckets.get(left_key(lrow))
        if not bucket:
            continue
        denominator = denominators[left_key(lrow)]
        for rrow, rmult in bucket:
            out[emit(lrow + rrow)] = Fraction(lmult * rmult, denominator)
    return out


def consistent_via_lp(r: Bag, s: Bag) -> bool:
    """Lemma 2(3): rational feasibility of P(R, S), by exact simplex."""
    program = ConsistencyProgram.build([r, s])
    result = solve_lp(program.dense_matrix(), program.dense_rhs())
    return result.status == "optimal"


def consistent_via_integer_search(
    r: Bag, s: Bag, node_budget: int | None = DEFAULT_NODE_BUDGET
) -> bool:
    """Lemma 2(4): integer feasibility of P(R, S), by exact search."""
    program = ConsistencyProgram.build([r, s])
    return find_solution(program.system, node_budget) is not None


def consistent_via_witness_search(
    r: Bag, s: Bag, node_budget: int | None = DEFAULT_NODE_BUDGET
) -> Bag | None:
    """Lemma 2(1) taken literally: search for a witness bag directly.

    Returns a witness or None; the definitional (exponential) route, used
    as the oracle in cross-checks.
    """
    program = ConsistencyProgram.build([r, s])
    solution = find_solution(program.system, node_budget)
    if solution is None:
        return None
    return program.witness_from_solution(solution)


ALL_DECIDERS = (
    ("marginals", consistent_via_marginals),
    ("lp", consistent_via_lp),
    ("integer", consistent_via_integer_search),
    ("flow", consistent_via_flow),
    ("witness", lambda r, s: consistent_via_witness_search(r, s) is not None),
)
