"""Global consistency of collections of bags — the GCPB problem.

Implements the decision and construction layer of Section 5:

* :func:`pairwise_consistent` / :func:`k_wise_consistent` — local
  consistency notions (Section 4).
* :func:`acyclic_global_witness` — Theorem 6: over an acyclic schema,
  fold minimal two-bag witnesses along a running-intersection ordering;
  polynomial time, support bounded by the sum of input support sizes.
* :func:`decide_global_consistency` / :func:`global_witness` — the
  dispatching solvers: pairwise check first (necessary), then the
  polynomial acyclic route when the schema is acyclic (Theorem 2 makes
  pairwise consistency sufficient there), otherwise the exact integer
  search on P(R1, ..., Rm) — honest exponential work, as Theorem 4's
  NP-completeness predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Literal, Sequence

from ..core.bags import Bag
from ..core.schema import Schema
from ..errors import CyclicSchemaError, InconsistentError
from ..hypergraphs.acyclicity import is_acyclic, running_intersection_order
from ..hypergraphs.hypergraph import hypergraph_of_bags
from ..lp.integer_feasibility import DEFAULT_NODE_BUDGET, find_solution
from ..lp.simplex import solve_lp
from .pairwise import are_consistent, consistency_witness
from .program import ConsistencyProgram
from .witness import is_witness, minimal_pairwise_witness

Method = Literal["auto", "acyclic", "search"]
PairChecker = Callable[[Bag, Bag], bool]


def pairwise_consistent(
    bags: Sequence[Bag], pair_checker: PairChecker | None = None
) -> bool:
    """Every two bags of the collection are consistent (Section 4).

    ``pair_checker`` lets a caller route the two-bag test through a
    memoizing layer (the :class:`repro.engine.Engine` passes its cached
    ``are_consistent``); the default is the direct Lemma 2(2) test.
    """
    check = pair_checker or are_consistent
    return all(
        check(bags[i], bags[j])
        for i, j in combinations(range(len(bags)), 2)
    )


def k_wise_consistent(
    bags: Sequence[Bag],
    k: int,
    node_budget: int | None = DEFAULT_NODE_BUDGET,
) -> bool:
    """Every subcollection of at most k bags is globally consistent.

    Because global consistency of a set implies it for every subset
    (marginalize the witness), only subsets of size ``min(k, m)`` need
    checking.  Exponential in k — the oracle behind the Lemma 4 tests.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    size = min(k, len(bags))
    return all(
        decide_global_consistency(
            [bags[i] for i in subset], node_budget=node_budget
        )
        for subset in combinations(range(len(bags)), size)
    )


def _dedupe_by_schema(bags: Sequence[Bag]) -> list[Bag]:
    """Collapse equal-schema bags (pairwise consistency forces equality:
    two bags over the same schema are consistent iff they are equal)."""
    seen: dict[Schema, Bag] = {}
    for bag in bags:
        if bag.schema in seen:
            if seen[bag.schema] != bag:
                raise InconsistentError(
                    f"two distinct bags share schema {bag.schema!r}; they "
                    f"cannot be consistent"
                )
        else:
            seen[bag.schema] = bag
    return list(seen.values())


def fold_order(bags: Sequence[Bag]) -> list[Bag]:
    """The deduped bags in a running-intersection order — the fold order
    of Theorem 6.  Raises :class:`CyclicSchemaError` when the schema
    hypergraph is cyclic (Theorem 1(c): no such order exists).

    Exposed as a node-level building block so incremental maintainers
    (:mod:`repro.engine.live_global`) and reference cross-checks share
    one ordering with the cold fold.
    """
    deduped = _dedupe_by_schema(bags)
    hypergraph = hypergraph_of_bags(deduped)
    rip = running_intersection_order(hypergraph)  # raises if cyclic
    by_schema = {bag.schema: bag for bag in deduped}
    return [by_schema[edge] for edge in rip.order]


def fold_step(acc: Bag, bag: Bag, minimal: bool = True) -> Bag:
    """One step of the Theorem 6 fold: absorb ``bag`` into the running
    witness ``acc`` through a two-bag witness (Corollary 4's minimal one
    by default, so the per-step support bound ``||W||supp <= ||acc||supp
    + ||bag||supp`` holds).  Raises :class:`InconsistentError` when the
    two sides are inconsistent."""
    if minimal:
        return minimal_pairwise_witness(acc, bag)
    return consistency_witness(acc, bag)


def check_fold_bound(witness: Bag, bags: Sequence[Bag]) -> None:
    """Assert the Theorem 6 support bound ``||T||supp <= sum_i
    ||Ri||supp`` for a minimal fold over ``bags``."""
    bound = sum(bag.support_size for bag in bags)
    if witness.support_size > bound:
        raise AssertionError(
            f"Theorem 6 violated: witness support "
            f"{witness.support_size} exceeds {bound}"
        )


def acyclic_global_witness(
    bags: Sequence[Bag],
    minimal: bool = True,
    pair_checker: PairChecker | None = None,
) -> Bag:
    """Theorem 6: a witness to global consistency over an acyclic schema.

    Requires the collection to be pairwise consistent (checked through
    ``pair_checker`` when given, so an engine-cached pairwise phase is
    not redone; raises :class:`InconsistentError` otherwise) and the
    schema hypergraph to be acyclic (raises
    :class:`CyclicSchemaError` otherwise).  Folds two-bag witnesses
    along a running-intersection ordering (:func:`fold_order` /
    :func:`fold_step`); with ``minimal=True`` each step uses the
    Corollary 4 minimal witness, giving ``||T||supp <= sum_i
    ||Ri||supp`` as Theorem 6 promises (asserted before returning).
    """
    if not bags:
        raise InconsistentError("empty collection has no witness schema")
    if not pairwise_consistent(bags, pair_checker):
        raise InconsistentError("collection is not pairwise consistent")
    ordered = fold_order(bags)
    witness = ordered[0]
    for bag in ordered[1:]:
        witness = fold_step(witness, bag, minimal=minimal)
    if minimal:
        check_fold_bound(witness, ordered)
    if not is_witness(ordered, witness):
        raise AssertionError(
            "Theorem 6 construction failed to produce a witness; "
            "this contradicts Step 1 of Theorem 2"
        )
    return witness


@dataclass(frozen=True)
class GlobalConsistencyResult:
    """Outcome of a global-consistency decision."""

    consistent: bool
    witness: Bag | None
    method: str


def global_witness(
    bags: Sequence[Bag],
    method: Method = "auto",
    node_budget: int | None = DEFAULT_NODE_BUDGET,
    lp_presolve: bool = True,
    pair_checker: PairChecker | None = None,
    acyclic: bool | None = None,
) -> GlobalConsistencyResult:
    """Decide global consistency and produce a witness when one exists.

    ``method="auto"`` picks the polynomial acyclic route when the schema
    hypergraph is acyclic and falls back to the exact integer search
    otherwise.  ``lp_presolve`` runs the rational relaxation first on the
    search path — an exact necessary condition that short-circuits many
    infeasible instances.  ``pair_checker`` is forwarded to the pairwise
    phase (see :func:`pairwise_consistent`).  ``acyclic`` lets a caller
    that already validated the schema hypergraph (the live engine caches
    the answer per handle set — membership never changes on row updates)
    skip the GYO re-run; the answer is a pure function of the schema
    set, so a stale hint is impossible unless the caller lies.
    """
    if not bags:
        raise InconsistentError("empty collection")
    if not pairwise_consistent(bags, pair_checker):
        return GlobalConsistencyResult(False, None, "pairwise")
    if acyclic is None and method == "auto":
        acyclic = is_acyclic(hypergraph_of_bags(bags))
    use_acyclic = method == "acyclic" or (method == "auto" and acyclic)
    if use_acyclic:
        # method="acyclic" on a cyclic schema raises CyclicSchemaError
        # from the running-intersection construction inside.
        witness = acyclic_global_witness(bags, pair_checker=pair_checker)
        return GlobalConsistencyResult(True, witness, "acyclic")
    program = ConsistencyProgram.build(list(_dedupe_by_schema(bags)))
    if lp_presolve:
        relaxation = solve_lp(program.dense_matrix(), program.dense_rhs())
        if relaxation.status != "optimal":
            return GlobalConsistencyResult(False, None, "lp-presolve")
    solution = find_solution(program.system, node_budget)
    if solution is None:
        return GlobalConsistencyResult(False, None, "search")
    witness = program.witness_from_solution(solution)
    return GlobalConsistencyResult(True, witness, "search")


def decide_global_consistency(
    bags: Sequence[Bag],
    method: Method = "auto",
    node_budget: int | None = DEFAULT_NODE_BUDGET,
    pair_checker: PairChecker | None = None,
) -> bool:
    """The GCPB decision problem: are the bags globally consistent?

    On acyclic schemas this is the pure Theorem 2 decision: pairwise
    consistency alone settles the answer in polynomial time, with no
    witness construction.  On cyclic schemas it falls through to the
    exact search (NP-complete in general, Theorem 4).
    """
    if not bags:
        raise InconsistentError("empty collection")
    if not pairwise_consistent(bags, pair_checker):
        return False
    if method != "search":
        hypergraph = hypergraph_of_bags(bags)
        if is_acyclic(hypergraph):
            return True  # Theorem 2: pairwise consistency suffices
        if method == "acyclic":
            raise CyclicSchemaError(
                f"method='acyclic' requested on a cyclic schema: "
                f"{hypergraph!r}"
            )
    return global_witness(
        bags, "search", node_budget, pair_checker=pair_checker
    ).consistent
