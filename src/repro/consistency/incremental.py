"""Incremental pairwise-consistency maintenance.

Downstream systems rarely re-check consistency from scratch: ledgers
receive inserts and deletes one tuple at a time.  Because the paper's
two-bag consistency criterion is *marginal equality* (Lemma 2(2)), it
admits O(1)-per-update maintenance: keep the multiset difference of the
two common-attribute marginals and a count of the cells where they
disagree.  The pair is consistent exactly when no cell disagrees.

:class:`IncrementalPairChecker` maintains one pair;
:class:`IncrementalCollectionChecker` maintains all pairs of a
collection (O(m) checkers per update of one bag) and, over an acyclic
schema, its aggregate answer equals *global* consistency by Theorem 2 —
turning the paper's structure theorem into a constant-time-per-update
monitoring guarantee.
"""

from __future__ import annotations

from typing import Sequence

from ..core.bags import Bag
from ..core.schema import Schema, projection_plan
from ..errors import MultiplicityError, SchemaError


def validate_update(
    schema: Schema, mults: dict, row, amount: int
) -> tuple[tuple, int]:
    """Validate one tuple-level update against the current state.

    Returns ``(row as a tuple, resulting multiplicity)``; raises
    :class:`SchemaError` on an arity mismatch and
    :class:`MultiplicityError` when the update would drive the
    multiplicity negative.  Shared by every mutable-bag layer (the
    checkers below, :class:`repro.engine.live.LiveEngine`) so the
    validation contract cannot drift between them.
    """
    row = tuple(row)
    if len(row) != len(schema):
        raise SchemaError(
            f"row {row!r} has arity {len(row)}, schema {schema!r} has "
            f"arity {len(schema)}"
        )
    new = mults.get(row, 0) + amount
    if new < 0:
        raise MultiplicityError(
            f"update would make multiplicity of {row!r} negative"
        )
    return row, new


class IncrementalPairChecker:
    """Maintains consistency of two bags under tuple-level updates.

    ``delta[z] = R[Z](z) - S[Z](z)`` for the common schema Z, stored
    sparsely; ``disagreements`` counts non-zero cells.  Updates touch
    exactly one cell, through projection plans compiled once at
    construction (the engine's kernel primitive).

    ``track_bags=False`` skips the checker's own copies of the two
    multiplicity dicts — the delta alone decides consistency.  For an
    owner that already holds the authoritative state and pre-validates
    every update (the :class:`repro.engine.live.LiveEngine`), the
    copies are pure duplication; without them :meth:`left`/:meth:`right`
    are unavailable and updates are applied unvalidated.
    """

    __slots__ = ("left_schema", "right_schema", "common", "_delta",
                 "_disagreements", "_left", "_right", "_plans")

    def __init__(
        self, left: Bag, right: Bag, track_bags: bool = True
    ) -> None:
        self.left_schema = left.schema
        self.right_schema = right.schema
        self.common = left.schema & right.schema
        self._plans = {
            self.left_schema: projection_plan(
                self.left_schema.attrs, self.common.attrs
            ),
            self.right_schema: projection_plan(
                self.right_schema.attrs, self.common.attrs
            ),
        }
        self._left = dict(left.items()) if track_bags else None
        self._right = dict(right.items()) if track_bags else None
        self._delta: dict[tuple, int] = {}
        self._disagreements = 0
        left_key = self._plans[self.left_schema]
        right_key = self._plans[self.right_schema]
        for row, mult in left.items():
            self._bump(left_key(row), mult)
        for row, mult in right.items():
            self._bump(right_key(row), -mult)

    def _bump(self, cell: tuple, amount: int) -> None:
        if amount == 0:
            return
        old = self._delta.get(cell, 0)
        new = old + amount
        if old == 0 and new != 0:
            self._disagreements += 1
        elif old != 0 and new == 0:
            self._disagreements -= 1
        if new == 0:
            self._delta.pop(cell, None)
        else:
            self._delta[cell] = new

    @property
    def consistent(self) -> bool:
        """Lemma 2(2), maintained: equal common marginals."""
        return self._disagreements == 0

    def disagreeing_cells(self) -> dict[tuple, int]:
        """The common-marginal cells where the bags disagree (cell ->
        R-side minus S-side); the actionable diagnostic."""
        return dict(self._delta)

    # -- updates --------------------------------------------------------

    def _apply(self, side: dict | None, schema: Schema, row: tuple,
               amount: int, sign: int) -> None:
        if side is None:  # track_bags=False: the owner pre-validated
            row = tuple(row)
        else:
            row, new = validate_update(schema, side, row, amount)
            if new == 0:
                side.pop(row, None)
            else:
                side[row] = new
        self._bump(self._plans[schema](row), sign * amount)

    def update_left(self, row: tuple, amount: int) -> None:
        """Add ``amount`` (possibly negative) copies of ``row`` to the
        left bag."""
        self._apply(self._left, self.left_schema, row, amount, +1)

    def update_right(self, row: tuple, amount: int) -> None:
        self._apply(self._right, self.right_schema, row, amount, -1)

    # -- snapshots -------------------------------------------------------

    def left(self) -> Bag:
        if self._left is None:
            raise ValueError(
                "checker was built with track_bags=False; the owner "
                "holds the bag state"
            )
        return Bag(self.left_schema, self._left)

    def right(self) -> Bag:
        if self._right is None:
            raise ValueError(
                "checker was built with track_bags=False; the owner "
                "holds the bag state"
            )
        return Bag(self.right_schema, self._right)


class IncrementalCollectionChecker:
    """Maintains pairwise consistency of a whole collection.

    One :class:`IncrementalPairChecker` per pair; an update to bag i
    touches its m-1 checkers.  ``pairwise_consistent`` is O(1).  When
    the schema hypergraph is acyclic, Theorem 2 upgrades the answer to
    *global* consistency (``globally_consistent_by_theorem2``).
    """

    def __init__(self, bags: Sequence[Bag]) -> None:
        self._bags = [dict(bag.items()) for bag in bags]
        self._schemas = [bag.schema for bag in bags]
        self._checkers: dict[tuple[int, int], IncrementalPairChecker] = {}
        for i in range(len(bags)):
            for j in range(i + 1, len(bags)):
                self._checkers[(i, j)] = IncrementalPairChecker(
                    bags[i], bags[j]
                )
        from ..hypergraphs.acyclicity import is_acyclic
        from ..hypergraphs.hypergraph import Hypergraph

        self._acyclic = is_acyclic(
            Hypergraph.from_schemas(list(self._schemas))
        )

    @property
    def acyclic(self) -> bool:
        return self._acyclic

    @property
    def pairwise_consistent(self) -> bool:
        return all(c.consistent for c in self._checkers.values())

    @property
    def globally_consistent_by_theorem2(self) -> bool:
        """For acyclic schemas this IS global consistency (Theorem 2);
        for cyclic schemas it is only the necessary pairwise condition,
        and the property raises to prevent silent misuse."""
        if not self._acyclic:
            raise SchemaError(
                "schema is cyclic: pairwise consistency does not decide "
                "global consistency (Theorem 2); run the exact solver"
            )
        return self.pairwise_consistent

    def update(self, index: int, row: tuple, amount: int) -> None:
        """Add ``amount`` copies of ``row`` to bag ``index`` and refresh
        every affected pair checker."""
        # Validate at the collection level, not only inside the pair
        # checkers: a collection with fewer than two bags has no
        # checkers, and a bad row must not corrupt the bag dict
        # silently.
        row, new = validate_update(
            self._schemas[index], self._bags[index], row, amount
        )
        for (i, j), checker in self._checkers.items():
            if i == index:
                checker.update_left(row, amount)
            elif j == index:
                checker.update_right(row, amount)
        if new == 0:
            self._bags[index].pop(row, None)
        else:
            self._bags[index][row] = new

    def bag(self, index: int) -> Bag:
        return Bag(self._schemas[index], self._bags[index])

    def inconsistent_pairs(self) -> list[tuple[int, int]]:
        """Indices of bag pairs currently violating Lemma 2(2)."""
        return sorted(
            pair
            for pair, checker in self._checkers.items()
            if not checker.consistent
        )
