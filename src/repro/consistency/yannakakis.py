"""Yannakakis' algorithm: acyclic join evaluation in polynomial time.

The paper's introduction motivates hypergraph acyclicity through
[Yan81]: relational join evaluation is NP-complete in general (deciding
whether the join is even non-empty embeds 3-colorability, see
:mod:`repro.reductions.three_coloring`), but over *acyclic* schemas the
join can be computed in time polynomial in input + output.  The
algorithm:

1. **Full reduction** — the two-pass semijoin program along a join tree
   removes every dangling tuple (:mod:`repro.consistency.full_reducer`).
2. **Bottom-up join** — joining reduced relations leaf-to-root never
   creates a tuple that fails to extend to a final output tuple, so
   every intermediate result is at most |output| * m tuples.

:func:`yannakakis_join` implements both passes; :func:`naive_join` is
the baseline that joins in input order without reduction (correct, but
its intermediates can explode on dangling-heavy inputs — the benchmark
`bench_yannakakis.py` measures exactly that gap).  The instrumented
variant returns intermediate sizes so the output-sensitivity claim is
testable rather than folklore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.relations import Relation, join_all
from ..core.schema import Schema
from .full_reducer import fully_reduce, fully_reduce_with_tree


@dataclass(frozen=True)
class JoinTrace:
    """Result of an instrumented join: the output plus the size of every
    intermediate relation materialized along the way."""

    result: Relation
    intermediate_sizes: tuple[int, ...]

    @property
    def max_intermediate(self) -> int:
        return max(self.intermediate_sizes, default=0)


def naive_join(relations: Sequence[Relation]) -> JoinTrace:
    """Left-deep join in input order, no reduction — the baseline."""
    if not relations:
        return JoinTrace(join_all([]), ())
    current = relations[0]
    sizes = [len(current)]
    for relation in relations[1:]:
        current = current.join(relation)
        sizes.append(len(current))
    return JoinTrace(current, tuple(sizes))


def yannakakis_join(relations: Sequence[Relation]) -> JoinTrace:
    """The Yannakakis evaluation: full reduction, then a bottom-up join
    along the join tree.

    Requires an acyclic schema (raises :class:`CyclicSchemaError`
    otherwise, mirroring the dichotomy the paper builds on).  After
    reduction, every tuple of every intermediate extends to an output
    tuple, so intermediates are bounded by |output| scaled by the number
    of relations — the polynomial output-sensitivity guarantee.
    """
    if not relations:
        return JoinTrace(join_all([]), ())
    # One GYO reduction serves both passes: the reducer hands back the
    # join tree it ran along (raises via join_tree when cyclic).
    reduced, tree = fully_reduce_with_tree(relations)
    by_schema: dict[Schema, Relation] = {}
    for relation in reduced:
        # fully_reduce already intersected duplicates; keep one per schema.
        by_schema[relation.schema] = relation
    children = tree.children()
    sizes: list[int] = []

    def bottom_up(node: int) -> Relation:
        current = by_schema[tree.edges[node]]
        for child in children[node]:
            current = current.join(bottom_up(child))
            sizes.append(len(current))
        return current

    result = bottom_up(tree.root)
    if not sizes:
        sizes.append(len(result))
    return JoinTrace(result, tuple(sizes))


def join_nonempty_acyclic(relations: Sequence[Relation]) -> bool:
    """Is the join non-empty?  Over acyclic schemas this needs only the
    reduction pass: the join is non-empty iff no relation reduced to
    empty (no materialization at all)."""
    reduced = fully_reduce(relations)
    return all(len(relation) > 0 for relation in reduced)


def dangling_heavy_instance(
    n_chains: int, chain_length: int, dangle_factor: int
) -> list[Relation]:
    """A worst-case-for-naive path family with branching danglers.

    Live tuples form ``n_chains`` straight chains that survive to the
    output.  Dead values branch: relation 0 seeds ``dangle_factor`` dead
    values, every middle relation maps each dead value to all
    ``dangle_factor`` dead values (a complete dead-dead bipartite
    block), and the final relation carries no dead values at all.  A
    naive left-deep join therefore materializes ~``dangle_factor^(L-3)``
    doomed tuples before the last step kills them, while Yannakakis'
    backward semijoin pass deletes every dead tuple up front.  The
    output always has exactly ``n_chains`` tuples; the input stays
    polynomial (``dangle_factor^2`` rows per middle relation).
    """
    if n_chains < 1 or chain_length < 3 or dangle_factor < 0:
        raise ValueError("need n_chains >= 1, chain_length >= 3, dangle >= 0")
    attrs = [f"A{i:03d}" for i in range(chain_length)]
    live = [("live", c) for c in range(n_chains)]
    dead = [("dead", j) for j in range(dangle_factor)]
    relations = []
    last = chain_length - 2
    for i in range(chain_length - 1):
        schema = Schema([attrs[i], attrs[i + 1]])
        pairs: list[tuple] = [(value, value) for value in live]
        if i == 0:
            pairs.extend((live[0], d) for d in dead)
        elif i < last:
            pairs.extend((dj, dk) for dj in dead for dk in dead)
        # The final relation carries live tuples only: all dead paths die.
        rows = []
        for left_value, right_value in pairs:
            mapping = {attrs[i]: left_value, attrs[i + 1]: right_value}
            rows.append(
                (mapping[schema.attrs[0]], mapping[schema.attrs[1]])
            )
        relations.append(Relation.from_pairs(schema, rows))
    return relations
