"""Optimal witnesses: minimize linear objectives over witness space.

The end of Section 3 remarks that, because all vertices of the P(R, S)
polytope are integral (Hoffman-Kruskal via total unimodularity), any LP
algorithm can find a consistency witness *minimizing any linear function
of the multiplicities*, in time polynomial in the bit size of the input.
This module implements that remark with the exact simplex:

* :func:`optimal_witness` — the witness minimizing
  ``sum_t objective(t) * T(t)``;
* :func:`multiplicity_range` — the [min, max] multiplicity a given join
  tuple can take across all witnesses (two LPs), useful to quantify how
  underdetermined the reconciliation is;
* :func:`spread_witness` / :func:`concentrated_witness` — convenience
  objectives: spread mass over many tuples or concentrate it on few.

The simplex returns basic solutions; over the totally unimodular P(R, S)
system with integer right-hand sides, basic solutions are integral, and
the code verifies this before building the bag (a failed check would
indicate a solver bug, not an unlucky instance).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable

from ..core.bags import Bag
from ..core.tuples import Tup
from ..errors import InconsistentError, SolverError
from ..lp.simplex import solve_lp
from .program import ConsistencyProgram

Objective = Callable[[Tup], int]


def _solve_two_bag_lp(
    r: Bag, s: Bag, cost: list
) -> tuple[ConsistencyProgram, list[int]]:
    program = ConsistencyProgram.build([r, s])
    result = solve_lp(program.dense_matrix(), program.dense_rhs(), cost)
    if result.status == "infeasible":
        raise InconsistentError("bags are not consistent")
    if result.status == "unbounded":
        raise SolverError(
            "witness LP unbounded; objectives must be bounded below on "
            "the witness polytope (e.g. non-negative coefficients)"
        )
    integral = []
    for value in result.solution:
        if value.denominator != 1:
            raise SolverError(
                f"non-integral basic solution {value} on a totally "
                f"unimodular system; this indicates a simplex bug"
            )
        integral.append(int(value))
    return program, integral


def optimal_witness(r: Bag, s: Bag, objective: Objective) -> Bag:
    """The witness T minimizing ``sum_t objective(t) * T(t)``.

    ``objective`` maps each join tuple (a :class:`Tup` over the union
    schema) to an integer coefficient.  Negative coefficients are
    allowed as long as the objective stays bounded below on the witness
    polytope (multiplicities are bounded by the marginals, so every
    objective is in fact bounded; unboundedness would be a solver bug).

    Raises :class:`InconsistentError` when no witness exists.
    """
    probe = ConsistencyProgram.build([r, s])
    cost = [
        Fraction(objective(Tup(probe.union_schema, row)))
        for row in probe.join_rows
    ]
    program, solution = _solve_two_bag_lp(r, s, cost)
    return program.witness_from_solution(solution)


def multiplicity_range(r: Bag, s: Bag, row: tuple) -> tuple[int, int]:
    """The smallest and largest multiplicity the join tuple ``row`` (raw
    values over the union schema) can take across all witnesses.

    Quantifies reconciliation ambiguity: a wide range means the pairwise
    data pins the joint fact down poorly.  Raises
    :class:`InconsistentError` when the bags are inconsistent and
    :class:`KeyError` when the row is not a join tuple (its multiplicity
    is 0 in every witness, by Lemma 1).
    """
    probe = ConsistencyProgram.build([r, s])
    row = tuple(row)
    try:
        index = probe.join_rows.index(row)
    except ValueError:
        raise KeyError(
            f"{row!r} is outside the join of supports; by Lemma 1 its "
            f"multiplicity is 0 in every witness"
        ) from None
    n = len(probe.join_rows)
    low_cost = [Fraction(0)] * n
    low_cost[index] = Fraction(1)
    high_cost = [Fraction(0)] * n
    high_cost[index] = Fraction(-1)
    _, low_solution = _solve_two_bag_lp(r, s, low_cost)
    _, high_solution = _solve_two_bag_lp(r, s, high_cost)
    return low_solution[index], high_solution[index]


def concentrated_witness(r: Bag, s: Bag) -> Bag:
    """A witness biased toward few heavy tuples: maximize the total mass
    on tuples whose R-side and S-side rows 'rank' equal — implemented as
    the minimal-support-style objective that charges every tuple 1.

    Since all witnesses have the same total multiplicity, the uniform
    objective is constant; to concentrate we instead charge each tuple
    by its index parity to break ties deterministically.  Exposed mainly
    as a deterministic alternative construction; prefer
    :func:`repro.consistency.witness.minimal_pairwise_witness` for true
    support minimality.
    """
    probe = ConsistencyProgram.build([r, s])
    weights = {row: i % 2 for i, row in enumerate(probe.join_rows)}

    def objective(tup: Tup) -> int:
        return weights[tup.values]

    return optimal_witness(r, s, objective)


def spread_witness(r: Bag, s: Bag) -> Bag:
    """The closed-form 'proportional' witness when it is integral, else
    an LP witness preferring tuples the proportional solution favors.

    The Lemma 2 closed form ``x_t = R(t[X]) S(t[Y]) / R(t[Z])`` spreads
    mass maximally; when all its values are integers it is itself a
    witness and is returned directly.
    """
    from .pairwise import rational_witness

    rational = rational_witness(r, s)
    if all(value.denominator == 1 for value in rational.values()):
        union = r.schema | s.schema
        return Bag(
            union,
            {row: int(value) for row, value in rational.items() if value},
        )
    # Prefer tuples with large proportional mass: charge the complement.
    scale = max(value.denominator for value in rational.values())

    def objective(tup: Tup) -> int:
        return -int(rational[tup.values] * scale)

    return optimal_witness(r, s, objective)
