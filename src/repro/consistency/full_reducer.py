"""Full reducers: the classical set-case machinery and the bag obstacle.

Beeri et al. showed acyclicity is also equivalent to the existence of a
*full reducer* — a sequence of semijoins after which every relation
equals the projection of the join (Section 6 recalls this).  This module
implements the classical construction for relations and makes the
paper's open problem tangible for bags:

* :func:`semijoin` — the relational semijoin ``r |>< s``.
* :func:`full_reducer_program` — the Yannakakis two-pass semijoin
  sequence along a join tree of an acyclic schema.
* :func:`fully_reduce` — apply it; on pairwise-consistent inputs over an
  acyclic schema the output is globally consistent with the join as
  witness, and every output relation equals the join's projection.
* :func:`bag_semijoin_candidate` — the natural bag analogue (keep
  multiplicities of tuples whose projection appears in the other
  support).  :func:`bag_full_reducer_counterexample` exhibits the
  paper's obstacle: even for two already-consistent bags the fully
  "reduced" bags' join fails to witness consistency, so no semijoin-
  style reducer can work unchanged under bag semantics.
"""

from __future__ import annotations

from typing import Sequence

from ..core.bags import Bag
from ..core.relations import Relation, join_all
from ..core.schema import Schema, projection_plan
from ..engine import columnar, kernels
from ..engine.index import BagIndex, RelationIndex
from ..hypergraphs.acyclicity import JoinTree, join_tree
from ..hypergraphs.hypergraph import Hypergraph


def semijoin(r: Relation, s: Relation) -> Relation:
    """The semijoin r |>< s: tuples of r whose common-attribute
    projection appears in s.

    With columnar encodings on both sides the filter is a vectorized
    membership mask over encoded keys; otherwise the probe-side key set
    is memoized on s (a full-reducer program semijoins against the same
    relation once per tree neighbour) and the filter runs one
    precompiled projection per row.
    """
    kept = columnar.try_semijoin(r, s)
    if kept is None:
        columnar.count_row("semijoins")
        common = r.schema & s.schema
        allowed = RelationIndex.of(s).key_set(common)
        kept = kernels.semi_join_rows(
            r.rows, projection_plan(r.schema.attrs, common.attrs), allowed
        )
    return Relation._from_clean(r.schema, frozenset(kept))


def full_reducer_program(
    hypergraph: Hypergraph,
) -> list[tuple[int, int]]:
    """The Yannakakis semijoin sequence for an acyclic hypergraph.

    Returns a list of (target, source) edge-index pairs meaning
    "replace relation[target] by semijoin(relation[target],
    relation[source])": first an upward pass (leaves to root), then a
    downward pass (root to leaves).  Raises :class:`CyclicSchemaError`
    for cyclic hypergraphs — Beeri et al. prove no full reducer exists
    there.
    """
    return _program_from_tree(join_tree(hypergraph))  # raises when cyclic


def _program_from_tree(tree: JoinTree) -> list[tuple[int, int]]:
    children = tree.children()
    # Post-order (leaves first) for the upward pass.
    order: list[int] = []

    def visit(node: int) -> None:
        for child in children[node]:
            visit(child)
        order.append(node)

    visit(tree.root)
    program: list[tuple[int, int]] = []
    for node in order:
        if tree.parent[node] >= 0:
            program.append((tree.parent[node], node))  # parent ⋉ child
    for node in reversed(order):
        if tree.parent[node] >= 0:
            program.append((node, tree.parent[node]))  # child ⋉ parent
    return program


def fully_reduce_with_tree(
    relations: Sequence[Relation],
) -> tuple[list[Relation], JoinTree]:
    """Apply a full reducer and also return the join tree it ran along.

    Yannakakis' bottom-up pass needs the very same tree, so exposing it
    here saves the caller a second GYO reduction over the hypergraph.

    Matches the relations to hyperedges by schema; duplicate schemas are
    intersected first (two relations over the same schema jointly
    constrain it).
    """
    by_schema: dict[Schema, Relation] = {}
    for relation in relations:
        if relation.schema in by_schema:
            by_schema[relation.schema] = by_schema[
                relation.schema
            ].intersection(relation)
        else:
            by_schema[relation.schema] = relation
    hypergraph = Hypergraph.from_schemas(list(by_schema))
    tree = join_tree(hypergraph)  # raises when cyclic
    edges = list(hypergraph.edges)
    working = [by_schema[edge] for edge in edges]
    for target, source in _program_from_tree(tree):
        working[target] = semijoin(working[target], working[source])
    reduced_by_schema = dict(zip(edges, working))
    return [reduced_by_schema[rel.schema] for rel in relations], tree


def fully_reduce(relations: Sequence[Relation]) -> list[Relation]:
    """Apply a full reducer to a collection of relations over an acyclic
    schema; the result is the collection of projections of the join."""
    reduced, _ = fully_reduce_with_tree(relations)
    return reduced


def is_fully_reduced(relations: Sequence[Relation]) -> bool:
    """Every relation equals the projection of the join — the defining
    property of a fully reduced collection."""
    joined = join_all(list(relations))
    return all(
        joined.project(rel.schema) == rel for rel in relations
    )


def bag_semijoin_candidate(r: Bag, s: Bag) -> Bag:
    """The natural bag semijoin: keep r's multiplicities on tuples whose
    common projection appears in s's support.

    This is the obvious candidate for a bag full reducer — and the
    paper's Section 6 explains why no such candidate is known to work:
    the bag join of consistent bags need not witness their consistency,
    so support-level reduction cannot certify global consistency.
    """
    common = r.schema & s.schema
    allowed = BagIndex.of(s).key_set(common)
    key = projection_plan(r.schema.attrs, common.attrs)
    kept = {
        row: mult for row, mult in r.items() if key(row) in allowed
    }
    return Bag._from_clean(r.schema, kept)


def bag_full_reducer_counterexample() -> tuple[Bag, Bag]:
    """Two consistent bags on which support-level semijoins are already
    fixpoints, yet the bag join of the 'reduced' bags still fails to
    witness consistency — the executable form of the Section 6
    obstacle.

    Returns the Section 3 pair R1, S1; use with
    :func:`bag_semijoin_candidate` and
    :func:`repro.consistency.witness.is_witness` to observe the failure.
    """
    ab = Schema(["A", "B"])
    bc = Schema(["B", "C"])
    r = Bag.from_pairs(ab, [((1, 2), 1), ((2, 2), 1)])
    s = Bag.from_pairs(bc, [((2, 1), 1), ((2, 2), 1)])
    return r, s
