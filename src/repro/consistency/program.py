"""The consistency programs P(R, S) and P(R1, ..., Rm).

Equation (3) of the paper associates with two bags a linear program over
variables x_t indexed by the join ``J = R' |><| S'`` of the supports; for
each support tuple of each bag there is one equation forcing the
marginal.  Equation (14) generalizes this to m bags.  Integer solutions
of P(R1, ..., Rm) are in 1-to-1 correspondence with the bags witnessing
global consistency (Theorem 3's proof), which is the bridge every solver
in this package crosses.

:class:`ConsistencyProgram` materializes the program sparsely (each
variable knows its constraint rows) and converts in both directions
between solution vectors and witness bags.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from ..core.bags import Bag
from ..core.relations import join_all
from ..core.schema import Schema, project_values
from ..errors import SchemaError
from ..lp.integer_feasibility import ZeroOneSystem


@dataclass(frozen=True)
class ConsistencyProgram:
    """P(R1, ..., Rm) in sparse form.

    ``join_rows`` lists the tuples of ``J = R1' |><| ... |><| Rm'`` (raw
    value tuples over the union schema, in deterministic order); variable
    j corresponds to ``join_rows[j]``.  ``constraint_labels[i]`` records
    which (bag index, support row) the i-th constraint encodes, and
    ``system`` is the 0/1 equation system ``Ax = b``.
    """

    bags: tuple[Bag, ...]
    union_schema: Schema
    join_rows: tuple[tuple, ...]
    constraint_labels: tuple[tuple[int, tuple], ...]
    system: ZeroOneSystem

    @classmethod
    def build(cls, bags: Sequence[Bag]) -> "ConsistencyProgram":
        bags = tuple(bags)
        if not bags:
            raise SchemaError("a consistency program needs at least one bag")
        union = bags[0].schema
        for bag in bags[1:]:
            union = union | bag.schema
        join = join_all([bag.support() for bag in bags])
        join_rows = tuple(sorted(join.rows, key=repr))
        # One constraint per (bag, support row).
        constraint_index: dict[tuple[int, tuple], int] = {}
        labels: list[tuple[int, tuple]] = []
        rhs: list[int] = []
        for i, bag in enumerate(bags):
            for row, mult in sorted(bag.items(), key=repr):
                constraint_index[(i, row)] = len(labels)
                labels.append((i, row))
                rhs.append(mult)
        var_constraints: list[tuple[int, ...]] = []
        for t in join_rows:
            touched = []
            for i, bag in enumerate(bags):
                r = project_values(t, union, bag.schema)
                touched.append(constraint_index[(i, r)])
            var_constraints.append(tuple(touched))
        system = ZeroOneSystem(
            n_vars=len(join_rows),
            var_constraints=tuple(var_constraints),
            rhs=tuple(rhs),
        )
        return cls(
            bags=bags,
            union_schema=union,
            join_rows=join_rows,
            constraint_labels=tuple(labels),
            system=system,
        )

    # -- conversions -------------------------------------------------------

    def witness_from_solution(self, solution: Sequence[int]) -> Bag:
        """The witness bag encoded by an integer solution vector."""
        if len(solution) != len(self.join_rows):
            raise ValueError("solution vector has wrong length")
        return Bag(
            self.union_schema,
            {
                row: value
                for row, value in zip(self.join_rows, solution)
                if value
            },
        )

    def solution_from_witness(self, witness: Bag) -> list[int]:
        """The solution vector of a witness bag.

        Requires the witness support to lie inside the join of supports
        (Lemma 1 guarantees this for genuine witnesses).
        """
        if witness.schema != self.union_schema:
            raise SchemaError(
                f"witness schema {witness.schema!r} differs from program "
                f"schema {self.union_schema!r}"
            )
        index = {row: j for j, row in enumerate(self.join_rows)}
        solution = [0] * len(self.join_rows)
        for row, mult in witness.items():
            if row not in index:
                raise SchemaError(
                    f"witness tuple {row!r} lies outside the join of "
                    f"supports (violates Lemma 1)"
                )
            solution[index[row]] = mult
        return solution

    # -- dense views ---------------------------------------------------------

    def dense_matrix(self) -> list[list[Fraction]]:
        """The constraint matrix A as dense rows of Fractions."""
        n_cons = len(self.constraint_labels)
        rows = [
            [Fraction(0)] * len(self.join_rows) for _ in range(n_cons)
        ]
        for j, touched in enumerate(self.system.var_constraints):
            for c in touched:
                rows[c][j] = Fraction(1)
        return rows

    def dense_rhs(self) -> list[Fraction]:
        return [Fraction(b) for b in self.system.rhs]

    def bipartite_split(self) -> int | None:
        """For two-bag programs, the row index separating the two
        constraint groups (Section 3's total-unimodularity argument);
        None when the program has more than two bags."""
        if len(self.bags) != 2:
            return None
        return sum(1 for i, _ in self.constraint_labels if i == 0)
