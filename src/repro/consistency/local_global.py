"""Theorem 2: the local-to-global consistency property for bags.

A hypergraph H has the *local-to-global consistency property for bags*
when every pairwise consistent collection of bags over its hyperedges is
globally consistent.  Theorem 2 proves this property holds iff H is
acyclic.  This module makes both directions executable:

* the acyclic direction is :func:`repro.consistency.global_.acyclic_global_witness`
  (Step 1 of the proof: fold witnesses along a running-intersection
  ordering);
* the cyclic direction is the explicit counterexample machine
  (Step 2): the Tseitin-style construction :func:`tseitin_collection`
  over any k-uniform d-regular hypergraph with d >= 2, transported to an
  arbitrary cyclic hypergraph through Lemma 3 obstructions and Lemma 4
  lifting by :func:`counterexample_for_cyclic`.

The counterexamples consist of 0/1 bags, i.e. relations, and the same
modular-counting argument defeats set semantics too, so
:func:`counterexample_for_cyclic` also exhibits the failure of the
local-to-global property *for relations* on cyclic schemas (the hard
direction of Theorem 1(e)).
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

from ..core.bags import Bag
from ..core.schema import Schema
from ..errors import AcyclicSchemaError, NotRegularError
from ..hypergraphs.acyclicity import is_acyclic
from ..hypergraphs.hypergraph import Hypergraph
from ..hypergraphs.obstructions import find_obstruction
from ..lp.integer_feasibility import DEFAULT_NODE_BUDGET
from .global_ import decide_global_consistency, pairwise_consistent
from .lifting import deletion_sequence, lift_collection


def tseitin_collection(
    schemas: Sequence[Schema], charged_index: int | None = None
) -> list[Bag]:
    """The paper's pairwise-consistent, globally-inconsistent collection
    over a k-uniform d-regular hypergraph (Theorem 2, Step 2).

    For every edge except one, the bag holds (with multiplicity 1) all
    tuples with values in {0, ..., d-1} summing to 0 mod d; the *charged*
    edge (by default the last) requires sum 1 mod d.  Pairwise
    consistency follows from uniform marginals; global consistency fails
    by summing the congruences over a d-regular hypergraph.

    Raises :class:`NotRegularError` unless the schema list forms a
    k-uniform, d-regular hypergraph with d >= 2 and distinct edges.
    """
    schemas = list(schemas)
    if len(set(schemas)) != len(schemas):
        raise NotRegularError("Tseitin construction needs distinct edges")
    hypergraph = Hypergraph.from_schemas(schemas)
    k = hypergraph.uniformity()
    d = hypergraph.regularity()
    if k is None or d is None or d < 2:
        raise NotRegularError(
            f"Tseitin construction needs a k-uniform d-regular hypergraph "
            f"with d >= 2; got uniformity={k}, regularity={d}"
        )
    if charged_index is None:
        charged_index = len(schemas) - 1
    bags = []
    for i, schema in enumerate(schemas):
        target = 1 if i == charged_index else 0
        rows = {
            values: 1
            for values in product(range(d), repeat=k)
            if sum(values) % d == target
        }
        bags.append(Bag(schema, rows))
    return bags


def counterexample_for_cyclic(
    hypergraph: Hypergraph, default_value=0
) -> list[Bag]:
    """A pairwise consistent but globally inconsistent collection of bags
    over the hyperedges of a cyclic hypergraph (Step 2 of Theorem 2).

    Pipeline: Lemma 3 finds W and the reduced induced obstruction
    (a cycle C_n or an H_n, both uniform and regular); the Tseitin
    collection is built over it; Lemma 4 lifts the collection back
    through the safe-deletion sequence.  The result is aligned with
    ``hypergraph.edges``.

    Raises :class:`AcyclicSchemaError` on acyclic hypergraphs — by
    Theorem 2 no counterexample exists there.
    """
    obstruction = find_obstruction(hypergraph)  # raises when acyclic
    schemas = list(hypergraph.edges)
    steps = deletion_sequence(schemas, obstruction.vertices)
    final_schemas = steps[-1].schemas_after if steps else tuple(schemas)
    core = tseitin_collection(list(final_schemas))
    return lift_collection(core, steps, default_value)


def has_local_to_global_property_for_bags(hypergraph: Hypergraph) -> bool:
    """Theorem 2 as a decider: the property holds iff H is acyclic."""
    return is_acyclic(hypergraph)


def find_local_to_global_counterexample(
    hypergraph: Hypergraph, default_value=0
) -> list[Bag] | None:
    """None when H is acyclic (no counterexample exists, Theorem 2);
    otherwise an explicit pairwise-consistent, globally-inconsistent
    collection over H's hyperedges."""
    try:
        return counterexample_for_cyclic(hypergraph, default_value)
    except AcyclicSchemaError:
        return None


def verify_counterexample(
    bags: Sequence[Bag],
    node_budget: int | None = DEFAULT_NODE_BUDGET,
) -> bool:
    """Certificate check: the collection is pairwise consistent yet not
    globally consistent (the exact search settles the negative half)."""
    if not pairwise_consistent(bags):
        return False
    return not decide_global_consistency(
        bags, method="search", node_budget=node_budget
    )
