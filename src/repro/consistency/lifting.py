"""Lemma 4: transporting collections of bags across safe deletions.

A *safe deletion* is a vertex deletion ``H \\ u`` or a covered-edge
deletion ``H \\ e`` (Section 4).  Lemma 4 shows that if H0 is obtained
from H1 by a sequence of safe deletions, then any collection D0 of bags
over H0 lifts to a collection D1 over H1 that is k-wise consistent iff
D0 is, for every k — the mechanism that transports the Tseitin
counterexamples from the minimal obstructions (C_n / H_n) back to an
arbitrary cyclic hypergraph in Theorem 2's Step 2.

Collections are *lists* of bags aligned with a list of schemas; after a
vertex deletion two schemas may coincide, so lists (not sets) are the
right carrier, exactly as the paper indexes bags by i in [m].

The forward direction (:func:`push_collection`) marginalizes/drops; the
backward direction (:func:`lift_collection`) is the paper's
construction: covered edges are re-created as marginals of their
covering bag, and deleted vertices are re-attached with a default value
``u0``.  ``push(lift(D0)) == D0`` holds and is tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from ..core.bags import Bag
from ..core.schema import Attribute, Schema
from ..errors import SchemaError


@dataclass(frozen=True)
class DeletionStep:
    """One safe deletion over a schema list.

    ``kind == "vertex"``: ``vertex`` was removed from every schema
    (length preserved; schemas may become empty or equal).

    ``kind == "edge"``: the schema at ``removed_index`` (into
    ``schemas_before``) was deleted; it is contained in the schema at
    ``covering_index``.
    """

    kind: Literal["vertex", "edge"]
    schemas_before: tuple[Schema, ...]
    schemas_after: tuple[Schema, ...]
    vertex: Attribute | None = None
    removed_index: int | None = None
    covering_index: int | None = None


def vertex_deletion_step(
    schemas: Sequence[Schema], vertex: Attribute
) -> DeletionStep:
    """Delete ``vertex`` from every schema in the list."""
    schemas = tuple(schemas)
    if not any(vertex in schema for schema in schemas):
        raise SchemaError(f"vertex {vertex!r} occurs in no schema")
    after = tuple(
        schema.without(vertex) if vertex in schema else schema
        for schema in schemas
    )
    return DeletionStep(
        kind="vertex",
        schemas_before=schemas,
        schemas_after=after,
        vertex=vertex,
    )


def edge_deletion_step(
    schemas: Sequence[Schema], removed_index: int, covering_index: int
) -> DeletionStep:
    """Delete the covered schema at ``removed_index``."""
    schemas = tuple(schemas)
    if removed_index == covering_index:
        raise SchemaError("an edge cannot cover itself")
    removed = schemas[removed_index]
    covering = schemas[covering_index]
    if not removed.issubset(covering):
        raise SchemaError(
            f"schema {removed!r} is not contained in {covering!r}; "
            f"deletion is not safe"
        )
    after = tuple(
        schema for i, schema in enumerate(schemas) if i != removed_index
    )
    return DeletionStep(
        kind="edge",
        schemas_before=schemas,
        schemas_after=after,
        removed_index=removed_index,
        covering_index=covering_index,
    )


def deletion_sequence(
    schemas: Sequence[Schema], keep_vertices: frozenset
) -> list[DeletionStep]:
    """A sequence of safe deletions from ``schemas`` to the reduced
    induced schema list on ``keep_vertices``.

    First deletes every vertex outside ``keep_vertices`` (in canonical
    order), then deletes covered schemas (duplicates included) until no
    coverage remains — i.e. until the list holds exactly the edges of
    ``R(H[W])``, as in the proof of Lemma 3.
    """
    steps: list[DeletionStep] = []
    current = tuple(schemas)
    all_vertices: set = set()
    for schema in current:
        all_vertices.update(schema.attrs)
    for vertex in sorted(all_vertices - set(keep_vertices), key=repr):
        step = vertex_deletion_step(current, vertex)
        steps.append(step)
        current = step.schemas_after
    while True:
        found = None
        for i in range(len(current)):
            for j in range(len(current)):
                if i != j and current[i].issubset(current[j]):
                    found = (i, j)
                    break
            if found:
                break
        if not found:
            break
        step = edge_deletion_step(current, found[0], found[1])
        steps.append(step)
        current = step.schemas_after
    return steps


def _check_alignment(bags: Sequence[Bag], schemas: Sequence[Schema]) -> None:
    if len(bags) != len(schemas):
        raise SchemaError(
            f"collection has {len(bags)} bags but the schema list has "
            f"{len(schemas)} entries"
        )
    for bag, schema in zip(bags, schemas):
        if bag.schema != schema:
            raise SchemaError(
                f"bag schema {bag.schema!r} does not match expected "
                f"{schema!r}"
            )


def push_collection(
    bags: Sequence[Bag], step: DeletionStep
) -> list[Bag]:
    """Transport a collection forward across one deletion.

    Vertex deletion marginalizes each affected bag onto its shrunken
    schema; edge deletion drops the removed bag.  Preserves k-wise
    consistency in the forward direction (marginals of a witness
    witness the marginals).
    """
    _check_alignment(bags, step.schemas_before)
    if step.kind == "vertex":
        return [
            bag.marginal(after)
            for bag, after in zip(bags, step.schemas_after)
        ]
    return [
        bag for i, bag in enumerate(bags) if i != step.removed_index
    ]


def lift_collection_one(
    bags: Sequence[Bag], step: DeletionStep, default_value=0
) -> list[Bag]:
    """Lemma 4's construction for a single deletion step (backward).

    Edge deletion: the removed bag is re-created as the marginal of its
    covering bag.  Vertex deletion: each affected bag is extended with
    the default value ``u0 = default_value`` on the deleted attribute.
    """
    _check_alignment(bags, step.schemas_after)
    if step.kind == "edge":
        assert step.removed_index is not None
        assert step.covering_index is not None
        # Position of the covering schema inside the *after* list.
        covering_after = step.covering_index
        if step.covering_index > step.removed_index:
            covering_after -= 1
        removed_schema = step.schemas_before[step.removed_index]
        recreated = bags[covering_after].marginal(removed_schema)
        lifted = list(bags)
        lifted.insert(step.removed_index, recreated)
        return lifted
    # Vertex deletion: extend every bag whose original schema held the
    # vertex.
    vertex = step.vertex
    lifted = []
    for bag, before in zip(bags, step.schemas_before):
        if vertex not in before:
            lifted.append(bag)
            continue
        mults = {}
        for row, mult in bag.items():
            mapping = dict(zip(bag.schema.attrs, row))
            mapping[vertex] = default_value
            new_row = tuple(mapping[a] for a in before.attrs)
            mults[new_row] = mult
        lifted.append(Bag(before, mults))
    return lifted


def lift_collection(
    bags: Sequence[Bag],
    steps: Sequence[DeletionStep],
    default_value=0,
) -> list[Bag]:
    """Lemma 4 over a whole deletion sequence: given D0 over the final
    schema list, produce D1 over the initial one, preserving k-wise
    consistency in both directions."""
    current = list(bags)
    for step in reversed(list(steps)):
        current = lift_collection_one(current, step, default_value)
    return current


def push_collection_all(
    bags: Sequence[Bag], steps: Sequence[DeletionStep]
) -> list[Bag]:
    """Transport a collection forward across a whole sequence."""
    current = list(bags)
    for step in steps:
        current = push_collection(current, step)
    return current
