"""repro — a reproduction of *Structure and Complexity of Bag Consistency*
(Atserias & Kolaitis, PODS 2021).

The package implements, from scratch, the paper's full pipeline:

* bags (multiset relations), marginals, bag joins (:mod:`repro.core`);
* the columnar execution engine: shared projection/join kernels, cached
  per-bag indexes, and the memoizing batched :class:`Engine` facade
  (:mod:`repro.engine`);
* hypergraph acyclicity, join trees, chordality/conformality, and the
  Lemma 3 obstruction machinery (:mod:`repro.hypergraphs`);
* integral max-flow and exact rational LP/ILP substrates
  (:mod:`repro.flows`, :mod:`repro.lp`);
* the consistency layer — Lemma 2's five equivalent deciders for two
  bags, the GCPB solvers with the Theorem 4 dichotomy, Theorem 6 witness
  construction, and the Theorem 2 local-to-global machinery with its
  Tseitin-style counterexamples (:mod:`repro.consistency`);
* the NP-hardness reductions (3-coloring, 3DCT, the C_n and H_n chains)
  (:mod:`repro.reductions`);
* workload generators and paper example families (:mod:`repro.workloads`).

Quick taste::

    >>> from repro import Bag, Schema, are_consistent, consistency_witness
    >>> R = Bag.from_pairs(Schema(["A", "B"]), [((1, 2), 1), ((2, 2), 1)])
    >>> S = Bag.from_pairs(Schema(["B", "C"]), [((2, 1), 1), ((2, 2), 1)])
    >>> are_consistent(R, S)
    True
    >>> consistency_witness(R, S).schema
    Schema(['A', 'B', 'C'])
"""

from .consistency import (
    ConsistencyProgram,
    acyclic_global_witness,
    are_consistent,
    bfmy_counterexample,
    check_theorem3_bounds,
    check_theorem5_bound,
    consistency_witness,
    counterexample_for_cyclic,
    decide_global_consistency,
    find_local_to_global_counterexample,
    global_witness,
    has_local_to_global_property_for_bags,
    is_witness,
    k_wise_consistent,
    minimal_pairwise_witness,
    minimize_witness,
    pairwise_consistent,
    rational_witness,
    relations_consistent,
    relations_globally_consistent,
    relations_pairwise_consistent,
    tseitin_collection,
    universal_relation,
    verify_counterexample,
)
from .core import (
    Bag,
    KRelation,
    Relation,
    Schema,
    Tup,
    bag_join_all,
    join_all,
    schema,
)
from .display import bag_table, collection_summary, relation_table
from .engine.session import Engine, EngineStats
from .errors import (
    AcyclicSchemaError,
    CyclicSchemaError,
    InconsistentError,
    MultiplicityError,
    NotRegularError,
    ReductionError,
    ReproError,
    SchemaError,
    SearchLimitExceeded,
    SolverError,
)
from .hypergraphs import (
    Hypergraph,
    cycle_hypergraph,
    hn_hypergraph,
    hypergraph_of_bags,
    is_acyclic,
    join_tree,
    path_hypergraph,
    running_intersection_order,
    triangle_hypergraph,
)

__version__ = "1.0.0"

__all__ = [
    "AcyclicSchemaError",
    "Bag",
    "ConsistencyProgram",
    "CyclicSchemaError",
    "Engine",
    "EngineStats",
    "Hypergraph",
    "InconsistentError",
    "KRelation",
    "MultiplicityError",
    "NotRegularError",
    "ReductionError",
    "Relation",
    "ReproError",
    "Schema",
    "SchemaError",
    "SearchLimitExceeded",
    "SolverError",
    "Tup",
    "acyclic_global_witness",
    "are_consistent",
    "bag_join_all",
    "bag_table",
    "bfmy_counterexample",
    "check_theorem3_bounds",
    "check_theorem5_bound",
    "collection_summary",
    "consistency_witness",
    "counterexample_for_cyclic",
    "cycle_hypergraph",
    "decide_global_consistency",
    "find_local_to_global_counterexample",
    "global_witness",
    "has_local_to_global_property_for_bags",
    "hn_hypergraph",
    "hypergraph_of_bags",
    "is_acyclic",
    "is_witness",
    "join_all",
    "join_tree",
    "k_wise_consistent",
    "minimal_pairwise_witness",
    "minimize_witness",
    "pairwise_consistent",
    "path_hypergraph",
    "rational_witness",
    "relation_table",
    "relations_consistent",
    "relations_globally_consistent",
    "relations_pairwise_consistent",
    "running_intersection_order",
    "schema",
    "triangle_hypergraph",
    "tseitin_collection",
    "universal_relation",
    "verify_counterexample",
]
