"""Witness-space analysis: how determined is a reconciliation?

Section 3 shows a consistent pair can have exponentially many pairwise
incomparable witnesses — so "the data is consistent" can mean anything
from "the joint database is forced" to "almost any joint story fits".
This module quantifies that spectrum:

* :func:`witness_space_report` — per-join-tuple multiplicity ranges
  (via the Section 3 LP remark), the number of *pinned* tuples, and the
  total slack;
* :func:`count_witnesses` — exact witness count by exhaustive
  enumeration (exponential; small instances);
* :func:`ambiguity_index` — a normalized [0, 1] score: 0 means a unique
  witness, values near 1 mean the marginals barely constrain the joint
  database.

These are downstream-user conveniences built entirely on the paper's
machinery (P(R, S), Lemma 1, the LP integrality of Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..consistency.optimize import multiplicity_range
from ..consistency.program import ConsistencyProgram
from ..core.bags import Bag
from ..errors import InconsistentError
from ..lp.integer_feasibility import (
    DEFAULT_NODE_BUDGET,
    enumerate_solutions,
    iter_solutions,
)


@dataclass(frozen=True)
class TupleRange:
    """The multiplicity interval of one join tuple across all witnesses."""

    row: tuple
    low: int
    high: int

    @property
    def pinned(self) -> bool:
        return self.low == self.high

    @property
    def slack(self) -> int:
        return self.high - self.low


@dataclass(frozen=True)
class WitnessSpaceReport:
    """Summary of the witness space of a consistent pair."""

    ranges: tuple[TupleRange, ...]
    total_mass: int

    @property
    def n_join_tuples(self) -> int:
        return len(self.ranges)

    @property
    def n_pinned(self) -> int:
        return sum(1 for r in self.ranges if r.pinned)

    @property
    def total_slack(self) -> int:
        return sum(r.slack for r in self.ranges)

    @property
    def unique_witness(self) -> bool:
        return all(r.pinned for r in self.ranges)

    def ambiguity_index(self) -> float:
        """Total slack normalized by total mass: 0 iff the witness is
        unique; larger values mean looser marginals.  (Can exceed 1 when
        many tuples each range over most of the mass.)"""
        if self.total_mass == 0:
            return 0.0
        return self.total_slack / self.total_mass


def witness_space_report(r: Bag, s: Bag) -> WitnessSpaceReport:
    """Per-tuple multiplicity ranges for every join tuple of a
    consistent pair (2 |J| exact LP solves).

    Raises :class:`InconsistentError` for inconsistent pairs (an empty
    witness space has no geometry to report).
    """
    from ..consistency.pairwise import are_consistent

    if not are_consistent(r, s):
        raise InconsistentError("bags are not consistent")
    program = ConsistencyProgram.build([r, s])
    ranges = []
    for row in program.join_rows:
        low, high = multiplicity_range(r, s, row)
        ranges.append(TupleRange(row, low, high))
    return WitnessSpaceReport(
        ranges=tuple(ranges), total_mass=r.unary_size
    )


def count_witnesses(
    bags: Sequence[Bag],
    limit: int | None = None,
    node_budget: int | None = DEFAULT_NODE_BUDGET,
) -> int:
    """The exact number of witnesses of a collection (0 when globally
    inconsistent).  Exhaustive; exponential in general — use on small
    instances or with a ``limit``."""
    program = ConsistencyProgram.build(list(bags))
    return len(
        enumerate_solutions(program.system, limit=limit, node_budget=node_budget)
    )


def iter_witnesses(
    bags: Sequence[Bag],
    node_budget: int | None = DEFAULT_NODE_BUDGET,
) -> Iterator[Bag]:
    """Lazily stream every witness of a collection.

    Streaming matters because witness counts can be exponential
    (Section 3): taking the first few costs only the search work to
    reach them.
    """
    program = ConsistencyProgram.build(list(bags))
    for solution in iter_solutions(program.system, node_budget):
        yield program.witness_from_solution(solution)


def format_report(report: WitnessSpaceReport) -> str:
    """Human-readable rendering of a witness-space report."""
    lines = [
        f"join tuples: {report.n_join_tuples}, pinned: {report.n_pinned}, "
        f"total slack: {report.total_slack}, "
        f"ambiguity index: {report.ambiguity_index():.3f}"
    ]
    for tr in report.ranges:
        label = ", ".join(str(v) for v in tr.row)
        status = "pinned" if tr.pinned else f"range [{tr.low}, {tr.high}]"
        lines.append(f"  ({label}): {status}")
    return "\n".join(lines)
