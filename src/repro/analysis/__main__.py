"""``python -m repro.analysis`` — the lint entry point."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main(prog="python -m repro.analysis"))
