"""The lint rules: one AST pass per module over declared invariants.

Rules (severity in parentheses):

* **RL01** unguarded-shared-mutation (error) — a write to a field
  declared by ``@shared_state`` (or to a slot/container declared by
  ``register_lock``) outside a ``with <lock>:`` block in the enclosing
  function.  ``__init__`` bodies and ``@requires_lock`` methods are
  exempt; the lock match is by terminal name (``self._lock``,
  ``engine._lock`` and ``_INTERN_LOCK`` all match their declarations),
  a deliberate static under-approximation whose gaps the runtime
  sanitizer covers.
* **RL02** identity-cache-key (error) — keying a cache reachable from
  an attribute (``self._cache[id(bag)]``, ``store.get((tag, id(b)))``)
  by object identity instead of content fingerprints.  Ephemeral
  *local* id-keyed dicts are legal (the live engine uses one inside a
  single call) — the rule only fires when the receiver is an attribute,
  i.e. state that outlives the frame.
* **RL03** snapshot-mutation (error) — in-place
  ``append``/``extend``/``+=``/``setitem`` on a ``FROZEN_FIELDS``
  field.  Class-scoped for ``self.<field>`` writes; name-based for
  other receivers (``delta.rows.extend(...)``).  Rebinding
  (``self.rows = self.rows + new``) is the sanctioned idiom and never
  flagged.
* **RL04** invalidation-completeness (warning) — a function that
  mutates a ``_mults`` multiplicity map in place without a reachable
  call to any maintenance hook (``shift_content`` / ``invalidate`` /
  ``content_sum`` / ``tombstone`` / ``flush`` / ``notify`` ...): the
  shape of a cache left stale by a direct mutation.
* **RL05** lock-order (error) — a ``with`` acquiring a lock of an
  *earlier* tier while one of a later tier is held, inverting the
  declared ``engine -> store -> columnar -> interner -> obs`` order.
  Only
  statically-resolvable locks participate (named locks and
  ``self.<lock>`` of a registered class).

Suppression: a ``# repro-lint: disable=RL01`` (or ``disable=all``)
comment on the flagged line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .registry import LOCK_ORDER

__all__ = ["Finding", "ModuleChecker", "SEVERITY"]

SEVERITY = {
    "RL01": "error",
    "RL02": "error",
    "RL03": "error",
    "RL04": "warning",
    "RL05": "error",
}

_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "sort", "reverse",
    "move_to_end", "difference_update", "intersection_update",
    "symmetric_difference_update",
})

# Calls that count as invalidation/maintenance for RL04.
_RL04_HOOKS = frozenset({
    "shift_content", "invalidate", "invalidate_fp", "content_sum",
    "seed", "tombstone", "flush", "_flush_locked", "clear", "notify",
    "validate_update",
})

_RL04_EXEMPT_FUNCS = frozenset({"__init__", "__new__", "_from_clean"})


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str
    line: int
    scope: str
    detail: str
    message: str

    @property
    def severity(self) -> str:
        return SEVERITY[self.rule]

    @property
    def key(self) -> str:
        """Line-number-free identity used by the baseline file, so
        grandfathered findings survive unrelated edits above them."""
        return f"{self.rule}:{self.path}:{self.scope}:{self.detail}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule} [{self.severity}] "
            f"{self.message}"
        )


def _terminal(expr: ast.expr) -> str | None:
    """The terminal identifier of a Name/Attribute chain, else None."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _chain(expr: ast.expr) -> tuple[str, ...] | None:
    """``self.stats.evictions`` -> ("self", "stats", "evictions");
    None for chains not rooted at a plain name."""
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        parts.reverse()
        return tuple(parts)
    return None


def _contains_id_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
        ):
            return True
    return False


class _FuncCtx:
    """Per-function state: name, exemptions, RL04 accumulation."""

    __slots__ = ("name", "is_init", "held_at_entry", "mults_mutations",
                 "has_hook")

    def __init__(self, name: str, is_init: bool, held_at_entry: tuple):
        self.name = name
        self.is_init = is_init
        self.held_at_entry = held_at_entry
        self.mults_mutations: list[int] = []
        self.has_hook = False


class ModuleChecker(ast.NodeVisitor):
    """Run every rule over one parsed module.

    ``static_registry`` is a :class:`repro.analysis.linter.StaticRegistry`
    collected by AST from the same file set — the checker never imports
    the code under analysis.
    """

    def __init__(self, path: str, tree: ast.Module, source_lines: list[str],
                 static_registry) -> None:
        self.path = path
        self.tree = tree
        self.lines = source_lines
        self.reg = static_registry
        self.findings: list[Finding] = []
        self._class_stack: list[str] = []
        self._func_stack: list[_FuncCtx] = []
        # (terminal lock name, tier-or-None) for each enclosing with
        self._held: list[tuple[str, str | None]] = []

    # -- plumbing --------------------------------------------------------

    def run(self) -> list[Finding]:
        self.visit(self.tree)
        return [f for f in self.findings if not self._suppressed(f)]

    def _suppressed(self, finding: Finding) -> bool:
        if 1 <= finding.line <= len(self.lines):
            text = self.lines[finding.line - 1]
            if "repro-lint:" in text:
                directive = text.split("repro-lint:", 1)[1]
                if "disable=" in directive:
                    rules = directive.split("disable=", 1)[1].split()[0]
                    names = {r.strip() for r in rules.split(",")}
                    return "all" in names or finding.rule in names
        return False

    def _scope(self) -> str:
        parts = list(self._class_stack)
        parts.extend(ctx.name for ctx in self._func_stack)
        return ".".join(parts) if parts else "<module>"

    def _emit(self, rule: str, node: ast.AST, detail: str, message: str):
        self.findings.append(Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            scope=self._scope(),
            detail=detail,
            message=message,
        ))

    def _held_names(self) -> set[str]:
        names = {name for name, _ in self._held}
        if self._func_stack:
            names.update(self._func_stack[-1].held_at_entry)
        return names

    def _in_function(self) -> bool:
        return bool(self._func_stack)

    def _current_spec(self):
        """The @shared_state spec of the innermost enclosing class."""
        if self._class_stack:
            return self.reg.classes.get(self._class_stack[-1])
        return None

    def _init_exempt(self) -> bool:
        return bool(self._func_stack) and self._func_stack[-1].is_init

    # -- structure visitors ----------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_func(self, node) -> None:
        held: tuple = ()
        spec = self._current_spec()
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call) and _terminal(deco.func) == \
                    "requires_lock":
                if deco.args and isinstance(deco.args[0], ast.Constant):
                    held = (str(deco.args[0].value),)
                elif spec is not None:
                    held = (spec.lock_attr,)
        is_init = node.name in ("__init__", "__new__")
        ctx = _FuncCtx(node.name, is_init, held)
        self._func_stack.append(ctx)
        self.generic_visit(node)
        self._func_stack.pop()
        if (
            ctx.mults_mutations
            and not ctx.has_hook
            and node.name not in _RL04_EXEMPT_FUNCS
        ):
            line = ctx.mults_mutations[0]
            self.findings.append(Finding(
                rule="RL04",
                path=self.path,
                line=line,
                scope=self._scope() + "." + node.name
                if self._scope() != "<module>" else node.name,
                detail=f"{node.name}._mults",
                message=(
                    f"{node.name}() mutates a _mults map with no "
                    "reachable invalidate/shift_content/flush call"
                ),
            ))

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_With(self, node: ast.With) -> None:
        acquired: list[tuple[str, str | None]] = []
        for item in node.items:
            name = _terminal(item.context_expr)
            if name is None:
                continue
            tier = self._lock_tier(item.context_expr, name)
            # RL05: acquiring an earlier tier under a later one
            if tier is not None:
                order = LOCK_ORDER.index(tier)
                for held_name, held_tier in self._held:
                    if held_tier is not None and \
                            LOCK_ORDER.index(held_tier) > order:
                        self._emit(
                            "RL05", node, f"{held_name}->{name}",
                            f"lock-order inversion: acquiring "
                            f"{name!r} (tier {tier!r}) while holding "
                            f"{held_name!r} (tier {held_tier!r}); "
                            f"declared order is {'->'.join(LOCK_ORDER)}",
                        )
            acquired.append((name, tier))
        self._held.extend(acquired)
        self.generic_visit(node)
        del self._held[len(self._held) - len(acquired):]

    visit_AsyncWith = visit_With

    def _lock_tier(self, expr: ast.expr, name: str) -> str | None:
        lock = self.reg.named_locks.get(name)
        if isinstance(expr, ast.Name) and lock is not None:
            return lock.tier
        chain = _chain(expr)
        if chain is not None and len(chain) == 2 and chain[0] == "self":
            spec = self._current_spec()
            if spec is not None and spec.lock_attr == name:
                return spec.tier
        return None

    # -- write-site visitors ---------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_bind(target, node)
        # RL02: dict display keyed by id() bound to an attribute
        if isinstance(node.value, ast.Dict) and any(
            isinstance(t, ast.Attribute) for t in node.targets
        ):
            for key in node.value.keys:
                if key is not None and _contains_id_call(key):
                    self._emit(
                        "RL02", node, "id-keyed-dict",
                        "cache keyed by id(...) — key on content "
                        "fingerprints instead",
                    )
                    break
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_bind(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_bind(node.target, node, inplace=True)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if not isinstance(target, ast.Subscript):
                # subscript deletions are item mutations, reported by
                # visit_Subscript (Del context)
                self._check_bind(target, node)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self._check_mutation(node.value, node)
        # RL02: id() inside the key of an attribute-receiver subscript
        if isinstance(node.value, ast.Attribute) and \
                _contains_id_call(node.slice):
            self._emit(
                "RL02", node, f"{node.value.attr}[id()]",
                f"cache {node.value.attr!r} keyed by id(...) — key on "
                "content fingerprints instead",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = _terminal(func)
        if self._func_stack and name in _RL04_HOOKS:
            self._func_stack[-1].has_hook = True
        if isinstance(func, ast.Attribute):
            if func.attr in _MUTATORS:
                self._check_mutation(func.value, node)
            # RL02: id() in the probe key of an attribute-receiver
            # .get/.setdefault/.pop
            if (
                func.attr in ("get", "setdefault", "pop")
                and isinstance(func.value, ast.Attribute)
                and node.args
                and _contains_id_call(node.args[0])
            ):
                self._emit(
                    "RL02", node, f"{func.value.attr}.{func.attr}(id())",
                    f"cache {func.value.attr!r} probed by id(...) — key "
                    "on content fingerprints instead",
                )
        self.generic_visit(node)

    # -- the shared write logic ------------------------------------------

    def _check_bind(self, target: ast.expr, node: ast.AST,
                    inplace: bool = False) -> None:
        """An Assign/AnnAssign/AugAssign/Delete binding site."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_bind(elt, node, inplace=inplace)
            return
        if isinstance(target, ast.Subscript):
            return  # item stores are reported by visit_Subscript
        if isinstance(target, ast.Starred):
            self._check_bind(target.value, node, inplace=inplace)
            return
        chain = _chain(target)
        if chain is None:
            return
        if len(chain) >= 2 and chain[0] == "self":
            self._check_self_field(chain[1], node, inplace=inplace,
                                   via_chain=len(chain) > 2)
        if isinstance(target, ast.Attribute):
            field = target.attr
            # name-based publication slots (assignment only; in-place
            # ops on a slot are also writes)
            lock = self.reg.slot_guards.get(field)
            if lock is not None and self._in_function() and \
                    not self._init_exempt() and \
                    lock not in self._held_names():
                self._emit(
                    "RL01", node, f"slot {field}",
                    f"publication of {field!r} outside 'with {lock}:' "
                    "(declared via register_lock)",
                )
            # name-based frozen fields, non-self receivers: in-place
            # assignment forms only (AugAssign)
            if inplace and chain[0] != "self" and \
                    field in self.reg.all_frozen and \
                    not self._init_exempt():
                self._emit(
                    "RL03", node, f"frozen {field} augassign",
                    f"in-place augmented assignment to snapshot-frozen "
                    f"field {field!r}; rebind instead",
                )
        elif isinstance(target, ast.Name) and inplace:
            self._check_container_name(target.id, node)

    def _check_self_field(self, field: str, node: ast.AST,
                          inplace: bool = False,
                          via_chain: bool = False) -> None:
        """A write reaching ``self.<field>`` (directly or through a
        chain like ``self.stats.evictions``)."""
        spec = self._current_spec()
        if spec is not None and field in spec.fields:
            ctx = self._func_stack[-1] if self._func_stack else None
            exempt = ctx is not None and ctx.is_init
            if not exempt and spec.lock_attr not in self._held_names():
                self._emit(
                    "RL01", node, f"{spec.cls_name}.{field}",
                    f"write to shared field "
                    f"{spec.cls_name}.{field} outside "
                    f"'with self.{spec.lock_attr}:'",
                )
        # RL03 class-scoped: in-place forms on frozen fields
        frozen = self.reg.frozen_by_class.get(
            self._class_stack[-1] if self._class_stack else "", frozenset()
        )
        if inplace and not via_chain and field in frozen and \
                not self._init_exempt():
            self._emit(
                "RL03", node, f"frozen self.{field} augassign",
                f"in-place augmented assignment to snapshot-frozen "
                f"field {field!r}; rebind instead",
            )

    def _check_mutation(self, receiver: ast.expr, node: ast.AST) -> None:
        """An in-place mutation of ``receiver`` (item store/del or a
        mutator-method call)."""
        chain = _chain(receiver)
        if chain is None:
            return
        # RL04 accounting: any in-place mutation of a _mults map
        if chain[-1] == "_mults" and self._func_stack:
            self._func_stack[-1].mults_mutations.append(
                getattr(node, "lineno", 1)
            )
        if chain[0] == "self" and len(chain) >= 2:
            field = chain[1]
            spec = self._current_spec()
            if spec is not None and field in spec.fields:
                ctx = self._func_stack[-1] if self._func_stack else None
                exempt = ctx is not None and ctx.is_init
                if not exempt and spec.lock_attr not in self._held_names():
                    self._emit(
                        "RL01", node, f"{spec.cls_name}.{field}",
                        f"mutation of shared field "
                        f"{spec.cls_name}.{field} outside "
                        f"'with self.{spec.lock_attr}:'",
                    )
            frozen = self.reg.frozen_by_class.get(
                self._class_stack[-1] if self._class_stack else "",
                frozenset(),
            )
            if len(chain) == 2 and field in frozen and \
                    not self._init_exempt():
                self._emit(
                    "RL03", node, f"frozen self.{field}",
                    f"in-place mutation of snapshot-frozen field "
                    f"self.{field}; rebind instead "
                    "(rows = rows + new)",
                )
        else:
            # non-self receivers: name-based frozen fields
            terminal = chain[-1]
            if len(chain) >= 2 and terminal in self.reg.all_frozen and \
                    not self._init_exempt():
                self._emit(
                    "RL03", node, f"frozen {terminal}",
                    f"in-place mutation of snapshot-frozen field "
                    f"{'.'.join(chain)}; rebind instead",
                )
            elif len(chain) == 1:
                self._check_container_name(chain[0], node)

    def _check_container_name(self, name: str, node: ast.AST) -> None:
        """Mutation of a bare module-global container name."""
        if not self._in_function():
            return  # module-level initialization
        lock = self.reg.container_guards.get(name)
        if lock is not None and lock not in self._held_names():
            self._emit(
                "RL01", node, f"container {name}",
                f"mutation of shared global {name!r} outside "
                f"'with {lock}:' (declared via register_lock)",
            )
