"""Analysis tooling: witness-space reports and the repo-aware linter.

Two unrelated-but-cohabiting concerns live here:

* **witness-space analysis** (:mod:`repro.analysis.witness_space`) —
  the downstream-user reports quantifying how determined a
  reconciliation is (per-tuple multiplicity ranges, ambiguity index);
* **invariant analysis** — ``repro lint`` / ``python -m repro.analysis``
  (:mod:`repro.analysis.linter`), an AST static-analysis pass with
  repo-specific rules (RL01–RL05) over the concurrency and caching
  invariants the engine actually depends on, and its runtime companion,
  the ``REPRO_SANITIZE=1`` sanitizer (:mod:`repro.analysis.sanitizer`).

Both halves of the invariant tooling read **one registry**
(:mod:`repro.analysis.registry`): the ``@shared_state`` /
``@requires_lock`` decorators and ``FROZEN_FIELDS`` class attributes
annotating the hot modules are simultaneously the linter's rule inputs
(collected by AST scan, never by import) and the sanitizer's runtime
guard installation points.

Import-light on purpose: the engine modules import
:mod:`repro.analysis.registry` at startup, so this package must not
eagerly drag in the consistency/LP stack the witness-space half needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "TupleRange",
    "WitnessSpaceReport",
    "count_witnesses",
    "format_report",
    "iter_witnesses",
    "lint_paths",
    "witness_space_report",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .linter import lint_paths
    from .witness_space import (
        TupleRange,
        WitnessSpaceReport,
        count_witnesses,
        format_report,
        iter_witnesses,
        witness_space_report,
    )

_WITNESS_SPACE = {
    "TupleRange",
    "WitnessSpaceReport",
    "count_witnesses",
    "format_report",
    "iter_witnesses",
    "witness_space_report",
}


def __getattr__(name: str):
    if name in _WITNESS_SPACE:
        from . import witness_space

        return getattr(witness_space, name)
    if name == "lint_paths":
        from .linter import lint_paths

        return lint_paths
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
