"""The lint driver: collect declarations by AST, run rules, report.

Two passes over the same file set:

1. **Registry collection** — every ``@shared_state`` / ``@requires_lock``
   decorator, ``register_lock(...)`` call, and ``FROZEN_FIELDS`` class
   attribute is read straight out of the parse trees.  The linter never
   imports the code it checks, so it runs on broken trees, costs no
   side effects, and cannot be fooled by import-time monkeypatching.
2. **Rule checking** — :class:`repro.analysis.rules.ModuleChecker` walks
   each module with the collected registry.

Entry point: :func:`lint_paths`.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path

from .rules import Finding, ModuleChecker

__all__ = ["StaticRegistry", "collect_registry", "iter_python_files",
           "lint_paths"]


class StaticClassSpec:
    """AST-derived mirror of a runtime ``SharedSpec``."""

    __slots__ = ("cls_name", "lock_attr", "fields", "tier")

    def __init__(self, cls_name: str, lock_attr: str, fields: frozenset,
                 tier: str | None) -> None:
        self.cls_name = cls_name
        self.lock_attr = lock_attr
        self.fields = fields
        self.tier = tier


class StaticLockSpec:
    """AST-derived mirror of a runtime ``LockSpec``."""

    __slots__ = ("name", "tier", "slots", "containers")

    def __init__(self, name: str, tier: str | None, slots: tuple,
                 containers: tuple) -> None:
        self.name = name
        self.tier = tier
        self.slots = slots
        self.containers = containers


class StaticRegistry:
    """Everything the rules need, keyed for O(1) lookups."""

    def __init__(self) -> None:
        self.classes: dict[str, StaticClassSpec] = {}
        self.named_locks: dict[str, StaticLockSpec] = {}
        self.frozen_by_class: dict[str, frozenset] = {}
        # derived
        self.all_frozen: frozenset = frozenset()
        self.slot_guards: dict[str, str] = {}
        self.container_guards: dict[str, str] = {}

    def finalize(self) -> "StaticRegistry":
        frozen: set[str] = set()
        for names in self.frozen_by_class.values():
            frozen.update(names)
        self.all_frozen = frozenset(frozen)
        for lock in self.named_locks.values():
            for slot in lock.slots:
                self.slot_guards[slot] = lock.name
            for container in lock.containers:
                self.container_guards[container] = lock.name
        return self


def _const_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _const_str_tuple(node: ast.expr) -> tuple[str, ...]:
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out = []
        for elt in node.elts:
            value = _const_str(elt)
            if value is not None:
                out.append(value)
        return tuple(out)
    return ()


def _call_named(node: ast.expr, name: str) -> ast.Call | None:
    if isinstance(node, ast.Call):
        func = node.func
        terminal = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if terminal == name:
            return node
    return None


class _RegistryCollector(ast.NodeVisitor):
    def __init__(self, registry: StaticRegistry) -> None:
        self.reg = registry

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for deco in node.decorator_list:
            call = _call_named(deco, "shared_state")
            if call is None or not call.args:
                continue
            lock_attr = _const_str(call.args[0])
            if lock_attr is None:
                continue
            fields = [
                value
                for arg in call.args[1:]
                if (value := _const_str(arg)) is not None
            ]
            tier = None
            for kw in call.keywords:
                if kw.arg == "tier":
                    tier = _const_str(kw.value)
            self.reg.classes[node.name] = StaticClassSpec(
                node.name, lock_attr, frozenset(fields), tier
            )
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and \
                            target.id == "FROZEN_FIELDS":
                        self.reg.frozen_by_class[node.name] = frozenset(
                            _const_str_tuple(stmt.value)
                        )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        call = _call_named(node, "register_lock")
        if call is not None and call.args:
            name = _const_str(call.args[0])
            if name is not None:
                tier = None
                slots: tuple = ()
                containers: tuple = ()
                for kw in call.keywords:
                    if kw.arg == "tier":
                        tier = _const_str(kw.value)
                    elif kw.arg == "slots":
                        slots = _const_str_tuple(kw.value)
                    elif kw.arg == "containers":
                        containers = _const_str_tuple(kw.value)
                self.reg.named_locks[name] = StaticLockSpec(
                    name, tier, slots, containers
                )
        self.generic_visit(node)


def iter_python_files(paths) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py list.

    The linter's own package is excluded when a directory sweep reaches
    it — the rule sources describe the checked code, not themselves."""
    seen: set[Path] = set()
    out: list[Path] = []
    own_pkg = Path(__file__).resolve().parent
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            if own_pkg in resolved.parents or resolved.parent == own_pkg:
                continue
            seen.add(resolved)
            out.append(candidate)
    return out


def _display_path(path: Path) -> str:
    """A stable, slash-normalized path for findings and baseline keys."""
    try:
        rel = path.resolve().relative_to(Path.cwd())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def collect_registry(files) -> StaticRegistry:
    registry = StaticRegistry()
    collector = _RegistryCollector(registry)
    for path in files:
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (SyntaxError, OSError, UnicodeDecodeError):
            continue
        collector.visit(tree)
    return registry.finalize()


def lint_paths(paths, registry_paths=None) -> list[Finding]:
    """Lint ``paths`` (files or directories).

    ``registry_paths`` widens the declaration-collection sweep beyond
    the checked set — by default the registry is collected from the
    whole ``repro`` package so a lint of one subdirectory still knows
    every declaration.
    """
    files = iter_python_files(paths)
    if registry_paths is None:
        pkg_root = Path(__file__).resolve().parents[1]
        registry_files = iter_python_files([pkg_root, *paths])
    else:
        registry_files = iter_python_files(registry_paths)
    registry = collect_registry(registry_files)

    findings: list[Finding] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source)
        except (OSError, UnicodeDecodeError):
            continue
        except SyntaxError as exc:
            findings.append(Finding(
                rule="RL01",
                path=_display_path(path),
                line=exc.lineno or 1,
                scope="<module>",
                detail="syntax-error",
                message=f"file does not parse: {exc.msg}",
            ))
            continue
        checker = ModuleChecker(
            _display_path(path), tree, source.splitlines(), registry
        )
        findings.extend(checker.run())
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.detail))
    return findings


def format_findings(findings, fmt: str = "text") -> str:
    if fmt == "json":
        import json

        return json.dumps(
            [
                {
                    "rule": f.rule,
                    "severity": f.severity,
                    "path": f.path,
                    "line": f.line,
                    "scope": f.scope,
                    "detail": f.detail,
                    "message": f.message,
                    "key": f.key,
                }
                for f in findings
            ],
            indent=2,
        )
    lines = [f.render() for f in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append(
        f"repro lint: {errors} error(s), {warnings} warning(s)"
        if findings
        else "repro lint: clean"
    )
    return os.linesep.join(lines) if os.linesep != "\n" else "\n".join(lines)
