"""Command-line front end for ``repro lint`` / ``python -m repro.analysis``.

Exit codes: 0 clean (or everything grandfathered), 1 new findings (or,
under ``--strict``, stale baseline keys), 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import DEFAULT_BASELINE, apply_baseline, load_baseline, \
    write_baseline
from .linter import format_findings, lint_paths

__all__ = ["build_parser", "main", "run_lint"]


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Repo-aware static analysis: lock discipline (RL01), "
            "identity cache keys (RL02), snapshot mutation (RL03), "
            "invalidation completeness (RL04), lock order (RL05)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline JSON of grandfathered finding keys "
        f"(default: {DEFAULT_BASELINE}; missing file = empty)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from current findings and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on warnings and on stale baseline keys",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    return parser


def run_lint(args: argparse.Namespace) -> int:
    if args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            for p in missing:
                print(f"repro lint: no such path: {p}", file=sys.stderr)
            return 2
    else:
        paths = [Path(__file__).resolve().parents[1]]

    findings = lint_paths(paths)

    if args.update_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"repro lint: baseline updated with {len(findings)} "
            f"finding(s) -> {args.baseline}"
        )
        return 0

    baseline = set() if args.no_baseline else load_baseline(args.baseline)
    fresh, grandfathered, stale = apply_baseline(findings, baseline)

    print(format_findings(fresh, args.format))
    if grandfathered and args.format == "text":
        print(f"repro lint: {len(grandfathered)} grandfathered finding(s) "
              "suppressed by baseline")
    if stale and args.format == "text":
        for key in stale:
            print(f"repro lint: stale baseline key: {key}")

    blocking = [
        f for f in fresh if f.severity == "error" or args.strict
    ]
    if blocking:
        return 1
    if args.strict and stale:
        return 1
    return 0


def main(argv=None, prog: str = "repro lint") -> int:
    parser = build_parser(prog=prog)
    args = parser.parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
