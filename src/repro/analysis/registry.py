"""The shared-state registry: one source of truth for lint and runtime.

The two silent wrong-verdict defects this repo has shipped (the
``_Interner`` thread race and the ``ColumnarDelta`` snapshot-aliasing
corruption) were both violations of invariants that existed only in
reviewers' heads.  This module turns those invariants into
*declarations that live in the code being checked*:

* ``@shared_state(lock_attr, *fields, tier=...)`` on a class declares
  that writes to the listed fields are only legal while the instance's
  ``lock_attr`` lock is held;
* ``@requires_lock(lock_attr)`` on a method declares that its callers
  hold the lock already (the ``_remove_key`` / ``_flush_locked``
  pattern);
* ``register_lock(name, lock, tier=..., slots=..., containers=...)``
  declares a module-level lock, the tier it occupies in the global
  acquisition order, and — for publication locks like the columnar
  ``_ENCODE_LOCK`` — the slot/container names it guards anywhere in the
  package;
* ``FROZEN_FIELDS`` on a class (a plain tuple attribute, no decorator)
  declares fields that may be **rebound but never mutated in place**
  once an instance hands them to a snapshot — the PR 6 aliasing bug
  class.

The declarations are consumed twice, by design from one spot:

* ``repro lint`` (:mod:`repro.analysis.linter`) re-reads them from the
  **AST** — it never imports the checked code — and enforces them
  statically (rules RL01/RL03/RL05);
* the runtime sanitizer (:mod:`repro.analysis.sanitizer`) uses the
  decorator hooks installed here to wrap registered container fields in
  lock-asserting proxies and to verify ``requires_lock`` at call time
  when ``REPRO_SANITIZE=1`` (or :func:`repro.analysis.sanitizer.enable`)
  is active.

The declared lock order is ``engine -> store -> columnar -> interner ->
obs``: while holding a lock of one tier, only locks of *later* tiers may
be acquired.  (The issue's ``engine -> store -> interner`` order, with
the columnar encode-publication tier slotted before the interner tier it
may acquire while encoding; the ``obs`` telemetry tier sits last so any
layer may record a metric while holding its own lock.)

This module imports nothing from the rest of the package, so the hot
modules can import it at startup without cycles.
"""

from __future__ import annotations

import os
from functools import wraps
from typing import Callable, Iterable

__all__ = [
    "LOCK_ORDER",
    "NAMED_LOCKS",
    "SHARED_CLASSES",
    "LockSpec",
    "SharedSpec",
    "register_lock",
    "requires_lock",
    "shared_state",
]

# The declared global lock-acquisition order (RL05): holding a lock of
# tier i, code may only acquire locks of tiers > i.
LOCK_ORDER = ("engine", "store", "columnar", "interner", "obs")


class SharedSpec:
    """Runtime record of one ``@shared_state`` class declaration."""

    __slots__ = ("cls_name", "lock_attr", "fields", "tier")

    def __init__(
        self, cls_name: str, lock_attr: str, fields: tuple, tier: str | None
    ) -> None:
        self.cls_name = cls_name
        self.lock_attr = lock_attr
        self.fields = frozenset(fields)
        self.tier = tier


class LockSpec:
    """Runtime record of one ``register_lock`` declaration."""

    __slots__ = ("name", "lock", "tier", "slots", "containers")

    def __init__(
        self,
        name: str,
        lock,
        tier: str | None,
        slots: tuple,
        containers: tuple,
    ) -> None:
        self.name = name
        self.lock = lock
        self.tier = tier
        self.slots = tuple(slots)
        self.containers = tuple(containers)


# class qualname -> SharedSpec, lock name -> LockSpec.  Populated at
# import time by the decorators/registrations in the hot modules; the
# sanitizer reads these, the linter re-derives the same facts by AST.
SHARED_CLASSES: dict[str, SharedSpec] = {}
NAMED_LOCKS: dict[str, LockSpec] = {}

# Sanitizer activity flag.  Read per guarded operation, so
# enable()/disable() in tests take effect immediately; instances
# created while inactive keep plain containers (only instances built
# under an active sanitizer are instrumented).
_ACTIVE = bool(os.environ.get("REPRO_SANITIZE"))

# Instances currently inside __init__ (by id): their setup writes are
# exempt from the lock-held guard.  Keyed by id() so it works for
# ``__slots__`` classes; thread-local-free because an id is only in the
# set while one thread runs that object's __init__.
_IN_INIT: set[int] = set()


def sanitizer_active() -> bool:
    return _ACTIVE


def _set_active(value: bool) -> None:
    global _ACTIVE
    _ACTIVE = value


def validate_tier(tier: str | None) -> None:
    if tier is not None and tier not in LOCK_ORDER:
        raise ValueError(
            f"unknown lock tier {tier!r}; declared order is {LOCK_ORDER}"
        )


def shared_state(
    lock_attr: str, *fields: str, tier: str | None = None
) -> Callable[[type], type]:
    """Class decorator: the listed fields are shared mutable state
    guarded by the instance lock at ``lock_attr``.

    Statically (RL01): any write to ``self.<field>`` — rebind, item
    store, in-place op, or mutator-method call, including through a
    chain like ``self.stats.evictions += 1`` — outside a ``with
    self.<lock_attr>:`` block is a finding, except in ``__init__`` and
    in methods marked ``@requires_lock``.

    At runtime (sanitizer active): listed dict/list/set fields are
    wrapped in proxies whose mutators assert the lock is held, and
    rebinding a listed field asserts the same through ``__setattr__``.
    """
    fields_set = frozenset(fields)
    validate_tier(tier)

    def decorate(cls: type) -> type:
        spec = SharedSpec(cls.__name__, lock_attr, tuple(fields), tier)
        SHARED_CLASSES[cls.__name__] = spec

        original_init = cls.__init__
        original_setattr = cls.__setattr__

        @wraps(original_init)
        def guarded_init(self, *args, **kwargs):
            if not _ACTIVE:
                return original_init(self, *args, **kwargs)
            _IN_INIT.add(id(self))
            try:
                original_init(self, *args, **kwargs)
            finally:
                _IN_INIT.discard(id(self))
            from .sanitizer import instrument

            instrument(self, spec)

        def guarded_setattr(self, name, value):
            if _ACTIVE and name in fields_set and id(self) not in _IN_INIT:
                from .sanitizer import check_field_write

                value = check_field_write(self, spec, name, value)
            original_setattr(self, name, value)

        cls.__init__ = guarded_init
        cls.__setattr__ = guarded_setattr
        cls.__shared_state__ = spec
        return cls

    return decorate


def requires_lock(lock_attr: str) -> Callable:
    """Method decorator: callers already hold ``self.<lock_attr>``.

    Statically (RL01): the method body is treated as lock-held context.
    At runtime (sanitizer active): entry asserts the lock really is
    held, so a call path that loses the lock fails loudly at the exact
    frame that broke the contract rather than as a corrupted verdict
    later.
    """

    def decorate(fn: Callable) -> Callable:
        @wraps(fn)
        def wrapper(self, *args, **kwargs):
            if _ACTIVE:
                from .sanitizer import assert_lock_held

                assert_lock_held(self, lock_attr, fn.__qualname__)
            return fn(self, *args, **kwargs)

        wrapper.__requires_lock__ = lock_attr
        return wrapper

    return decorate


def register_lock(
    name: str,
    lock,
    tier: str | None = None,
    slots: Iterable[str] = (),
    containers: Iterable[str] = (),
):
    """Declare a module-level lock.

    ``tier`` places it in :data:`LOCK_ORDER` (RL05).  ``slots`` are
    attribute names whose *assignment* anywhere in the package must
    happen under this lock (publication slots like ``_columnar``,
    exempting ``__init__``); ``containers`` are module-global mapping
    names whose *mutation* must (``_INTERNERS``).  Returns the lock so
    declarations can wrap construction::

        _ENCODE_LOCK = register_lock(
            "_ENCODE_LOCK", threading.Lock(), tier="columnar",
            slots=("_columnar",),
        )
    """
    validate_tier(tier)
    NAMED_LOCKS[name] = LockSpec(name, lock, tier, tuple(slots), tuple(containers))
    return lock


def lock_is_held(lock) -> bool:
    """Best-effort "does the calling context hold this lock".

    Exact for RLocks (``_is_owned``); for plain locks ``locked()`` is
    the best available — it cannot distinguish *which* thread holds the
    lock, which is still enough to catch lock-removal regressions (the
    mutation-style tests patch in a lock whose ``locked()`` is False).
    """
    is_owned = getattr(lock, "_is_owned", None)
    if is_owned is not None:
        return bool(is_owned())
    locked = getattr(lock, "locked", None)
    if locked is not None:
        return bool(locked())
    return True  # unknown lock-alike: never false-positive
