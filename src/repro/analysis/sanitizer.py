"""The runtime sanitizer: lock and snapshot invariants enforced live.

``REPRO_SANITIZE=1`` (or :func:`enable` in tests) arms the runtime half
of the invariant tooling declared in :mod:`repro.analysis.registry`:

* every dict/list/set field listed in a ``@shared_state`` declaration
  is wrapped in a **guarded proxy** whose mutators assert the owning
  lock is held — reads stay unchecked and lock-free, exactly like the
  production fast paths they shadow;
* rebinding a registered field goes through the same assertion (the
  ``__setattr__`` hook installed by the decorator);
* ``@requires_lock`` methods assert the lock at entry;
* snapshot-frozen state is made *physically* immutable at the freeze
  boundary: numpy arrays have ``writeable`` cleared (an in-place write
  raises ``ValueError`` from numpy itself) and shared row lists become
  :class:`FrozenRows` (mutators raise :class:`SanitizerError`) — so the
  PR 6 aliasing bug class cannot corrupt silently, it crashes at the
  mutation site.

The guards are deliberately *per-instance at construction time*:
instances built while the sanitizer is inactive are never slowed down,
and the inactive fast path in the decorator hooks is one global flag
read.  :class:`SanitizerError` subclasses ``AssertionError`` so test
harnesses treating sanitizer trips as assertion failures need no
special casing.
"""

from __future__ import annotations

from collections import OrderedDict

from . import registry
from .registry import lock_is_held, sanitizer_active

__all__ = [
    "FrozenRows",
    "SanitizerError",
    "disable",
    "enable",
    "enabled",
    "freeze_array",
    "freeze_rows",
]


class SanitizerError(AssertionError):
    """A declared concurrency/snapshot invariant was violated."""


def enabled() -> bool:
    return sanitizer_active()


def enable() -> None:
    """Arm the sanitizer (instances created from now on are guarded)."""
    registry._set_active(True)


def disable() -> None:
    registry._set_active(False)


# -- lock assertions ----------------------------------------------------


def _resolve_lock(instance, lock_attr: str):
    lock = getattr(instance, lock_attr, None)
    if lock is None:
        spec = registry.NAMED_LOCKS.get(lock_attr)
        if spec is not None:
            return spec.lock
    return lock


def _assert_held(instance, lock_attr: str, what: str) -> None:
    lock = _resolve_lock(instance, lock_attr)
    if lock is None:
        return  # instance mid-setup, or an intentionally lockless stub
    if not lock_is_held(lock):
        raise SanitizerError(
            f"unguarded shared-state write: {what} requires "
            f"{type(instance).__name__}.{lock_attr} to be held"
        )


def assert_lock_held(instance, lock_attr: str, qualname: str) -> None:
    """The ``@requires_lock`` runtime check."""
    _assert_held(instance, lock_attr, f"{qualname}()")


def check_field_write(instance, spec, name: str, value):
    """The ``__setattr__`` hook: rebinding a registered field asserts
    the lock and re-wraps container values so the guard survives
    rebinds (``self._pending = [...]`` keeps its proxy)."""
    _assert_held(
        instance, spec.lock_attr, f"{spec.cls_name}.{name} rebind"
    )
    return _wrap(value, instance, spec, name)


# -- guarded containers -------------------------------------------------

_LIST_MUTATORS = (
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "__setitem__", "__delitem__", "__iadd__", "__imul__",
)
_DICT_MUTATORS = (
    "__setitem__", "__delitem__", "pop", "popitem", "clear", "update",
    "setdefault",
)
_SET_MUTATORS = (
    "add", "discard", "remove", "pop", "clear", "update",
    "difference_update", "intersection_update", "symmetric_difference_update",
    "__iand__", "__ior__", "__ixor__", "__isub__",
)


def _make_guarded(base: type, mutators: tuple, extra: tuple = ()):
    """A ``base`` subclass whose mutators assert the owner's lock."""

    class Guarded(base):
        _repro_owner = None
        _repro_lock_attr = None
        _repro_what = "?"

        def _repro_bind(self, owner, lock_attr, what):
            # plain object.__setattr__: these classes have no slots and
            # the owner's guarded __setattr__ does not apply to them
            self._repro_owner = owner
            self._repro_lock_attr = lock_attr
            self._repro_what = what
            return self

    def _checked(name):
        base_method = getattr(base, name)

        def method(self, *args, **kwargs):
            owner = self._repro_owner
            if owner is not None and sanitizer_active():
                _assert_held(owner, self._repro_lock_attr, self._repro_what)
            return base_method(self, *args, **kwargs)

        method.__name__ = name
        return method

    for name in mutators + extra:
        setattr(Guarded, name, _checked(name))
    Guarded.__name__ = f"Guarded{base.__name__.title()}"
    return Guarded


GuardedList = _make_guarded(list, _LIST_MUTATORS)
GuardedDict = _make_guarded(dict, _DICT_MUTATORS)
GuardedOrderedDict = _make_guarded(
    OrderedDict, _DICT_MUTATORS, ("move_to_end",)
)
GuardedSet = _make_guarded(set, _SET_MUTATORS)


def _wrap(value, owner, spec, field: str):
    what = f"{spec.cls_name}.{field} mutation"
    lock_attr = spec.lock_attr
    if type(value) is OrderedDict:
        return GuardedOrderedDict(value)._repro_bind(owner, lock_attr, what)
    if type(value) is dict:
        return GuardedDict(value)._repro_bind(owner, lock_attr, what)
    if type(value) is list:
        return GuardedList(value)._repro_bind(owner, lock_attr, what)
    if type(value) is set:
        return GuardedSet(value)._repro_bind(owner, lock_attr, what)
    return value


def instrument(instance, spec) -> None:
    """Wrap an instance's registered container fields (called by the
    ``@shared_state`` init hook once ``__init__`` returns)."""
    for field in spec.fields:
        try:
            value = getattr(instance, field)
        except AttributeError:
            continue  # field assigned lazily; the setattr hook wraps it
        wrapped = _wrap(value, instance, spec, field)
        if wrapped is not value:
            object.__setattr__(instance, field, wrapped)


# -- snapshot freezing --------------------------------------------------


class FrozenRows(list):
    """A row list handed to a snapshot: iteration/indexing unchanged,
    in-place mutation raises.  Binary ``+`` still yields a plain
    (mutable) list, so the rebind idiom ``self.rows = self.rows + new``
    keeps working — that idiom is exactly what freezing enforces."""

    __slots__ = ()

    def _frozen(self, *args, **kwargs):
        raise SanitizerError(
            "snapshot-frozen rows mutated in place; rebind instead "
            "(rows = rows + new)"
        )

    append = extend = insert = remove = pop = clear = _frozen
    sort = reverse = __setitem__ = __delitem__ = _frozen
    __iadd__ = __imul__ = _frozen


def freeze_rows(rows: list) -> list:
    """Freeze a row list at a snapshot boundary (no-op when the
    sanitizer is inactive, identity for already-frozen lists)."""
    if not sanitizer_active() or isinstance(rows, FrozenRows):
        return rows
    return FrozenRows(rows)


def freeze_array(arr):
    """Clear a numpy array's writeable flag at a snapshot boundary
    (no-op when inactive; ``.copy()`` of a frozen array is writable, so
    copy-on-write paths are untouched)."""
    if arr is not None and sanitizer_active():
        try:
            arr.flags.writeable = False
        except (AttributeError, ValueError):
            pass  # not an ndarray, or a view that cannot be locked
    return arr
