"""Baseline handling for ``repro lint``.

The baseline is a committed JSON file of grandfathered finding keys.
Keys are line-number-free (``rule:path:scope:detail``), so unrelated
edits above a grandfathered site don't churn the file.  The shipped
baseline is **empty by policy** for ``src/repro/engine/`` — every true
positive there was fixed, not baselined — and ``--strict`` additionally
fails if the baseline lists keys that no longer fire (so it can only
shrink).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["apply_baseline", "load_baseline", "write_baseline"]

DEFAULT_BASELINE = "lint-baseline.json"


def load_baseline(path) -> set[str]:
    """Load grandfathered keys; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return set()
    data = json.loads(p.read_text(encoding="utf-8"))
    if isinstance(data, dict):
        keys = data.get("findings", [])
    else:
        keys = data
    return {str(k) for k in keys}


def write_baseline(path, findings) -> None:
    """Write the current findings as the new baseline (``--update``)."""
    keys = sorted({f.key for f in findings})
    payload = {
        "comment": (
            "Grandfathered repro-lint findings. Keys are "
            "rule:path:scope:detail (no line numbers). Policy: this "
            "file only shrinks; new findings are fixed, not added."
        ),
        "findings": keys,
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def apply_baseline(findings, baseline: set[str]):
    """Split findings into (new, grandfathered, stale-baseline-keys)."""
    fresh = [f for f in findings if f.key not in baseline]
    grandfathered = [f for f in findings if f.key in baseline]
    live_keys = {f.key for f in findings}
    stale = sorted(baseline - live_keys)
    return fresh, grandfathered, stale
