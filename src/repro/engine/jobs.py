"""Batch job payloads: parsing, validation, and execution.

One job payload — the JSON object ``repro batch`` reads from a file and
``repro serve`` reads off a socket — may carry any of:

* ``"pairs"``: a list of two-element lists of bag encodings
  (:mod:`repro.io`) — consistency of each pair, plus a witness when
  requested;
* ``"collections"``: a list of collection encodings
  (``{"bags": [...]}``) — the GCPB decision for each;
* ``"suites"``: a list of ``[name, size, seed]`` specs resolved via
  :mod:`repro.workloads.suites`.

:func:`parse_jobs` validates the whole payload up front and raises
:class:`JobError` — a one-line, structured message (``bad pair entry:
...``), never a traceback — so both surfaces can map malformed input to
exit code 2 / an ``{"ok": false}`` response uniformly.  Value-equal
bags are interned at parse time; with the content-addressed store this
is an object-count optimization, not a correctness requirement — the
store would collapse their entries anyway.

:func:`run_jobs` executes a parsed payload against one engine and
returns the report dict (per-job results + the engine's cache
statistics + the store's hit-rate/size stats).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .. import io as repro_io
from ..core.bags import Bag
from ..errors import ReproError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

# Per-section latency (pairs / collections / suites): how a mixed batch
# splits its time across job kinds.
_SECTION_HISTOGRAMS = {
    section: obs_metrics.REGISTRY.histogram(
        "repro_jobs_section_seconds", {"section": section}
    )
    for section in ("pairs", "collections", "suites")
}

__all__ = ["BatchJobs", "JobError", "parse_jobs", "parse_jobs_text", "run_jobs"]

JOB_KEYS = ("pairs", "collections", "suites")


class JobError(ReproError):
    """A malformed batch job payload (one structured line, no traceback)."""


@contextmanager
def _section(name: str, count: int):
    """Time one report section into its histogram and, when a request
    trace is in flight, attach the matching ``jobs.<section>`` span."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        _SECTION_HISTOGRAMS[name].record(elapsed)
        tr = obs_trace.current()
        if tr is not None:
            tr.add_span("jobs." + name, start, elapsed, n=count)


@dataclass
class BatchJobs:
    """A validated batch payload, bags decoded and interned."""

    pairs: list[tuple[Bag, Bag]] = field(default_factory=list)
    collections: list[list[Bag]] = field(default_factory=list)
    suites: list[tuple[str, int, int]] = field(default_factory=list)

    @property
    def n_jobs(self) -> int:
        return len(self.pairs) + len(self.collections) + len(self.suites)


def parse_jobs_text(text: str) -> BatchJobs:
    """Parse a raw JSON string (file contents, socket line) into a
    validated :class:`BatchJobs`; raises :class:`JobError` on any
    malformation, including invalid JSON."""
    import json

    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise JobError(f"invalid JSON in jobs payload: {exc}") from exc
    return parse_jobs(payload)


def parse_jobs(payload: object) -> BatchJobs:
    """Validate a decoded jobs object; raises :class:`JobError` with a
    structured one-line message naming the offending entry."""
    if not isinstance(payload, dict):
        raise JobError("batch file must be a JSON object")
    unknown = set(payload) - set(JOB_KEYS)
    if unknown:
        raise JobError(f"unknown batch job keys: {sorted(unknown)}")

    interned: dict[Bag, Bag] = {}

    def load_bag(encoded: object) -> Bag:
        if isinstance(encoded, Bag):
            # wire-decoded frames carry live Bag objects (already
            # fingerprint-seeded); intern them like dict encodings
            return interned.setdefault(encoded, encoded)
        bag = repro_io.bag_from_dict(encoded)  # raises SchemaError
        return interned.setdefault(bag, bag)

    jobs = BatchJobs()
    for i, entry in enumerate(payload.get("pairs") or []):
        try:
            left, right = entry
            jobs.pairs.append((load_bag(left), load_bag(right)))
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            raise JobError(f"bad pair entry: #{i}: {exc}") from exc
    for i, entry in enumerate(payload.get("collections") or []):
        try:
            jobs.collections.append(
                [load_bag(encoded) for encoded in entry["bags"]]
            )
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            raise JobError(f"bad collection entry: #{i}: {exc}") from exc
    for i, spec in enumerate(payload.get("suites") or []):
        try:
            name, size, seed = spec
        except (TypeError, ValueError) as exc:
            raise JobError(
                f"bad suite spec: #{i}: expected [name, size, seed], "
                f"got {spec!r}"
            ) from exc
        if not isinstance(name, str) or isinstance(size, bool) \
                or isinstance(seed, bool) or not isinstance(size, int) \
                or not isinstance(seed, int):
            raise JobError(
                f"bad suite spec: #{i}: expected [name, size, seed] with a "
                f"string name and integer size/seed, got {spec!r}"
            )
        jobs.suites.append((name, size, seed))
    return jobs


def run_jobs(
    jobs: BatchJobs,
    engine,
    method: str = "auto",
    witnesses: bool = False,
    parallelism: int | None = None,
    backend: str | None = None,
) -> dict:
    """Run a validated payload through one engine; returns the report.

    The report mirrors the historical ``repro batch`` output —
    ``pairs`` / ``collections`` / ``suites`` sections only when the
    payload carried them, plus ``stats`` (the engine's counters) and
    ``store`` (hit rate and size of the verdict store).  Suite-building
    errors (unknown name, undersized instance) surface as
    :class:`JobError`.
    """
    from ..workloads.suites import run_suites

    report: dict = {}
    if jobs.pairs:
        with _section("pairs", len(jobs.pairs)):
            verdicts = engine.are_consistent_many(
                jobs.pairs, parallelism=parallelism, backend=backend
            )
            entries = [{"consistent": verdict} for verdict in verdicts]
            if witnesses:
                found = engine.witness_many(
                    jobs.pairs, parallelism=parallelism, backend=backend
                )
                for entry, witness in zip(entries, found):
                    if witness is not None:
                        entry["witness"] = repro_io.bag_to_dict(witness)
        report["pairs"] = entries
    if jobs.collections:
        with _section("collections", len(jobs.collections)):
            report["collections"] = [
                {"consistent": outcome.consistent, "method": outcome.method}
                for outcome in engine.global_check_many(
                    jobs.collections,
                    method=method,
                    parallelism=parallelism,
                    backend=backend,
                )
            ]
    if jobs.suites:
        try:
            with _section("suites", len(jobs.suites)):
                report["suites"] = [
                    result.as_dict()
                    for result in run_suites(
                        jobs.suites,
                        engine=engine,
                        method=method,
                        parallelism=parallelism,
                        backend=backend,
                    )
                ]
        except (KeyError, TypeError, ValueError) as exc:
            raise JobError(f"bad suite spec: {exc}") from exc
    report["stats"] = engine.stats.as_dict()
    report["store"] = engine.store.stats_dict()
    from . import columnar

    report["kernels"] = columnar.kernel_stats()
    return report
