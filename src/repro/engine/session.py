"""The :class:`Engine` facade: memoized, batched bag-consistency serving.

A production deployment answers many queries against a slowly-changing
population of bags: the same ledger pair is checked after every sync,
the same collection is audited under several methods, a dashboard asks
for witnesses the moment a check passes.  The seed recomputed each
query from scratch; the :class:`Engine` memoizes per *bag identity*:

* marginals and join buckets live on the bags themselves (see
  :mod:`repro.engine.index`), so they are shared across engines;
* pair-level results — consistency verdicts, witnesses, joins — and
  collection-level global checks are cached in the engine, keyed on
  ``id()`` of the participating bags (the engine pins a strong
  reference to every bag it has seen, so ids cannot be recycled while
  the cache lives).

Batched entry points (:meth:`are_consistent_many`,
:meth:`witness_many`, :meth:`global_check_many`) are the unit of the
high-throughput workloads in :mod:`repro.workloads.suites`, the
``repro batch`` CLI subcommand, and ``benchmarks/bench_engine.py``.

The memoization contract: bags are immutable, so every cached answer
stays valid forever; :meth:`clear` exists for bounding memory, not for
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.bags import Bag
from ..core.schema import Schema
from ..errors import InconsistentError
from ..lp.integer_feasibility import DEFAULT_NODE_BUDGET

__all__ = ["Engine", "EngineStats"]


@dataclass
class EngineStats:
    """Query/hit counters per cached operation (diagnostics and tests)."""

    consistency_queries: int = 0
    consistency_hits: int = 0
    witness_queries: int = 0
    witness_hits: int = 0
    join_queries: int = 0
    join_hits: int = 0
    global_queries: int = 0
    global_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "consistency_queries": self.consistency_queries,
            "consistency_hits": self.consistency_hits,
            "witness_queries": self.witness_queries,
            "witness_hits": self.witness_hits,
            "join_queries": self.join_queries,
            "join_hits": self.join_hits,
            "global_queries": self.global_queries,
            "global_hits": self.global_hits,
        }


class Engine:
    """A session-scoped cache over the consistency layer.

    ``node_budget`` bounds the exact integer search used by cyclic
    global checks (forwarded to the Theorem 4 dispatch).
    """

    def __init__(self, node_budget: int | None = DEFAULT_NODE_BUDGET) -> None:
        self.node_budget = node_budget
        self.stats = EngineStats()
        self._pinned: dict[int, Bag] = {}
        self._cache: dict[tuple, object] = {}

    # -- cache plumbing --------------------------------------------------

    def _pin(self, bag: Bag) -> int:
        key = id(bag)
        if key not in self._pinned:
            self._pinned[key] = bag
        return key

    def clear(self) -> None:
        """Drop every cached result and pinned bag (memory bound, not a
        correctness operation — see the module docstring)."""
        self._pinned.clear()
        self._cache.clear()
        self.stats = EngineStats()

    def __len__(self) -> int:
        """Number of cached results."""
        return len(self._cache)

    # -- single-query API ------------------------------------------------

    def marginal(self, bag: Bag, target: Schema) -> Bag:
        """R[Z] — memoized on the bag itself, exposed for symmetry."""
        return bag.marginal(target)

    def join(self, left: Bag, right: Bag) -> Bag:
        """The bag join, memoized per (left, right) identity pair."""
        self.stats.join_queries += 1
        key = ("join", self._pin(left), self._pin(right))
        cached = self._cache.get(key)
        if cached is None:
            cached = left.bag_join(right)
            self._cache[key] = cached
        else:
            self.stats.join_hits += 1
        return cached

    def are_consistent(self, left: Bag, right: Bag) -> bool:
        """Lemma 2(2), memoized.  Consistency is symmetric, so the key
        is unordered and both orientations share one entry."""
        self.stats.consistency_queries += 1
        a, b = self._pin(left), self._pin(right)
        key = ("consistent", a, b) if a <= b else ("consistent", b, a)
        cached = self._cache.get(key)
        if cached is None:
            from ..consistency.pairwise import are_consistent

            cached = are_consistent(left, right)
            self._cache[key] = cached
        else:
            self.stats.consistency_hits += 1
        return cached

    def witness(self, left: Bag, right: Bag, minimal: bool = False) -> Bag:
        """A Corollary 1 (or Corollary 4 minimal) witness, memoized per
        ordered pair; raises :class:`InconsistentError` exactly when the
        uncached pipeline would (the refusal is cached too)."""
        self.stats.witness_queries += 1
        key = ("witness", self._pin(left), self._pin(right), minimal)
        if key in self._cache:
            self.stats.witness_hits += 1
            cached = self._cache[key]
        else:
            from ..consistency.pairwise import consistency_witness
            from ..consistency.witness import minimal_pairwise_witness

            if not self.are_consistent(left, right):
                cached = None
            elif minimal:
                cached = minimal_pairwise_witness(left, right)
            else:
                cached = consistency_witness(left, right)
            self._cache[key] = cached
        if cached is None:
            raise InconsistentError(
                "bags are not consistent (no saturated flow in N(R, S))"
            )
        return cached

    def global_check(
        self, bags: Sequence[Bag], method: str = "auto"
    ):
        """The GCPB decision + witness for one collection, memoized on
        the tuple of bag identities; the pairwise phase routes through
        :meth:`are_consistent`, so shared pairs across collections are
        checked once per engine."""
        self.stats.global_queries += 1
        bags = list(bags)
        key = (
            "global",
            tuple(self._pin(bag) for bag in bags),
            method,
        )
        cached = self._cache.get(key)
        if cached is None:
            from ..consistency.global_ import global_witness

            cached = global_witness(
                bags,
                method=method,  # type: ignore[arg-type]
                node_budget=self.node_budget,
                pair_checker=self.are_consistent,
            )
            self._cache[key] = cached
        else:
            self.stats.global_hits += 1
        return cached

    # -- batched API -----------------------------------------------------

    def are_consistent_many(
        self, pairs: Iterable[tuple[Bag, Bag]]
    ) -> list[bool]:
        """Lemma 2(2) over a batch of pairs; one verdict per pair."""
        return [self.are_consistent(left, right) for left, right in pairs]

    def witness_many(
        self,
        pairs: Iterable[tuple[Bag, Bag]],
        minimal: bool = False,
    ) -> list[Bag | None]:
        """Witnesses for a batch of pairs: a witness bag per consistent
        pair, ``None`` per inconsistent one (a batch must not abort on
        the first inconsistent entry)."""
        out: list[Bag | None] = []
        for left, right in pairs:
            try:
                out.append(self.witness(left, right, minimal=minimal))
            except InconsistentError:
                out.append(None)
        return out

    def global_check_many(
        self,
        collections: Iterable[Sequence[Bag]],
        method: str = "auto",
    ) -> list:
        """GCPB over a batch of collections, sharing the pairwise cache
        (ledger audits re-use the same reference bags across many
        collections)."""
        return [
            self.global_check(collection, method=method)
            for collection in collections
        ]
