"""The :class:`Engine` facade over a content-addressed verdict store.

A production deployment answers many queries against a slowly-changing
population of bags: the same ledger pair is checked after every sync,
the same collection is audited under several methods, a dashboard asks
for witnesses the moment a check passes.  The seed recomputed each
query from scratch; PR 1 memoized per *bag identity*; since the
content-addressing refactor the engine memoizes per *bag value*:

* marginals and join buckets live on the bags themselves (see
  :mod:`repro.engine.index`), shared across value-equal bags through
  the fingerprint registry;
* pair-level results — consistency verdicts, witnesses, joins — and
  collection-level global checks live in a :class:`VerdictStore`,
  keyed on the **content fingerprints** of the participating bags
  (:mod:`repro.engine.fingerprint`), so two separately-constructed but
  value-equal bags share one entry — across calls, across engines
  handed the same store, and across ``repro serve`` connections.

The store is **bounded**: ``Engine(capacity=N)`` keeps at most N
results, evicting in LRU order.  :meth:`pin` exempts every entry
touching a bag's content from eviction until :meth:`unpin` (explicitly
pinned entries may push the store above capacity — that is the point
of pinning).  The default ``capacity=None`` preserves the unbounded
behaviour.  Pass ``store=`` to share one :class:`VerdictStore` between
several engines — each engine keeps its own :class:`EngineStats`, so
hit rates still describe each served workload.

:meth:`invalidate` drops every cached result touching one bag's
content — the primitive behind :class:`repro.engine.live.LiveEngine`,
whose mutable handles maintain their fingerprints incrementally.

Batched entry points (:meth:`are_consistent_many`,
:meth:`witness_many`, :meth:`global_check_many`) are the unit of the
high-throughput workloads in :mod:`repro.workloads.suites`, the
``repro batch`` / ``repro serve`` surfaces, and the benchmarks.  Each
accepts ``parallelism=N`` and ``backend=`` selecting an executor from
:mod:`repro.engine.executors`: ``serial``, ``thread`` (pool sharing
this process's store — best for cache-heavy workloads), or ``process``
(fingerprinted payloads shipped to worker processes, verdict deltas
merged back into the shared store — the only backend that scales the
CPU-bound global checks past the GIL).

The memoization contract: plain :class:`repro.core.bags.Bag` objects
are immutable and entries are pure functions of their fingerprints, so
a cached answer is dropped only for memory (eviction, :meth:`clear`,
:meth:`invalidate`) — it can never go stale.  That is also why the
store can outlive the process: ``store=`` accepts a
:class:`repro.store.PersistentVerdictStore`, which spills verdicts,
witnesses, and global results to sharded segment logs and answers
repeat traffic from disk after a restart (:meth:`flush` exposes its
write-behind flush through the engine).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..analysis.registry import requires_lock, shared_state
from ..core.bags import Bag
from ..core.schema import Schema
from ..errors import InconsistentError
from ..lp.integer_feasibility import DEFAULT_NODE_BUDGET
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from . import fingerprint

__all__ = ["Engine", "EngineStats", "VerdictStore"]

_MISS = object()

# Compute-latency histograms, recorded only on *miss* branches: the
# warm (all-hit) serve path pays zero telemetry here, which is how the
# bench_serve overhead gate stays within budget.  Cached handles so
# the hot path never touches the registry lock.
_COMPUTE_HISTOGRAMS = {
    op: obs_metrics.REGISTRY.histogram(
        "repro_engine_compute_seconds", {"op": op}
    )
    for op in ("marginal", "join", "consistent", "witness", "global")
}


def _observe_compute(op: str, start: float) -> None:
    """Record one miss-branch compute into the per-op histogram and,
    when a request trace is in flight, attach the matching span."""
    elapsed = time.perf_counter() - start
    _COMPUTE_HISTOGRAMS[op].record(elapsed)
    tr = obs_trace.current()
    if tr is not None:
        tr.add_span("engine." + op, start, elapsed)


@dataclass
class EngineStats:
    """Query/hit counters per cached operation (diagnostics and tests).

    External queries (what the caller asked) are counted separately
    from internal probes (pairwise checks issued by :meth:`Engine.witness`
    and the pairwise phase of :meth:`Engine.global_check`), so hit-rate
    reports reflect the served workload, not the engine's own plumbing.
    """

    consistency_queries: int = 0
    consistency_hits: int = 0
    internal_consistency_queries: int = 0
    internal_consistency_hits: int = 0
    marginal_queries: int = 0
    marginal_hits: int = 0
    witness_queries: int = 0
    witness_hits: int = 0
    join_queries: int = 0
    join_hits: int = 0
    global_queries: int = 0
    global_hits: int = 0
    evictions: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "consistency_queries": self.consistency_queries,
            "consistency_hits": self.consistency_hits,
            "internal_consistency_queries": self.internal_consistency_queries,
            "internal_consistency_hits": self.internal_consistency_hits,
            "marginal_queries": self.marginal_queries,
            "marginal_hits": self.marginal_hits,
            "witness_queries": self.witness_queries,
            "witness_hits": self.witness_hits,
            "join_queries": self.join_queries,
            "join_hits": self.join_hits,
            "global_queries": self.global_queries,
            "global_hits": self.global_hits,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


@shared_state(
    "_lock",
    "_cache", "_participants", "_fp_keys", "_pinned_fps",
    "hits", "misses", "evictions", "invalidations", "merged",
    tier="engine",
)
class VerdictStore:
    """A bounded, content-addressed result store.

    Keys are tuples of an operation tag plus the participating bags'
    content fingerprints; values are whatever the engine cached (bool
    verdicts, witness bags, ``None`` refusals, global results).  The
    store is lock-protected and deliberately engine-agnostic, so one
    store can back many :class:`Engine` instances (``repro serve``
    backs every connection with one) and absorb merged deltas from
    worker processes.

    Bookkeeping: every key records its participant fingerprints and a
    reverse index maps each fingerprint to the keys touching it, making
    per-content invalidation and pin exemption O(entries touched), not
    O(store).
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._cache: OrderedDict[tuple, object] = OrderedDict()
        self._participants: dict[tuple, tuple[int, ...]] = {}
        self._fp_keys: dict[int, set[tuple]] = {}
        self._pinned_fps: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.merged = 0

    # -- primitive operations -------------------------------------------

    def get(self, key: tuple):
        """The cached value (refreshing recency) or the ``_MISS``
        sentinel exposed as ``VerdictStore.MISS``."""
        with self._lock:
            value = self._cache.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
            else:
                self.hits += 1
                self._cache.move_to_end(key)
            return value

    MISS = _MISS

    def contains(self, key: tuple) -> bool:
        """Presence test without touching recency or hit counters (the
        process executor's pre-filter)."""
        with self._lock:
            return key in self._cache

    def put(self, key: tuple, value, fps: Sequence[int]) -> int:
        """Insert one result; returns the number of entries evicted to
        respect ``capacity``."""
        with self._lock:
            if key in self._cache:
                # A concurrent worker resolved the same miss first; keep
                # one entry (results are deterministic functions of the
                # fingerprints) and refresh its recency.
                self._cache[key] = value
                self._cache.move_to_end(key)
                return 0
            for fp in fps:
                self._fp_keys.setdefault(fp, set()).add(key)
            self._cache[key] = value
            self._participants[key] = tuple(fps)
            return self._evict(protect=key)

    @requires_lock("_lock")
    def _remove_key(self, key: tuple) -> None:
        self._cache.pop(key, None)
        for fp in self._participants.pop(key, ()):
            keys = self._fp_keys.get(fp)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._fp_keys[fp]

    @requires_lock("_lock")
    def _evict(self, protect: tuple | None = None) -> int:
        if self.capacity is None or len(self._cache) <= self.capacity:
            return 0
        evicted = 0
        for key in list(self._cache):
            if len(self._cache) <= self.capacity:
                break
            if key == protect:
                # Never evict the entry being inserted: when pinned
                # entries fill the capacity, the store overflows rather
                # than silently refusing to serve unpinned work.
                continue
            if any(fp in self._pinned_fps for fp in self._participants[key]):
                continue  # entries touching pinned content are exempt
            self._remove_key(key)
            evicted += 1
        self.evictions += evicted
        return evicted

    def pin_fp(self, fp: int) -> None:
        with self._lock:
            self._pinned_fps.add(fp)

    def unpin_fp(self, fp: int) -> int:
        with self._lock:
            self._pinned_fps.discard(fp)
            return self._evict()

    def invalidate_fp(self, fp: int) -> int:
        """Drop every entry whose participants include ``fp``; returns
        the number dropped."""
        with self._lock:
            keys = list(self._fp_keys.get(fp, ()))
            for key in keys:
                self._remove_key(key)
            self._pinned_fps.discard(fp)
            self.invalidations += len(keys)
            return len(keys)

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()
            self._participants.clear()
            self._fp_keys.clear()
            self._pinned_fps.clear()

    def __len__(self) -> int:
        return len(self._cache)

    # -- bulk transfer (the process executor's merge path) ---------------

    def export(self) -> list[tuple[tuple, object, tuple[int, ...]]]:
        """Every entry as ``(key, value, participant_fps)`` — what a
        worker process ships back to the parent."""
        with self._lock:
            return [
                (key, value, self._participants[key])
                for key, value in self._cache.items()
            ]

    def merge(
        self, entries: Iterable[tuple[tuple, object, tuple[int, ...]]]
    ) -> int:
        """Absorb exported entries (idempotent — fingerprint keys are
        process-independent); returns the number merged."""
        count = 0
        for key, value, fps in entries:
            self.put(key, value, fps)
            count += 1
        with self._lock:
            self.merged += count
        return count

    def stats_dict(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._cache),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "merged": self.merged,
                "pinned": len(self._pinned_fps),
            }


@shared_state("_lock", "stats", tier="engine")
class Engine:
    """A session facade over a content-addressed :class:`VerdictStore`.

    ``node_budget`` bounds the exact integer search used by cyclic
    global checks (forwarded to the Theorem 4 dispatch).  ``capacity``
    bounds the number of stored results (LRU eviction; ``None`` means
    unbounded).  ``store`` shares an existing :class:`VerdictStore`
    between engines (``capacity`` must then be left unset — the store
    already owns the bound).
    """

    def __init__(
        self,
        node_budget: int | None = DEFAULT_NODE_BUDGET,
        capacity: int | None = None,
        store: VerdictStore | None = None,
    ) -> None:
        if store is not None and capacity is not None:
            raise ValueError(
                "pass capacity= either to the Engine or to the shared "
                "VerdictStore, not both"
            )
        self.node_budget = node_budget
        self.store = store if store is not None else VerdictStore(capacity)
        self.stats = EngineStats()
        self._lock = threading.RLock()

    @property
    def capacity(self) -> int | None:
        return self.store.capacity

    # -- lifecycle -------------------------------------------------------

    def pin(self, bag: Bag) -> None:
        """Exempt every store entry touching ``bag``'s content from LRU
        eviction (current and future) until :meth:`unpin`.  Pinned
        entries still count toward ``capacity`` but are skipped by the
        evictor, so heavy pinning can hold the store above it."""
        self.store.pin_fp(fingerprint.of_bag(bag))

    def unpin(self, bag: Bag) -> None:
        """Make the entries touching ``bag``'s content ordinary LRU
        citizens again."""
        evicted = self.store.unpin_fp(fingerprint.of_bag(bag))
        with self._lock:
            self.stats.evictions += evicted

    def invalidate(self, bag: Bag) -> int:
        """Drop every stored result touching ``bag``'s content — pair
        verdicts, witnesses, joins, marginals, and global results it
        participates in — and release its pin.  Returns the number of
        entries dropped.  This is the :class:`LiveEngine` update
        primitive; for immutable bags it is only ever a memory lever
        (content-addressed entries cannot go stale)."""
        dropped = self.store.invalidate_fp(fingerprint.of_bag(bag))
        with self._lock:
            self.stats.invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Drop every stored result and pin, and reset the counters.
        With a shared store this clears it for every engine using it."""
        self.store.clear()
        with self._lock:
            self.stats = EngineStats()

    def flush(self) -> int:
        """Flush a persistent backing store's write-behind buffers to
        disk (:class:`repro.store.PersistentVerdictStore`); a no-op 0
        for the in-memory store.  Returns the operations written."""
        flush = getattr(self.store, "flush", None)
        return flush() if flush is not None else 0

    def __len__(self) -> int:
        """Number of stored results (shared-store entries included)."""
        return len(self.store)

    def kernel_stats(self) -> dict:
        """Columnar-vs-row kernel dispatch counters plus whether the
        numpy backend is active (:func:`repro.engine.columnar.kernel_stats`).

        Process-wide, not per-engine: the counters live at the kernel
        layer beneath every engine, so a regression to the slow path
        shows up here no matter which engine drove the work.  Reported
        as the ``kernels`` section of ``repro batch`` reports and
        ``repro serve`` stats."""
        from . import columnar

        return columnar.kernel_stats()

    # -- cache plumbing --------------------------------------------------

    def _get(self, key: tuple):
        return self.store.get(key)

    def _put(self, key: tuple, value, fps: Sequence[int]) -> None:
        evicted = self.store.put(key, value, fps)
        if evicted:
            with self._lock:
                self.stats.evictions += evicted

    # -- single-query API ------------------------------------------------

    def marginal(self, bag: Bag, target: Schema) -> Bag:
        """R[Z] — stored like every other entry point; the bag-level
        :class:`~repro.engine.index.BagIndex` memo still applies
        beneath, so a miss after eviction recomputes nothing, it only
        re-registers the entry."""
        with self._lock:
            self.stats.marginal_queries += 1
        fp = fingerprint.of_bag(bag)
        key = ("marginal", fp, target.attrs)
        value = self._get(key)
        if value is _MISS:
            start = time.perf_counter()
            value = bag.marginal(target)
            _observe_compute("marginal", start)
            self._put(key, value, (fp,))
        else:
            with self._lock:
                self.stats.marginal_hits += 1
        return value

    def join(self, left: Bag, right: Bag) -> Bag:
        """The bag join, memoized per (left, right) content pair."""
        with self._lock:
            self.stats.join_queries += 1
        lfp, rfp = fingerprint.of_bag(left), fingerprint.of_bag(right)
        key = ("join", lfp, rfp)
        value = self._get(key)
        if value is _MISS:
            start = time.perf_counter()
            value = left.bag_join(right)
            _observe_compute("join", start)
            self._put(key, value, (lfp, rfp))
        else:
            with self._lock:
                self.stats.join_hits += 1
        return value

    def _consistent(self, left: Bag, right: Bag, internal: bool) -> bool:
        """Lemma 2(2), memoized.  Consistency is symmetric, so the key
        is unordered and both orientations share one entry."""
        stats = self.stats
        with self._lock:
            if internal:
                stats.internal_consistency_queries += 1
            else:
                stats.consistency_queries += 1
        a, b = fingerprint.of_bag(left), fingerprint.of_bag(right)
        key = ("consistent", a, b) if a <= b else ("consistent", b, a)
        value = self._get(key)
        if value is _MISS:
            from ..consistency.pairwise import are_consistent

            start = time.perf_counter()
            value = are_consistent(left, right)
            _observe_compute("consistent", start)
            self._put(key, value, (a, b))
        else:
            with self._lock:
                if internal:
                    stats.internal_consistency_hits += 1
                else:
                    stats.consistency_hits += 1
        return value

    def are_consistent(self, left: Bag, right: Bag) -> bool:
        """Lemma 2(2), memoized (the external entry point; internal
        probes from :meth:`witness` / :meth:`global_check` share the
        store but are counted separately)."""
        return self._consistent(left, right, internal=False)

    def _internal_pair_checker(self, left: Bag, right: Bag) -> bool:
        return self._consistent(left, right, internal=True)

    def witness(self, left: Bag, right: Bag, minimal: bool = False) -> Bag:
        """A Corollary 1 (or Corollary 4 minimal) witness, memoized per
        ordered content pair; raises :class:`InconsistentError` exactly
        when the uncached pipeline would (the refusal is cached too)."""
        with self._lock:
            self.stats.witness_queries += 1
        lfp, rfp = fingerprint.of_bag(left), fingerprint.of_bag(right)
        key = ("witness", lfp, rfp, minimal)
        cached = self._get(key)
        if cached is not _MISS:
            with self._lock:
                self.stats.witness_hits += 1
        else:
            from ..consistency.pairwise import consistency_witness
            from ..consistency.witness import minimal_pairwise_witness

            start = time.perf_counter()
            if not self._consistent(left, right, internal=True):
                cached = None
            elif minimal:
                cached = minimal_pairwise_witness(left, right)
            else:
                cached = consistency_witness(left, right)
            _observe_compute("witness", start)
            self._put(key, cached, (lfp, rfp))
        if cached is None:
            raise InconsistentError(
                "bags are not consistent (no saturated flow in N(R, S))"
            )
        return cached

    def global_check(
        self,
        bags: Sequence[Bag],
        method: str = "auto",
        *,
        _pair_checker: Callable[[Bag, Bag], bool] | None = None,
        _acyclic_hint: bool | None = None,
    ):
        """The GCPB decision + witness for one collection, memoized on
        the tuple of bag fingerprints; the pairwise phase routes through
        the engine's cached consistency test (counted as internal
        probes), so shared pairs across collections are checked once per
        store.

        ``_pair_checker`` overrides that routing and is deliberately
        private: it is NOT part of the cache key, so a caller must only
        pass a checker that agrees with the exact Lemma 2(2) test on
        these exact bag contents (the :class:`LiveEngine` passes its
        incrementally-maintained verdicts, which do).  ``_acyclic_hint``
        forwards a caller's already-validated schema acyclicity (the
        live engine caches it per handle set) so a miss does not re-run
        the GYO reduction; like the pair checker it must agree with the
        exact test on these bags' schemas."""
        with self._lock:
            self.stats.global_queries += 1
        bags = list(bags)
        fps = fingerprint.of_collection(bags)
        key = ("global", fps, method)
        cached = self._get(key)
        if cached is _MISS:
            from ..consistency.global_ import global_witness

            start = time.perf_counter()
            cached = global_witness(
                bags,
                method=method,  # type: ignore[arg-type]
                node_budget=self.node_budget,
                pair_checker=_pair_checker or self._internal_pair_checker,
                acyclic=_acyclic_hint,
            )
            _observe_compute("global", start)
            self._put(key, cached, fps)
        else:
            with self._lock:
                self.stats.global_hits += 1
        return cached

    # -- batched API -----------------------------------------------------

    def _run_batch(
        self,
        fn,
        items: list,
        parallelism: int | None,
        backend: str | None,
    ) -> list:
        """Apply ``fn`` to every item through the resolved in-process
        executor (``serial`` or ``thread``; ``process`` never reaches
        here — the batched entry points route it through
        :func:`repro.engine.executors.run_process_batch`)."""
        from .executors import resolve_executor

        executor = resolve_executor(backend, parallelism, len(items))
        return executor.run(fn, items)

    @staticmethod
    def _wants_process(backend: str | None) -> bool:
        from .executors import is_process_backend

        return is_process_backend(backend)

    def are_consistent_many(
        self,
        pairs: Iterable[tuple[Bag, Bag]],
        parallelism: int | None = None,
        backend: str | None = None,
    ) -> list[bool]:
        """Lemma 2(2) over a batch of pairs; one verdict per pair."""
        pairs = list(pairs)
        if self._wants_process(backend):
            from .executors import run_process_batch

            return run_process_batch(self, "consistent", pairs, parallelism)
        return self._run_batch(
            lambda pair: self.are_consistent(pair[0], pair[1]),
            pairs,
            parallelism,
            backend,
        )

    def witness_many(
        self,
        pairs: Iterable[tuple[Bag, Bag]],
        minimal: bool = False,
        parallelism: int | None = None,
        backend: str | None = None,
    ) -> list[Bag | None]:
        """Witnesses for a batch of pairs: a witness bag per consistent
        pair, ``None`` per inconsistent one (a batch must not abort on
        the first inconsistent entry)."""
        pairs = list(pairs)
        if self._wants_process(backend):
            from .executors import run_process_batch

            return run_process_batch(
                self, "witness", pairs, parallelism, minimal=minimal
            )

        def one(pair: tuple[Bag, Bag]) -> Bag | None:
            try:
                return self.witness(pair[0], pair[1], minimal=minimal)
            except InconsistentError:
                return None

        return self._run_batch(one, pairs, parallelism, backend)

    def global_check_many(
        self,
        collections: Iterable[Sequence[Bag]],
        method: str = "auto",
        parallelism: int | None = None,
        backend: str | None = None,
    ) -> list:
        """GCPB over a batch of collections, sharing the pairwise store
        (ledger audits re-use the same reference bags across many
        collections).  ``backend="process"`` is the CPU-bound scaling
        path: misses fan out over worker processes and their verdict
        deltas merge back before a local (all-hit) replay."""
        collections = [list(collection) for collection in collections]
        if self._wants_process(backend):
            from .executors import run_process_batch

            return run_process_batch(
                self, "global", collections, parallelism, method=method
            )
        return self._run_batch(
            lambda collection: self.global_check(collection, method=method),
            collections,
            parallelism,
            backend,
        )

