"""The :class:`Engine` facade: memoized, batched bag-consistency serving.

A production deployment answers many queries against a slowly-changing
population of bags: the same ledger pair is checked after every sync,
the same collection is audited under several methods, a dashboard asks
for witnesses the moment a check passes.  The seed recomputed each
query from scratch; the :class:`Engine` memoizes per *bag identity*:

* marginals and join buckets live on the bags themselves (see
  :mod:`repro.engine.index`), so they are shared across engines;
* pair-level results — consistency verdicts, witnesses, joins — and
  collection-level global checks are cached in the engine, keyed on
  ``id()`` of the participating bags (the engine pins a strong
  reference to every bag that participates in a live cache entry, so
  ids cannot be recycled while the entry lives).

The cache is **bounded**: ``Engine(capacity=N)`` keeps at most N
results, evicting in LRU order; evicting the last entry touching a bag
also drops its pin.  :meth:`pin` exempts every entry touching a bag
from eviction until :meth:`unpin` (explicitly pinned entries may push
the cache above capacity — that is the point of pinning).  The default
``capacity=None`` preserves the unbounded PR-1 behaviour.

:meth:`invalidate` drops every cached result touching one bag — the
primitive behind :class:`repro.engine.live.LiveEngine`, which maintains
*mutable* bag handles and invalidates exactly the entries a streamed
update touches.

Batched entry points (:meth:`are_consistent_many`,
:meth:`witness_many`, :meth:`global_check_many`) are the unit of the
high-throughput workloads in :mod:`repro.workloads.suites`, the
``repro batch`` CLI subcommand, and ``benchmarks/bench_engine.py``.
Each accepts ``parallelism=N`` to fan the batch over a thread pool (the
kernels are pure; the cache is lock-protected, so concurrent workers
share hits and at worst duplicate a miss).

The memoization contract: plain :class:`repro.core.bags.Bag` objects
are immutable, so a cached answer is dropped only for memory (eviction,
:meth:`clear`) or because a :class:`LiveEngine` replaced the bag behind
it (:meth:`invalidate`) — never because it went stale on its own.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..core.bags import Bag
from ..core.schema import Schema
from ..errors import InconsistentError
from ..lp.integer_feasibility import DEFAULT_NODE_BUDGET

__all__ = ["Engine", "EngineStats"]

_MISS = object()


@dataclass
class EngineStats:
    """Query/hit counters per cached operation (diagnostics and tests).

    External queries (what the caller asked) are counted separately
    from internal probes (pairwise checks issued by :meth:`Engine.witness`
    and the pairwise phase of :meth:`Engine.global_check`), so hit-rate
    reports reflect the served workload, not the engine's own plumbing.
    """

    consistency_queries: int = 0
    consistency_hits: int = 0
    internal_consistency_queries: int = 0
    internal_consistency_hits: int = 0
    marginal_queries: int = 0
    marginal_hits: int = 0
    witness_queries: int = 0
    witness_hits: int = 0
    join_queries: int = 0
    join_hits: int = 0
    global_queries: int = 0
    global_hits: int = 0
    evictions: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "consistency_queries": self.consistency_queries,
            "consistency_hits": self.consistency_hits,
            "internal_consistency_queries": self.internal_consistency_queries,
            "internal_consistency_hits": self.internal_consistency_hits,
            "marginal_queries": self.marginal_queries,
            "marginal_hits": self.marginal_hits,
            "witness_queries": self.witness_queries,
            "witness_hits": self.witness_hits,
            "join_queries": self.join_queries,
            "join_hits": self.join_hits,
            "global_queries": self.global_queries,
            "global_hits": self.global_hits,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class Engine:
    """A session-scoped cache over the consistency layer.

    ``node_budget`` bounds the exact integer search used by cyclic
    global checks (forwarded to the Theorem 4 dispatch).  ``capacity``
    bounds the number of cached results (LRU eviction; ``None`` means
    unbounded).
    """

    def __init__(
        self,
        node_budget: int | None = DEFAULT_NODE_BUDGET,
        capacity: int | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.node_budget = node_budget
        self.capacity = capacity
        self.stats = EngineStats()
        self._lock = threading.RLock()
        # bag id -> bag, for every bag referenced by a live cache entry
        # or explicitly pinned; the strong reference keeps ids unique.
        self._pinned: dict[int, Bag] = {}
        self._explicit: set[int] = set()
        self._cache: OrderedDict[tuple, object] = OrderedDict()
        # cache key -> ids of the participating bags, and the reverse
        # index bag id -> keys; together they make per-bag invalidation
        # and pin refcounting O(entries touched), not O(cache).
        self._participants: dict[tuple, tuple[int, ...]] = {}
        self._bag_keys: dict[int, set[tuple]] = {}

    # -- cache plumbing --------------------------------------------------

    def _cache_get(self, key: tuple):
        with self._lock:
            value = self._cache.get(key, _MISS)
            if value is not _MISS:
                self._cache.move_to_end(key)
            return value

    def _cache_put(self, key: tuple, value, bags: Sequence[Bag]) -> None:
        with self._lock:
            if key in self._cache:
                # A concurrent worker resolved the same miss first; keep
                # one entry (the results are equal — the kernels are
                # deterministic) and refresh its recency.
                self._cache[key] = value
                self._cache.move_to_end(key)
                return
            ids = tuple(id(bag) for bag in bags)
            for bag_id, bag in zip(ids, bags):
                self._pinned.setdefault(bag_id, bag)
                self._bag_keys.setdefault(bag_id, set()).add(key)
            self._cache[key] = value
            self._participants[key] = ids
            self._evict(protect=key)

    def _remove_key(self, key: tuple) -> None:
        self._cache.pop(key, None)
        for bag_id in self._participants.pop(key, ()):
            keys = self._bag_keys.get(bag_id)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._bag_keys[bag_id]
                    if bag_id not in self._explicit:
                        self._pinned.pop(bag_id, None)

    def _evict(self, protect: tuple | None = None) -> None:
        if self.capacity is None or len(self._cache) <= self.capacity:
            return
        for key in list(self._cache):
            if len(self._cache) <= self.capacity:
                break
            if key == protect:
                # Never evict the entry being inserted: when pinned
                # entries fill the capacity, the cache overflows rather
                # than silently refusing to serve unpinned work.
                continue
            if any(b in self._explicit for b in self._participants[key]):
                continue  # entries touching a pinned bag are exempt
            self._remove_key(key)
            self.stats.evictions += 1

    def pin(self, bag: Bag) -> None:
        """Exempt every cache entry touching ``bag`` from LRU eviction
        (current and future) and keep the bag alive until :meth:`unpin`.
        Pinned entries still count toward ``capacity`` but are skipped
        by the evictor, so heavy pinning can hold the cache above it."""
        with self._lock:
            self._explicit.add(id(bag))
            self._pinned[id(bag)] = bag

    def unpin(self, bag: Bag) -> None:
        """Make ``bag``'s entries ordinary LRU citizens again."""
        with self._lock:
            bag_id = id(bag)
            self._explicit.discard(bag_id)
            if not self._bag_keys.get(bag_id):
                self._pinned.pop(bag_id, None)
            self._evict()

    def invalidate(self, bag: Bag) -> int:
        """Drop every cached result touching ``bag`` — pair verdicts,
        witnesses, joins, marginals, and global results it participates
        in — and release its pin.  Returns the number of entries
        dropped.  This is the :class:`LiveEngine` update primitive; for
        immutable bags it is never needed for correctness."""
        with self._lock:
            keys = list(self._bag_keys.get(id(bag), ()))
            for key in keys:
                self._remove_key(key)
            self._explicit.discard(id(bag))
            self._pinned.pop(id(bag), None)
            self.stats.invalidations += len(keys)
            return len(keys)

    def clear(self) -> None:
        """Drop every cached result, pinned bag (explicit pins
        included), and counter."""
        with self._lock:
            self._pinned.clear()
            self._explicit.clear()
            self._cache.clear()
            self._participants.clear()
            self._bag_keys.clear()
            self.stats = EngineStats()

    def __len__(self) -> int:
        """Number of cached results."""
        return len(self._cache)

    # -- single-query API ------------------------------------------------

    def marginal(self, bag: Bag, target: Schema) -> Bag:
        """R[Z] — cached (and the bag pinned) like every other entry
        point; the bag-level :class:`~repro.engine.index.BagIndex` memo
        still applies beneath, so a miss after eviction recomputes
        nothing, it only re-registers the entry."""
        with self._lock:
            self.stats.marginal_queries += 1
        key = ("marginal", id(bag), target.attrs)
        value = self._cache_get(key)
        if value is _MISS:
            value = bag.marginal(target)
            self._cache_put(key, value, (bag,))
        else:
            with self._lock:
                self.stats.marginal_hits += 1
        return value

    def join(self, left: Bag, right: Bag) -> Bag:
        """The bag join, memoized per (left, right) identity pair."""
        with self._lock:
            self.stats.join_queries += 1
        key = ("join", id(left), id(right))
        value = self._cache_get(key)
        if value is _MISS:
            value = left.bag_join(right)
            self._cache_put(key, value, (left, right))
        else:
            with self._lock:
                self.stats.join_hits += 1
        return value

    def _consistent(self, left: Bag, right: Bag, internal: bool) -> bool:
        """Lemma 2(2), memoized.  Consistency is symmetric, so the key
        is unordered and both orientations share one entry."""
        stats = self.stats
        with self._lock:
            if internal:
                stats.internal_consistency_queries += 1
            else:
                stats.consistency_queries += 1
        a, b = id(left), id(right)
        key = ("consistent", a, b) if a <= b else ("consistent", b, a)
        value = self._cache_get(key)
        if value is _MISS:
            from ..consistency.pairwise import are_consistent

            value = are_consistent(left, right)
            self._cache_put(key, value, (left, right))
        else:
            with self._lock:
                if internal:
                    stats.internal_consistency_hits += 1
                else:
                    stats.consistency_hits += 1
        return value

    def are_consistent(self, left: Bag, right: Bag) -> bool:
        """Lemma 2(2), memoized (the external entry point; internal
        probes from :meth:`witness` / :meth:`global_check` share the
        cache but are counted separately)."""
        return self._consistent(left, right, internal=False)

    def _internal_pair_checker(self, left: Bag, right: Bag) -> bool:
        return self._consistent(left, right, internal=True)

    def witness(self, left: Bag, right: Bag, minimal: bool = False) -> Bag:
        """A Corollary 1 (or Corollary 4 minimal) witness, memoized per
        ordered pair; raises :class:`InconsistentError` exactly when the
        uncached pipeline would (the refusal is cached too)."""
        with self._lock:
            self.stats.witness_queries += 1
        key = ("witness", id(left), id(right), minimal)
        cached = self._cache_get(key)
        if cached is not _MISS:
            with self._lock:
                self.stats.witness_hits += 1
        else:
            from ..consistency.pairwise import consistency_witness
            from ..consistency.witness import minimal_pairwise_witness

            if not self._consistent(left, right, internal=True):
                cached = None
            elif minimal:
                cached = minimal_pairwise_witness(left, right)
            else:
                cached = consistency_witness(left, right)
            self._cache_put(key, cached, (left, right))
        if cached is None:
            raise InconsistentError(
                "bags are not consistent (no saturated flow in N(R, S))"
            )
        return cached

    def global_check(
        self,
        bags: Sequence[Bag],
        method: str = "auto",
        *,
        _pair_checker: Callable[[Bag, Bag], bool] | None = None,
    ):
        """The GCPB decision + witness for one collection, memoized on
        the tuple of bag identities; the pairwise phase routes through
        the engine's cached consistency test (counted as internal
        probes), so shared pairs across collections are checked once per
        engine.

        ``_pair_checker`` overrides that routing and is deliberately
        private: it is NOT part of the cache key, so a caller must only
        pass a checker that agrees with the exact Lemma 2(2) test on
        these exact bag objects (the :class:`LiveEngine` passes its
        incrementally-maintained verdicts, which do)."""
        with self._lock:
            self.stats.global_queries += 1
        bags = list(bags)
        key = (
            "global",
            tuple(id(bag) for bag in bags),
            method,
        )
        cached = self._cache_get(key)
        if cached is _MISS:
            from ..consistency.global_ import global_witness

            cached = global_witness(
                bags,
                method=method,  # type: ignore[arg-type]
                node_budget=self.node_budget,
                pair_checker=_pair_checker or self._internal_pair_checker,
            )
            self._cache_put(key, cached, bags)
        else:
            with self._lock:
                self.stats.global_hits += 1
        return cached

    # -- batched API -----------------------------------------------------

    def _run_batch(self, fn, items: Iterable, parallelism: int | None) -> list:
        """Apply ``fn`` to every item, serially or over a thread pool.

        ``parallelism=None``/``1`` is the serial path; ``N > 1`` fans
        out over at most N workers.  The kernels are pure and the cache
        is lock-protected, so workers share hits; two workers racing on
        the same miss at worst compute it twice (both results are
        equal, one entry survives)."""
        items = list(items)
        if parallelism is not None and parallelism < 1:
            raise ValueError(
                f"parallelism must be positive, got {parallelism}"
            )
        if parallelism is None or parallelism == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(
            max_workers=min(parallelism, len(items))
        ) as pool:
            return list(pool.map(fn, items))

    def are_consistent_many(
        self,
        pairs: Iterable[tuple[Bag, Bag]],
        parallelism: int | None = None,
    ) -> list[bool]:
        """Lemma 2(2) over a batch of pairs; one verdict per pair."""
        return self._run_batch(
            lambda pair: self.are_consistent(pair[0], pair[1]),
            pairs,
            parallelism,
        )

    def witness_many(
        self,
        pairs: Iterable[tuple[Bag, Bag]],
        minimal: bool = False,
        parallelism: int | None = None,
    ) -> list[Bag | None]:
        """Witnesses for a batch of pairs: a witness bag per consistent
        pair, ``None`` per inconsistent one (a batch must not abort on
        the first inconsistent entry)."""

        def one(pair: tuple[Bag, Bag]) -> Bag | None:
            try:
                return self.witness(pair[0], pair[1], minimal=minimal)
            except InconsistentError:
                return None

        return self._run_batch(one, pairs, parallelism)

    def global_check_many(
        self,
        collections: Iterable[Sequence[Bag]],
        method: str = "auto",
        parallelism: int | None = None,
    ) -> list:
        """GCPB over a batch of collections, sharing the pairwise cache
        (ledger audits re-use the same reference bags across many
        collections)."""
        return self._run_batch(
            lambda collection: self.global_check(collection, method=method),
            collections,
            parallelism,
        )
