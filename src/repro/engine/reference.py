"""The seed's pre-engine execution paths, preserved verbatim.

Before the columnar engine landed, marginals, bag joins, and the
Corollary 1 witness pipeline ran as per-row ``project_values`` loops and
materialized support-relation joins.  Those loops are kept here, word
for word, for two jobs:

* **oracle** — randomized cross-check tests assert the kernel paths
  compute identical bags/witness networks (``tests/engine/``);
* **baseline** — ``benchmarks/bench_engine.py`` measures the engine
  speedup against exactly the code it replaced, not a strawman.

Nothing in the library proper should import this module.
"""

from __future__ import annotations

from ..core.bags import Bag
from ..core.relations import Relation
from ..core.schema import Schema, projection_indices
from ..errors import InconsistentError
from ..flows.maxflow import FlowResult, saturated_flow
from ..flows.network import FlowNetwork

SOURCE = ("source", "*")
SINK = ("sink", "*")


def _project_values(values: tuple, source: Schema, target: Schema) -> tuple:
    """The seed's per-call projection: index lookup plus a generator."""
    idx = projection_indices(source.attrs, target.attrs)
    return tuple(values[i] for i in idx)


def seed_marginal(bag: Bag, target: Schema) -> Bag:
    """The seed ``Bag.marginal``: one projection per row, no caching."""
    out: dict[tuple, int] = {}
    for row, mult in bag.items():
        key = _project_values(row, bag.schema, target)
        out[key] = out.get(key, 0) + mult
    return Bag(target, out)


def seed_bag_join(left: Bag, right: Bag) -> Bag:
    """The seed ``Bag.bag_join``: rebuilds buckets and the output layout
    on every call."""
    common = left.schema & right.schema
    combined = left.schema | right.schema
    buckets: dict[tuple, list[tuple[tuple, int]]] = {}
    for row, mult in right.items():
        key = _project_values(row, right.schema, common)
        buckets.setdefault(key, []).append((row, mult))
    left_pos = {a: i for i, a in enumerate(left.schema.attrs)}
    right_pos = {a: i for i, a in enumerate(right.schema.attrs)}
    layout = []
    for attr in combined.attrs:
        if attr in left_pos:
            layout.append((0, left_pos[attr]))
        else:
            layout.append((1, right_pos[attr]))
    out: dict[tuple, int] = {}
    for lrow, lmult in left.items():
        key = _project_values(lrow, left.schema, common)
        for rrow, rmult in buckets.get(key, ()):
            sides = (lrow, rrow)
            joined = tuple(sides[side][i] for side, i in layout)
            out[joined] = out.get(joined, 0) + lmult * rmult
    return Bag(combined, out)


def seed_are_consistent(r: Bag, s: Bag) -> bool:
    """The seed Lemma 2(2) test: recompute both marginals every call."""
    common = r.schema & s.schema
    return seed_marginal(r, common) == seed_marginal(s, common)


def seed_build_network(r: Bag, s: Bag) -> FlowNetwork:
    """The seed N(R, S) builder: materializes the support join as a
    :class:`Relation` and re-projects every join tuple twice."""
    network = FlowNetwork(SOURCE, SINK)
    unbounded = max(r.unary_size, s.unary_size, 1)
    for row, mult in r.items():
        network.add_edge(SOURCE, ("r", row), mult)
    for row, mult in s.items():
        network.add_edge(("s", row), SINK, mult)
    join = _seed_relation_join(r.support(), s.support())
    union = join.schema
    for t in join.rows:
        left = _project_values(t, union, r.schema)
        right = _project_values(t, union, s.schema)
        network.add_edge(("r", left), ("s", right), unbounded)
    return network


def _seed_relation_join(left: Relation, right: Relation) -> Relation:
    """The seed ``Relation.join`` (per-call buckets and layout)."""
    common = left.schema & right.schema
    combined = left.schema | right.schema
    buckets: dict[tuple, list[tuple]] = {}
    for row in right.rows:
        key = _project_values(row, right.schema, common)
        buckets.setdefault(key, []).append(row)
    left_pos = {a: i for i, a in enumerate(left.schema.attrs)}
    right_pos = {a: i for i, a in enumerate(right.schema.attrs)}
    layout = []
    for attr in combined.attrs:
        if attr in left_pos:
            layout.append((0, left_pos[attr]))
        else:
            layout.append((1, right_pos[attr]))
    out = set()
    for lrow in left.rows:
        key = _project_values(lrow, left.schema, common)
        for rrow in buckets.get(key, ()):
            sides = (lrow, rrow)
            out.add(tuple(sides[side][i] for side, i in layout))
    return Relation(combined, out)


def seed_witness_from_flow(r: Bag, s: Bag, flow: FlowResult) -> Bag:
    """The seed Corollary 1 witness extraction."""
    union = r.schema | s.schema
    join = _seed_relation_join(r.support(), s.support())
    mults: dict[tuple, int] = {}
    for t in join.rows:
        left = ("r", _project_values(t, union, r.schema))
        right = ("s", _project_values(t, union, s.schema))
        value = flow.on(left, right)
        if value:
            mults[t] = value
    return Bag(union, mults)


def seed_consistency_witness(r: Bag, s: Bag) -> Bag:
    """The seed two-bag witness pipeline: build the network, run one
    max-flow, extract — from scratch on every query."""
    flow = saturated_flow(seed_build_network(r, s))
    if flow is None:
        raise InconsistentError(
            "bags are not consistent (no saturated flow in N(R, S))"
        )
    return seed_witness_from_flow(r, s, flow)
