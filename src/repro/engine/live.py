"""Live engine sessions: mutable bags with incremental invalidation.

The PR-1 :class:`~repro.engine.session.Engine` assumes immutable bags,
so a streamed update forces a cold recompute of everything the bag
touched.  The paper says better is possible: Lemma 2(2) reduces
two-bag consistency to *marginal equality on the common attributes*,
which an :class:`~repro.consistency.incremental.IncrementalPairChecker`
maintains in O(1) per tuple update, and Theorem 2 upgrades those
pairwise answers to global consistency whenever the schema hypergraph
is acyclic.  A :class:`LiveEngine` wires both into the engine cache:

* each tracked bag is a mutable :class:`LiveBag` handle;
* ``update(handle, row, amount)`` bumps the O(1) pair checkers touching
  the handle and invalidates exactly the inner-engine entries (pair
  verdicts, witnesses, joins, marginals, global results) in which the
  handle's current snapshot participates — untouched pairs keep their
  memoized answers;
* heavyweight queries (witnesses, joins, global checks) run against an
  immutable *snapshot* of the handle, reused until the next update, so
  the inner engine's content-keyed memoization applies unchanged
  between updates — and because each handle maintains its fingerprint
  incrementally, snapshots are born pre-fingerprinted and invalidation
  never rescans a bag;
* over an acyclic schema, :meth:`LiveEngine.global_check` defaults to
  ``mode="live"``: the Theorem 6 *witness* is maintained incrementally
  by a persistent fold tree (:mod:`repro.engine.live_global`) instead
  of being re-folded from scratch after every update, and each
  maintained result is pushed into the engine's verdict store so
  serve/batch clients sharing the store get it for free.

The consistency-checking-as-serving loop this enables —
``update(...); globally_consistent()`` — is the streaming workload of
``benchmarks/bench_live.py``; the witness-maintaining variant is gated
by ``benchmarks/bench_live_global.py``.
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import combinations
from typing import Iterable, Mapping

from ..consistency.global_ import GlobalConsistencyResult
from ..consistency.incremental import IncrementalPairChecker, validate_update
from ..core.bags import Bag
from ..core.schema import Schema
from ..lp.integer_feasibility import DEFAULT_NODE_BUDGET
from . import columnar, fingerprint
from .columnar import ColumnarDelta
from .index import BagIndex
from .live_global import LiveGlobalWitness
from .session import Engine, EngineStats, VerdictStore

__all__ = ["LiveBag", "LiveEngine"]


class LiveBag:
    """A mutable bag handle owned by one :class:`LiveEngine`.

    Holds the current multiplicities and a lazily-built immutable
    snapshot :class:`Bag`.  The snapshot object is reused until the next
    update, so the content-keyed store sees an unchanged fingerprint
    exactly while the handle is untouched.  The handle also maintains
    its **content fingerprint incrementally**: every update shifts the
    commutative row-term sum by a two-term delta
    (:func:`repro.engine.fingerprint.shift_content`), so snapshots are
    born with a seeded fingerprint and invalidation never rescans the
    bag.  All mutation goes through :meth:`LiveEngine.update` (which
    also maintains the pair checkers and the store); the handle itself
    is read-only.

    The handle also maintains a **columnar delta**
    (:class:`~repro.engine.columnar.ColumnarDelta`): row updates adjust
    the encoded mult vector in place (inserts stage and append in
    batch, deletes-to-zero mask out with periodic compaction), so each
    snapshot is born with a ready columnar encoding instead of paying a
    fresh dictionary-encoding pass per update.
    """

    __slots__ = (
        "schema", "name", "_mults", "_snapshot", "_content", "_columnar"
    )

    def __init__(
        self, schema: Schema, mults: Mapping[tuple, int], name: str
    ) -> None:
        self.schema = schema
        self.name = name
        self._mults: dict[tuple, int] = dict(mults)
        self._snapshot: Bag | None = None
        self._content = fingerprint.content_sum(self._mults.items())
        self._columnar = ColumnarDelta(schema.attrs, self._mults)

    def fingerprint(self) -> int:
        """The current content fingerprint, from the incrementally
        maintained parts — O(1) regardless of bag size."""
        return fingerprint.bag_fingerprint(
            fingerprint.of_schema(self.schema),
            self._content,
            len(self._mults),
        )

    def bag(self) -> Bag:
        """The current contents as an immutable snapshot (fingerprint
        pre-seeded from the maintained sum, so engine queries on the
        snapshot never pay a content scan)."""
        if self._snapshot is None:
            # _mults holds only validated rows with positive counts, so
            # the validation-free constructor applies.
            snapshot = Bag._from_clean(self.schema, dict(self._mults))
            self._snapshot = fingerprint.seed(snapshot, self.fingerprint())
            encoded = self._columnar.snapshot()
            # hand the maintained encoding to the snapshot's index
            # (possibly adopted via the registry — then it either
            # has one already or decides eligibility on its own)
            columnar.adopt_encoding(BagIndex.of(self._snapshot), encoded)
        return self._snapshot

    def multiplicity(self, row) -> int:
        return self._mults.get(tuple(row), 0)

    def items(self) -> Iterable[tuple[tuple, int]]:
        return self._mults.items()

    @property
    def support_size(self) -> int:
        return len(self._mults)

    def __len__(self) -> int:
        return len(self._mults)

    def __bool__(self) -> bool:
        return bool(self._mults)

    def __repr__(self) -> str:
        return (
            f"LiveBag({self.name!r}, {list(self.schema.attrs)!r}, "
            f"{len(self._mults)} tuples)"
        )


class LiveEngine:
    """An :class:`Engine` over mutable bags.

    ``capacity`` and ``node_budget`` are forwarded to the inner engine;
    queries between handles are answered from incrementally-maintained
    pair checkers (created on the first query of each pair, O(1)
    afterwards), everything else from the inner engine's snapshot-keyed
    cache.
    """

    def __init__(
        self,
        bags: Iterable[Bag] = (),
        node_budget: int | None = DEFAULT_NODE_BUDGET,
        capacity: int | None = None,
        store: VerdictStore | None = None,
        max_fold_trees: int = 8,
    ) -> None:
        if max_fold_trees < 1:
            raise ValueError(
                f"max_fold_trees must be positive, got {max_fold_trees}"
            )
        self._engine = Engine(
            node_budget=node_budget, capacity=capacity, store=store
        )
        # Content-addressed entries never go stale, so invalidating on
        # update is purely a memory lever.  Over a private store we keep
        # it (a streaming session would otherwise accumulate an entry
        # per historical content); over a *shared* store we must not —
        # the entries this handle leaves behind may be serving other
        # engines, and the shared store's own capacity bounds memory.
        self._invalidate_on_update = store is None
        self._handles: list[LiveBag] = []
        self._slots: dict[LiveBag, int] = {}
        # (slot i, slot j) with i < j -> the maintained checker; lazy,
        # so an m-bag session only pays for the pairs actually queried.
        self._checkers: dict[tuple[int, int], IncrementalPairChecker] = {}
        # slot -> [(checker, is_left_side)]: the checkers an update to
        # that slot must bump, so the hot path touches O(m) checkers,
        # not all m(m-1)/2.
        self._by_slot: dict[
            int, list[tuple[IncrementalPairChecker, bool]]
        ] = {}
        # handle-set fingerprint (frozenset of schema fps) -> acyclic?
        # Row updates never alter schemas, so entries only need to be
        # dropped when membership changes (add_bag) — the PR-5 bugfix
        # for global_check re-running GYO on every post-update call.
        self._acyclic_sets: dict[frozenset[int], bool] = {}
        # slot set -> the maintained Theorem 6 fold tree for those
        # handles (created on the first mode="live" global check).
        # LRU-bounded at max_fold_trees: trees pin bag snapshots and
        # per-node witness histories, and every update notifies every
        # retained tree, so a session sweeping many distinct subsets
        # must not accumulate one forever (an evicted set just pays
        # one fresh fold on its next live check).
        self.max_fold_trees = max_fold_trees
        self._live_globals: "OrderedDict[frozenset[int], LiveGlobalWitness]"
        self._live_globals = OrderedDict()
        self.updates = 0
        for bag in bags:
            self.add_bag(bag)

    # -- session surface -------------------------------------------------

    @property
    def engine(self) -> Engine:
        """The inner snapshot cache (stats, pinning, eviction knobs)."""
        return self._engine

    @property
    def stats(self) -> EngineStats:
        return self._engine.stats

    @property
    def handles(self) -> list[LiveBag]:
        return list(self._handles)

    def __len__(self) -> int:
        """Number of cached results in the inner engine."""
        return len(self._engine)

    def add_bag(self, bag: Bag, name: str | None = None) -> LiveBag:
        """Track a bag; returns its mutable handle."""
        handle = LiveBag(
            bag.schema, dict(bag.items()), name or f"bag{len(self._handles)}"
        )
        # The given bag IS the initial snapshot; its fingerprint is the
        # handle's maintained one, so seed it rather than rescanning.
        handle._snapshot = fingerprint.seed(bag, handle.fingerprint())
        self._slots[handle] = len(self._handles)
        self._handles.append(handle)
        self._acyclic_sets.clear()  # membership changed, row updates don't
        return handle

    def _resolve(self, handle) -> LiveBag:
        if isinstance(handle, LiveBag):
            if handle not in self._slots:
                raise KeyError(f"{handle!r} belongs to another LiveEngine")
            return handle
        return self._handles[handle]  # IndexError speaks for itself

    # -- updates ---------------------------------------------------------

    def update(self, handle, row: tuple, amount: int) -> None:
        """Add ``amount`` (possibly negative) copies of ``row`` to the
        handle's bag.

        O(1) per maintained pair checker touching the handle, plus one
        cache invalidation sweep over the entries the handle's snapshot
        participates in.  Entries touching only other handles survive.
        """
        handle = self._resolve(handle)
        row, new = validate_update(handle.schema, handle._mults, row, amount)
        if amount == 0:
            return
        slot = self._slots[handle]
        for checker, is_left in self._by_slot.get(slot, ()):
            if is_left:
                checker.update_left(row, amount)
            else:
                checker.update_right(row, amount)
        handle._content = fingerprint.shift_content(
            handle._content, row, new - amount, new
        )
        handle._columnar.update(row, new)
        if new == 0:
            handle._mults.pop(row, None)
        else:
            handle._mults[row] = new
        old = handle._snapshot
        if old is not None:
            if self._invalidate_on_update:
                self._engine.invalidate(old)
            handle._snapshot = None
        for live_global in self._live_globals.values():
            live_global.notify(slot)  # O(1) dirty mark, work deferred
        self.updates += 1

    # -- queries ---------------------------------------------------------

    def _checker(self, a: int, b: int) -> IncrementalPairChecker:
        key = (a, b) if a < b else (b, a)
        checker = self._checkers.get(key)
        if checker is None:
            i, j = key
            # Delta-only mode: the handles hold the authoritative
            # multiplicities and update() pre-validates every row, so
            # the checker need not duplicate either bag.
            checker = IncrementalPairChecker(
                self._handles[i].bag(),
                self._handles[j].bag(),
                track_bags=False,
            )
            self._checkers[key] = checker
            self._by_slot.setdefault(i, []).append((checker, True))
            self._by_slot.setdefault(j, []).append((checker, False))
        return checker

    def are_consistent(self, left, right) -> bool:
        """Lemma 2(2) between two handles, answered from the maintained
        marginal-difference counter: O(n) on the first query of the
        pair, O(1) on every later query regardless of updates."""
        a = self._slots[self._resolve(left)]
        b = self._slots[self._resolve(right)]
        if a == b:
            return True  # a bag is consistent with itself
        return self._checker(a, b).consistent

    def disagreeing_cells(self, left, right) -> dict[tuple, int]:
        """The common-marginal cells where two handles disagree."""
        a = self._slots[self._resolve(left)]
        b = self._slots[self._resolve(right)]
        if a == b:
            return {}
        cells = self._checker(a, b).disagreeing_cells()
        if a > b:  # checker stores left-minus-right for the lower slot
            cells = {cell: -diff for cell, diff in cells.items()}
        return cells

    def inconsistent_pairs(self) -> list[tuple[int, int]]:
        """Slot pairs currently violating Lemma 2(2) (materializes every
        pair checker on first call; O(m^2) flag reads afterwards)."""
        m = len(self._handles)
        return [
            (i, j)
            for i, j in combinations(range(m), 2)
            if not self._checker(i, j).consistent
        ]

    def pairwise_consistent(self, handles=None) -> bool:
        """Every two tracked bags (or every two of ``handles``) are
        consistent (Section 4) — O(pairs) maintained flag reads."""
        if handles is None:
            slots = range(len(self._handles))
        else:
            slots = sorted(
                {self._slots[self._resolve(handle)] for handle in handles}
            )
        return all(
            self._checker(i, j).consistent
            for i, j in combinations(slots, 2)
        )

    def schema_acyclic(self, handles=None) -> bool:
        """Whether the given handles' schemas (default: all tracked)
        form an acyclic hypergraph.

        Cached per handle-set schema fingerprint: row updates never
        alter schemas, so entries are dropped only when
        :meth:`add_bag` changes membership — repeated post-update
        global checks stop re-running the GYO reduction.
        """
        resolved = (
            self._handles
            if handles is None
            else [self._resolve(handle) for handle in handles]
        )
        key = frozenset(
            fingerprint.of_schema(handle.schema) for handle in resolved
        )
        acyclic = self._acyclic_sets.get(key)
        if acyclic is None:
            from ..hypergraphs.acyclicity import is_acyclic
            from ..hypergraphs.hypergraph import Hypergraph

            acyclic = is_acyclic(
                Hypergraph.from_schemas([h.schema for h in resolved])
            )
            if len(self._acyclic_sets) >= 4096:
                self._acyclic_sets.clear()  # subset-sweeping sessions
            self._acyclic_sets[key] = acyclic
        return acyclic

    def globally_consistent(self, method: str = "auto") -> bool:
        """Global consistency of the whole session.

        Over an acyclic schema this is Theorem 2: the maintained
        pairwise verdicts decide it in O(m^2) flag reads, no recompute
        (and no witness construction — ask :meth:`global_check` when
        the witness itself is wanted).  Cyclic schemas fall through to
        the exact (cached) solver.
        """
        if method != "search" and self.schema_acyclic():
            return self.pairwise_consistent()
        return self.global_check(method=method).consistent

    def marginal(self, handle, target: Schema) -> Bag:
        return self._engine.marginal(self._resolve(handle).bag(), target)

    def join(self, left, right) -> Bag:
        return self._engine.join(
            self._resolve(left).bag(), self._resolve(right).bag()
        )

    def witness(self, left, right, minimal: bool = False) -> Bag:
        """A pairwise witness against the current snapshots, memoized in
        the inner engine until either side is updated."""
        return self._engine.witness(
            self._resolve(left).bag(),
            self._resolve(right).bag(),
            minimal=minimal,
        )

    def global_check(self, handles=None, method: str = "auto",
                     mode: str = "live"):
        """The GCPB decision + witness over the current snapshots.

        ``mode="live"`` (the default) maintains the Theorem 6 witness
        incrementally whenever the handles' schema hypergraph is
        acyclic: a persistent fold tree
        (:class:`~repro.engine.live_global.LiveGlobalWitness`) repairs
        only the nodes on the updated bags' leaf-to-root paths, and the
        maintained result is pushed into the engine's verdict store so
        other engines sharing it (serve connections, batch clients) hit
        without folding.  Cyclic schemas, ``method="search"``, and
        ``mode="cold"`` take the memoized cold path; there the pairwise
        phase is still served from the maintained O(1) checkers, and
        the cached per-handle-set acyclicity is forwarded so a
        post-update miss re-pays only witness construction — neither
        the pairwise scan nor the GYO reduction.
        """
        if mode not in ("live", "cold"):
            raise ValueError(f"unknown mode {mode!r}; use 'live' or 'cold'")
        resolved = (
            self._handles
            if handles is None
            else [self._resolve(handle) for handle in handles]
        )
        acyclic = self.schema_acyclic(resolved) if resolved else False
        if (
            mode == "live"
            and method in ("auto", "acyclic")
            and resolved
            and acyclic
        ):
            return self._live_global_check(resolved, method)
        bags = [handle.bag() for handle in resolved]
        by_id = {id(bag): handle for bag, handle in zip(bags, resolved)}

        def pair_checker(left: Bag, right: Bag) -> bool:
            left_handle = by_id.get(id(left))
            right_handle = by_id.get(id(right))
            if left_handle is not None and right_handle is not None:
                return self.are_consistent(left_handle, right_handle)
            return self._engine._internal_pair_checker(left, right)

        return self._engine.global_check(
            bags,
            method=method,
            _pair_checker=pair_checker,
            _acyclic_hint=acyclic if resolved else None,
        )

    def _live_global_check(self, resolved, method: str):
        """Serve a global check from the maintained fold tree.

        Counts as an external global query on the engine stats (a clean
        tree is a hit); successful results land in the shared verdict
        store under the same key the cold path uses, so value-equal
        collections served elsewhere reuse the maintained witness.
        """
        stats = self._engine.stats
        with self._engine._lock:
            stats.global_queries += 1
        if not self.pairwise_consistent(resolved):
            return GlobalConsistencyResult(False, None, "pairwise")
        key = frozenset(self._slots[handle] for handle in resolved)
        live_global = self._live_globals.get(key)
        if live_global is None:
            live_global = LiveGlobalWitness(self, resolved)
            self._live_globals[key] = live_global
            while len(self._live_globals) > self.max_fold_trees:
                self._live_globals.popitem(last=False)
        else:
            self._live_globals.move_to_end(key)
        clean = not live_global._dirty and live_global._result is not None
        result = live_global.refresh()
        if clean:
            with self._engine._lock:
                stats.global_hits += 1
        store = self._engine.store
        fps = fingerprint.of_collection(
            [handle.bag() for handle in resolved]
        )
        store_key = ("global", fps, method)
        if not store.contains(store_key):
            store.put(store_key, result, fps)
        return result

    def live_global_stats(self) -> dict:
        """Fold-tree maintenance counters aggregated over every handle
        set maintained so far (repairs vs recomputes vs restores)."""
        totals: dict[str, int] = {}
        for live_global in self._live_globals.values():
            for name, value in live_global.stats.as_dict().items():
                totals[name] = totals.get(name, 0) + value
        return totals
