"""Vectorized columnar kernels: dictionary-encoded arrays under the
marginal, consistency, witness, join, semijoin, and fingerprint paths.

The row kernels in :mod:`repro.engine.kernels` walk Python tuples one
``itemgetter`` call at a time.  This module gives every eligible bag a
**columnar encoding** — per-attribute dictionaries interning values to
dense int codes, the bag stored as int64 code columns plus an int64
multiplicity vector — and rebuilds the hot operations as numpy array
programs:

* **marginals** are sorted-run reductions: project the code columns
  onto the target attributes, view the projected matrix as a fixed-width
  void dtype (byte order chosen so byte comparison equals numeric
  order), argsort once, and ``np.add.reduceat`` the multiplicities over
  the group boundaries;
* **consistency** (Lemma 2(2)) compares the two sides' cached
  common-attribute groupings directly — two array equalities, no
  marginal dicts;
* **witnesses** (Corollary 1) drop the max-flow entirely: with all join
  pairs admissible inside each common-key group, the transportation
  problem has a closed-form northwest-corner solution — merge the two
  sides' multiplicity cumsums and read each cell off the breakpoint
  segments.  The result has at most ``|Supp R| + |Supp S|`` cells, so
  the Theorem 5 support bound holds by construction;
* **bag joins** are group joins: intersect the two sides' sorted group
  keys and expand the matched blocks' cartesian products with
  arange/repeat arithmetic (the emitted union row determines its pair,
  so outputs never collide);
* **semijoins** are membership masks via a binary search of the probe
  side's sorted unique keys;
* **fingerprint content sums** reduce the per-row BLAKE2b terms as four
  32-bit limb columns in one ``sum(axis=0)`` (the terms themselves are
  unchanged, so fingerprints stay identical across backends and
  processes — the shared stores depend on that).

**Interners are global and append-only**: each attribute owns one
value -> code dictionary for the whole process, so codes are comparable
across bags sharing attributes and stay stable as the dictionary grows
(encodings cached on one bag never go stale when another bag interns
new values).

**Encodings are cached per content** : the encoding lives on the bag's
:class:`~repro.engine.index.BagIndex`, and value-equal bags adopt one
index through the fingerprint registry — so the cache is effectively
keyed by content fingerprint, exactly like every other per-bag memo.

**Fallback contract**: every entry point returns ``None`` (or skips
itself) whenever numpy is missing (or ``REPRO_NO_NUMPY`` is set), the
bag is too small to amortize encoding (``MIN_ROWS``), a total
multiplicity exceeds the int64 safety bound (``MAX_TOTAL``, 2**62 — the
arbitrary-precision regime of Section 5 stays on the row kernels), or a
join's mult-product could overflow.  Callers then run the row kernel,
so results are bit-identical either way; the per-operation counters
(:func:`kernel_stats`) record which path served each call.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Sequence

from ..analysis.registry import register_lock, sanitizer_active, shared_state
from ..analysis.sanitizer import freeze_array, freeze_rows
from ..obs import metrics as obs_metrics

if os.environ.get("REPRO_NO_NUMPY"):
    np = None  # forced row-kernel mode (the CI fallback job)
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.bags import Bag
    from ..core.relations import Relation
    from .kernels import JoinPlan

__all__ = [
    "AVAILABLE",
    "MAX_TOTAL",
    "MIN_ROWS",
    "PortableEncoding",
    "disabled",
    "enabled",
    "export_encoding",
    "import_encoding",
    "kernel_stats",
    "reset_kernel_stats",
    "sum_u128",
    "try_consistent",
    "try_join",
    "try_marginal",
    "try_semijoin",
    "try_witness",
    "ColumnarDelta",
]

AVAILABLE = np is not None

# Bags smaller than this stay on the row kernels: below it the encoding
# pass costs more than it saves.  Module attribute (read at call time)
# so tests can force the columnar path onto tiny edge-case bags.
MIN_ROWS = 32

# Total-multiplicity ceiling for int64 arithmetic: cumsums stay under
# 2**62, and the witness/consistency sums can add two totals without
# overflow.  Bags past it (Section 5's multiplicities-in-binary regime)
# fall back to the row kernels' arbitrary-precision Python ints.
MAX_TOTAL = 1 << 62

# Transient off-switch (benchmark baselines measure the row kernels on
# the same build); nesting-safe.  Plain int: flips happen on the
# benchmark driver thread, not under concurrency.
_disabled = 0

_BIG = ">i8"  # big-endian int64: byte order == numeric order for codes


@contextmanager
def disabled():
    """Force the row kernels while the context is active (baselines)."""
    global _disabled
    _disabled += 1
    try:
        yield
    finally:
        _disabled -= 1


def enabled() -> bool:
    return np is not None and not _disabled


# -- observability ------------------------------------------------------

# Per-operation counters: which path (columnar vs row) served each
# dispatch.  Locked ``repro.obs`` registry counters (exact under free
# threading), read back in the historical flat-dict shape.
_STATS_KEYS = (
    "columnar_marginals", "row_marginals",
    "columnar_consistency", "row_consistency",
    "columnar_witnesses", "row_witnesses",
    "columnar_joins", "row_joins",
    "columnar_semijoins", "row_semijoins",
    "columnar_fingerprints", "row_fingerprints",
    "encodings",
)
_COUNTERS = {
    key: obs_metrics.REGISTRY.counter("repro_kernel_" + key)
    for key in _STATS_KEYS
}


def _count(key: str) -> None:
    _COUNTERS[key].inc()


def count_row(op: str) -> None:
    """Record a row-kernel dispatch for ``op`` (call sites report their
    fallbacks here so the counters cover both paths)."""
    _COUNTERS["row_" + op].inc()


def count_columnar(op: str) -> None:
    _COUNTERS["columnar_" + op].inc()


def kernel_stats() -> dict:
    """The process-wide columnar-vs-row dispatch counters plus whether
    the numpy backend is active — the one-line-JSON observability
    payload of ``Engine.kernel_stats()`` / ``repro serve stats``.
    Includes the wire/shm transport counters (lazy import: ``wire``
    imports this module at load time)."""
    out: dict = {"numpy": AVAILABLE}
    for key in _STATS_KEYS:
        out[key] = _COUNTERS[key].value
    from . import wire

    out.update(wire.wire_stats())
    return out


def reset_kernel_stats() -> None:
    """Zero the kernel and wire counters (test/bench isolation) —
    through the registry handles, not bespoke per-module plumbing."""
    for counter in _COUNTERS.values():
        counter.reset()
    from . import wire

    for counter in wire._COUNTERS.values():
        counter.reset()


# -- dictionary encoding ------------------------------------------------


@shared_state("lock", "codes", "values", "_decode", tier="interner")
class _Interner:
    """One attribute's global value -> dense code dictionary.

    Append-only: a value's code never changes once assigned, so cached
    encodings stay valid forever and codes are comparable across every
    bag sharing the attribute.  ``values`` is the inverse table (decode
    side), grown in lockstep.

    Thread-safe for the ThreadExecutor backend: hits read ``codes``
    lock-free, misses intern under ``lock`` with a double-checked
    re-get, and a value lands in ``values`` before its code is
    published so a lock-free reader never sees a code without its
    decode entry.
    """

    __slots__ = ("codes", "values", "lock", "_decode")

    def __init__(self) -> None:
        self.codes: dict = {}
        self.values: list = []
        self.lock = threading.Lock()
        self._decode = None  # object ndarray mirror of values, lazy

    def encode(self, column: Iterable) -> "np.ndarray":
        codes = self.codes
        out = []
        append = out.append
        for value in column:
            code = codes.get(value)
            if code is None:
                with self.lock:
                    code = codes.get(value)
                    if code is None:
                        self.values.append(value)
                        self._decode = None
                        code = codes[value] = len(self.values) - 1
            append(code)
        return np.array(out, dtype=np.int64)

    def decode_array(self) -> "np.ndarray":
        """The values table as an object ndarray (vectorized decode via
        fancy indexing; object dtype so tuple-valued attributes survive
        untouched)."""
        arr = self._decode
        n = len(self.values)
        if arr is None or len(arr) != n:
            with self.lock:
                n = len(self.values)
                arr = np.empty(n, dtype=object)
                arr[:] = self.values[:n]
                self._decode = arr
        return arr


_INTERNERS: dict = {}
_INTERN_LOCK = register_lock(
    "_INTERN_LOCK", threading.Lock(), tier="interner",
    containers=("_INTERNERS",),
)


def _interner(attr) -> _Interner:
    interner = _INTERNERS.get(attr)
    if interner is None:
        with _INTERN_LOCK:
            interner = _INTERNERS.setdefault(attr, _Interner())
    return interner


# -- the columnar bag ---------------------------------------------------


class _Grouping:
    """One sorted-run reduction of a bag onto some target attributes.

    ``keys``: the distinct composite keys as a sorted void array (or
    ``None`` for the empty target schema — one group holding all rows);
    ``sums``: per-group multiplicity totals; ``order``: row argsort by
    key; ``starts``: group start offsets into ``order``.
    """

    __slots__ = ("keys", "sums", "order", "starts", "positions")

    def __init__(self, keys, sums, order, starts, positions) -> None:
        self.keys = keys
        self.sums = sums
        self.order = order
        self.starts = starts
        self.positions = positions  # column indices of the target attrs


def _void_keys(matrix: "np.ndarray") -> "np.ndarray":
    """Rows of a big-endian int64 (n, k) matrix as one void column whose
    byte comparison equals lexicographic numeric comparison (codes are
    non-negative, so big-endian bytes sort like the ints)."""
    n, k = matrix.shape
    return np.ascontiguousarray(matrix).view(f"V{8 * k}").reshape(n)


class ColumnarBag:
    """The dictionary-encoded twin of one immutable bag's contents.

    ``cols[i]`` holds attribute ``attrs[i]``'s int64 codes; ``mults``
    the (positive) multiplicities; ``rows`` the original value tuples in
    the same row order, so join/witness emission reuses validated
    tuples instead of decoding.  Groupings are cached per target — the
    Lemma 2 test, the witness, and the join all reuse one sort.
    """

    __slots__ = ("attrs", "cols", "mults", "rows", "total", "_groupings")

    # Snapshot contract: once an instance is published (cached on an
    # index or returned by ColumnarDelta.snapshot) these are rebound,
    # never mutated in place (RL03; frozen physically under
    # REPRO_SANITIZE).
    FROZEN_FIELDS = ("cols", "mults", "rows")

    def __init__(self, attrs, cols, mults, rows, total) -> None:
        self.attrs = attrs
        self.cols = cols
        self.mults = mults
        self.rows = rows
        self.total = total
        self._groupings: dict = {}

    def grouping(self, target_attrs: tuple) -> _Grouping:
        cached = self._groupings.get(target_attrs)
        if cached is not None:
            return cached
        n = len(self.rows)
        if not target_attrs:
            # The empty target schema: one group holding every row.
            grouping = _Grouping(
                None,
                np.array([self.total], dtype=np.int64),
                np.arange(n, dtype=np.int64),
                np.array([0], dtype=np.int64),
                (),
            )
        else:
            pos = tuple(self.attrs.index(a) for a in target_attrs)
            matrix = np.empty((n, len(pos)), dtype=_BIG)
            for j, p in enumerate(pos):
                matrix[:, j] = self.cols[p]
            keys = _void_keys(matrix)
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            if n:
                boundary = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1])
                starts = np.concatenate(
                    ([0], boundary + 1)
                ).astype(np.int64)
            else:
                starts = np.empty(0, dtype=np.int64)
            sums = (
                np.add.reduceat(self.mults[order], starts)
                if n
                else np.empty(0, dtype=np.int64)
            )
            grouping = _Grouping(
                sorted_keys[starts], sums, order, starts, pos
            )
        self._groupings[target_attrs] = grouping
        return grouping

    def marginal_table(self, target_attrs: tuple) -> dict[tuple, int]:
        """The Equation (2) marginal as a plain row -> multiplicity dict
        (what :class:`~repro.core.bags.Bag` stores)."""
        grouping = self.grouping(target_attrs)
        if grouping.keys is None:
            return {(): int(grouping.sums[0])} if self.total else {}
        k = len(target_attrs)
        codes = grouping.keys.view(_BIG).reshape(-1, k)
        decoded = [
            _interner(attr).decode_array()[codes[:, j]]
            for j, attr in enumerate(target_attrs)
        ]
        sums = grouping.sums.tolist()
        return dict(zip(zip(*(col.tolist() for col in decoded)), sums))


_INELIGIBLE = object()

# Publication lock for the per-index `_columnar` slot (and the
# `_INELIGIBLE` sentinel): encoding happens *outside* the lock — it may
# acquire interner locks, hence the earlier "columnar" tier — and the
# slot is then published with a double-checked re-read, first encoder
# wins and losers adopt the published value.
_ENCODE_LOCK = register_lock(
    "_ENCODE_LOCK", threading.Lock(), tier="columnar",
    slots=("_columnar",),
)


def _mark_ineligible(index) -> None:
    with _ENCODE_LOCK:
        if index._columnar is None:
            index._columnar = _INELIGIBLE


def _publish(index, encoded):
    """Double-checked publication: install ``encoded`` unless another
    thread won the race, in which case adopt the winner."""
    with _ENCODE_LOCK:
        cached = index._columnar
        if cached is None:
            index._columnar = encoded
            return encoded
    return None if cached is _INELIGIBLE else cached


def _freeze_bag(encoded: ColumnarBag) -> ColumnarBag:
    """Physically freeze a published encoding under REPRO_SANITIZE."""
    if sanitizer_active():
        for col in encoded.cols:
            freeze_array(col)
        freeze_array(encoded.mults)
        encoded.rows = freeze_rows(encoded.rows)
    return encoded


def of_index(index) -> ColumnarBag | None:
    """The cached columnar encoding of a :class:`BagIndex`'s bag, or
    ``None`` when the columnar path does not apply.

    Ineligibility for *structural* reasons (too small, totals past the
    int64 bound) is cached as a sentinel on the index; a transient
    :func:`disabled` context (or missing numpy) is never cached.
    """
    if not enabled():
        return None
    cached = index._columnar
    if cached is not None:
        return None if cached is _INELIGIBLE else cached
    bag = index._bag
    mults = bag._mults
    n = len(mults)
    if n < MIN_ROWS:
        _mark_ineligible(index)
        return None
    total = 0
    for mult in mults.values():  # python ints: overflow-proof audit
        total += mult
    if total > MAX_TOTAL:
        _mark_ineligible(index)
        return None
    encoded = encode_rows(bag._schema.attrs, mults.keys(), mults.values(),
                          n, total)
    return _publish(index, _freeze_bag(encoded))


def adopt_encoding(index, encoded) -> None:
    """Publish a pre-built encoding onto an index (LiveBag.bag() hands
    the snapshot's columnar twin to the snapshot's index)."""
    if encoded is None:
        return
    with _ENCODE_LOCK:
        if index._columnar is None:
            index._columnar = encoded


class PortableEncoding:
    """One bag's columnar contents re-based for another process:
    per-column **local** dictionaries (the distinct values actually
    used) plus int64 code/multiplicity blobs referencing them.  Raw
    interner codes never travel — interners are process-local and
    append-only, so no two processes agree on them."""

    __slots__ = ("attrs", "n", "total", "mults", "columns")

    def __init__(self, attrs, n, total, mults, columns) -> None:
        self.attrs = attrs      # tuple of attribute names
        self.n = n              # support size (rows)
        self.total = total      # multiplicity total (exact Python int)
        self.mults = mults      # bytes: n little-endian int64s
        self.columns = columns  # [(codes bytes, local values list), ...]

    @property
    def nbytes(self) -> int:
        """The blob footprint (code + mult arrays; the executor's spill
        floor compares this against the pickle path)."""
        return len(self.mults) + sum(len(codes) for codes, _ in self.columns)


def export_encoding(encoded: ColumnarBag) -> PortableEncoding:
    """Re-base a cached encoding onto per-column local dictionaries
    (``np.unique`` orders each column's distinct values by interner
    code; the inverse permutation *is* the local code column)."""
    columns = []
    for attr, col in zip(encoded.attrs, encoded.cols):
        uniq, inverse = np.unique(col, return_inverse=True)
        values = _interner(attr).decode_array()[uniq].tolist()
        columns.append(
            (inverse.astype("<i8", copy=False).tobytes(), values)
        )
    return PortableEncoding(
        encoded.attrs,
        len(encoded.rows),
        encoded.total,
        encoded.mults.astype("<i8", copy=False).tobytes(),
        columns,
    )


def import_encoding(attrs, n, mults_buf, columns):
    """Remap a portable encoding into this process's interners.

    ``columns`` holds ``(codes buffer, local values list)`` per
    attribute; buffers may view shared memory — everything returned
    owns its storage.  Returns ``(rows, mults list, ColumnarBag or
    None)``; the encoding is ``None`` when the bag falls outside the
    columnar envelope (below ``MIN_ROWS``, total past ``MAX_TOTAL``).
    Raises ``ValueError`` on malformed contents (the wire layer wraps
    it); the caller checks ``enabled()``.
    """
    mults = np.frombuffer(mults_buf, dtype="<i8").astype(
        np.int64, copy=True
    )
    if len(mults) != n:
        raise ValueError("multiplicity vector length mismatch")
    if n and int(mults.min()) <= 0:
        raise ValueError("non-positive multiplicity")
    cols = []
    decoded_cols = []
    for attr, (codes_buf, values) in zip(attrs, columns):
        local = np.frombuffer(codes_buf, dtype="<i8")
        if len(local) != n:
            raise ValueError("code column length mismatch")
        if n and (int(local.min()) < 0 or int(local.max()) >= len(values)):
            raise ValueError("dictionary code out of range")
        interner = _interner(attr)
        # the remap table: local code -> this process's interner code;
        # the gather produces an owned int64 column.
        mapping = interner.encode(values)
        codes = mapping[local] if n else np.empty(0, dtype=np.int64)
        cols.append(codes)
        decoded_cols.append(interner.decode_array()[codes])
    if attrs:
        rows = list(zip(*(col.tolist() for col in decoded_cols)))
    else:
        rows = [()] * n
    mult_list = mults.tolist()
    total = sum(mult_list)
    encoded = None
    if n >= MIN_ROWS and total <= MAX_TOTAL:
        encoded = _freeze_bag(
            ColumnarBag(tuple(attrs), cols, mults, rows, total)
        )
    return rows, mult_list, encoded


def encode_rows(attrs, rows, mults, n, total) -> ColumnarBag:
    """Dictionary-encode validated rows into a :class:`ColumnarBag`
    (``rows``/``mults`` are any same-length iterables; the caller has
    verified ``total <= MAX_TOTAL``)."""
    _count("encodings")
    row_list = list(rows)
    cols = [
        _interner(attr).encode([row[i] for row in row_list])
        for i, attr in enumerate(attrs)
    ]
    mult_arr = np.fromiter(mults, dtype=np.int64, count=n)
    return ColumnarBag(attrs, cols, mult_arr, row_list, total)


# -- kernels ------------------------------------------------------------


def try_marginal(index, target_attrs: tuple) -> dict[tuple, int] | None:
    """The columnar marginal table, or ``None`` to fall back."""
    encoded = of_index(index)
    if encoded is None:
        return None
    _count("columnar_marginals")
    return encoded.marginal_table(target_attrs)


def _common_attrs(left: "Bag", right: "Bag") -> tuple:
    return (left._schema & right._schema).attrs


def try_consistent(left: "Bag", right: "Bag") -> bool | None:
    """Lemma 2(2) on the cached groupings: equal distinct common keys
    with equal per-key totals.  ``None`` means fall back."""
    from .index import BagIndex

    el = of_index(BagIndex.of(left))
    if el is None:
        return None
    er = of_index(BagIndex.of(right))
    if er is None:
        return None
    _count("columnar_consistency")
    common = _common_attrs(left, right)
    gl = el.grouping(common)
    gr = er.grouping(common)
    if gl.keys is None:  # empty common schema: totals decide
        return el.total == er.total
    return (
        gl.keys.shape == gr.keys.shape
        and bool(np.array_equal(gl.keys, gr.keys))
        and bool(np.array_equal(gl.sums, gr.sums))
    )


def try_witness(left: "Bag", right: "Bag", plan: "JoinPlan"):
    """The closed-form Corollary 1 witness table, or ``None`` to fall
    back to the flow pipeline; raises :class:`InconsistentError` (the
    flow path's exact message) on inconsistent inputs.

    Inside one common-key group every (left row, right row) pair is an
    admissible join tuple, so the per-group transportation problem is
    unconstrained and the northwest-corner solution applies: order both
    sides by group, take the two multiplicity cumsums, and merge their
    breakpoints — each merged segment is one witness cell whose left
    (right) row is the one whose cumsum interval covers the segment.
    Group totals agree (that *is* consistency), so group boundaries
    appear in both cumsums and no segment ever crosses a group.  Cells
    are distinct pairs, distinct pairs emit distinct union rows, and
    the cell count is at most the two support sizes combined — the
    Theorem 5 bound, by construction.
    """
    consistent = try_consistent(left, right)
    if consistent is None:
        return None
    if not consistent:
        from ..errors import InconsistentError

        raise InconsistentError(
            "bags are not consistent (no saturated flow in N(R, S))"
        )
    _count("columnar_witnesses")
    from .index import BagIndex

    el = of_index(BagIndex.of(left))
    er = of_index(BagIndex.of(right))
    common = plan.common.attrs
    gl = el.grouping(common)
    gr = er.grouping(common)
    if not len(el.rows) and not len(er.rows):
        return {}
    left_cum = np.cumsum(el.mults[gl.order])
    right_cum = np.cumsum(er.mults[gr.order])
    breaks = np.union1d(left_cum, right_cum)
    cells = np.diff(breaks, prepend=0)
    lrows = gl.order[np.searchsorted(left_cum, breaks, side="left")]
    rrows = gr.order[np.searchsorted(right_cum, breaks, side="left")]
    emit = plan.emit
    left_rows, right_rows = el.rows, er.rows
    return {
        emit(left_rows[i] + right_rows[j]): mult
        for i, j, mult in zip(
            lrows.tolist(), rrows.tolist(), cells.tolist()
        )
    }


def try_join(left: "Bag", right: "Bag", plan: "JoinPlan"):
    """The columnar bag join table, or ``None`` to fall back.

    A sort-merge group join: intersect the two sides' sorted distinct
    common keys, then expand each matched block's cartesian product
    with arange/repeat arithmetic — multiplicity products come from two
    fancy-indexed gathers and one elementwise multiply.
    """
    from .index import BagIndex

    el = of_index(BagIndex.of(left))
    if el is None:
        return None
    er = of_index(BagIndex.of(right))
    if er is None:
        return None
    if el.total * er.total >= (1 << 63):
        # a single output multiplicity is bounded by (and can reach)
        # the product of two row mults; stay exact via the row path.
        return None
    _count("columnar_joins")
    common = plan.common.attrs
    gl = el.grouping(common)
    gr = er.grouping(common)
    n_l, n_r = len(el.rows), len(er.rows)
    if gl.keys is None:  # disjoint schemas: one all-pairs block
        match_l = np.zeros(1, dtype=np.int64)
        match_r = np.zeros(1, dtype=np.int64)
    else:
        _, match_l, match_r = np.intersect1d(
            gl.keys, gr.keys, assume_unique=True, return_indices=True
        )
        if not len(match_l):
            return {}
    ends_l = np.concatenate((gl.starts[1:], [n_l]))
    ends_r = np.concatenate((gr.starts[1:], [n_r]))
    sizes_l = (ends_l - gl.starts)[match_l]
    sizes_r = (ends_r - gr.starts)[match_r]
    blocks = sizes_l * sizes_r
    offsets = np.concatenate(([0], np.cumsum(blocks)))
    total = int(offsets[-1])
    pos = np.arange(total, dtype=np.int64) - np.repeat(
        offsets[:-1], blocks
    )
    width = np.repeat(sizes_r, blocks)
    in_l = pos // width
    in_r = pos - in_l * width
    lrows = gl.order[np.repeat(gl.starts[match_l], blocks) + in_l]
    rrows = gr.order[np.repeat(gr.starts[match_r], blocks) + in_r]
    prods = el.mults[lrows] * er.mults[rrows]
    emit = plan.emit
    left_rows, right_rows = el.rows, er.rows
    # The union row determines its (left, right) pair, so emissions
    # never collide and no addition pass is needed.
    return {
        emit(left_rows[i] + right_rows[j]): mult
        for i, j, mult in zip(
            lrows.tolist(), rrows.tolist(), prods.tolist()
        )
    }


# -- relations (set semantics) -----------------------------------------


class ColumnarRelation:
    """Code columns + cached sorted key arrays for one immutable
    :class:`Relation` — just enough structure for membership masks."""

    __slots__ = ("attrs", "cols", "rows", "_keys", "_key_sets")

    FROZEN_FIELDS = ("cols", "rows")

    def __init__(self, attrs, cols, rows) -> None:
        self.attrs = attrs
        self.cols = cols
        self.rows = rows
        self._keys: dict = {}      # target attrs -> per-row void keys
        self._key_sets: dict = {}  # target attrs -> sorted unique keys

    def keys(self, target_attrs: tuple) -> "np.ndarray":
        cached = self._keys.get(target_attrs)
        if cached is None:
            pos = tuple(self.attrs.index(a) for a in target_attrs)
            matrix = np.empty((len(self.rows), len(pos)), dtype=_BIG)
            for j, p in enumerate(pos):
                matrix[:, j] = self.cols[p]
            cached = _void_keys(matrix)
            self._keys[target_attrs] = cached
        return cached

    def key_set(self, target_attrs: tuple) -> "np.ndarray":
        cached = self._key_sets.get(target_attrs)
        if cached is None:
            cached = np.unique(self.keys(target_attrs))
            self._key_sets[target_attrs] = cached
        return cached


def of_relation_index(index) -> ColumnarRelation | None:
    """The cached columnar encoding of a :class:`RelationIndex`'s
    relation (same eligibility/caching contract as :func:`of_index`)."""
    if not enabled():
        return None
    cached = index._columnar
    if cached is not None:
        return None if cached is _INELIGIBLE else cached
    relation = index._relation
    rows = relation._rows
    if len(rows) < MIN_ROWS:
        _mark_ineligible(index)
        return None
    _count("encodings")
    row_list = list(rows)
    attrs = relation._schema.attrs
    cols = [
        _interner(attr).encode([row[i] for row in row_list])
        for i, attr in enumerate(attrs)
    ]
    encoded = ColumnarRelation(attrs, cols, row_list)
    if sanitizer_active():
        for col in encoded.cols:
            freeze_array(col)
        encoded.rows = freeze_rows(encoded.rows)
    return _publish(index, encoded)


def try_semijoin(r: "Relation", s: "Relation") -> list | None:
    """The semijoin filter r |>< s as a membership mask (binary search
    of the probe side's cached sorted unique keys), or ``None`` when
    either side is ineligible."""
    from .index import RelationIndex

    er = of_relation_index(RelationIndex.of(r))
    if er is None:
        return None
    es = of_relation_index(RelationIndex.of(s))
    if es is None:
        return None
    _count("columnar_semijoins")
    common = (r._schema & s._schema).attrs
    if not common:
        return list(er.rows) if len(es.rows) else []
    keys = er.keys(common)
    allowed = es.key_set(common)
    if not len(allowed):
        return []
    idx = np.searchsorted(allowed, keys)
    idx_clipped = np.minimum(idx, len(allowed) - 1)
    mask = allowed[idx_clipped] == keys
    rows = er.rows
    return [rows[i] for i in np.flatnonzero(mask).tolist()]


# -- fingerprints -------------------------------------------------------


def sum_u128(terms: Sequence[int]) -> int:
    """The commutative mod-2**128 sum of row terms as one array
    reduction: split each 128-bit term into four little-endian 32-bit
    limbs, sum the limb columns in uint64 (exact for fewer than 2**31
    terms), and recombine with carries folded in by the shifts."""
    buf = b"".join(term.to_bytes(16, "little") for term in terms)
    limbs = np.frombuffer(buf, dtype="<u4").reshape(-1, 4)
    sums = limbs.sum(axis=0, dtype=np.uint64)
    total = 0
    for limb in range(3, -1, -1):
        total = (total << 32) + int(sums[limb])
    return total & ((1 << 128) - 1)


# -- live deltas --------------------------------------------------------


class ColumnarDelta:
    """Batched columnar maintenance for one mutable
    :class:`~repro.engine.live.LiveBag`.

    Row updates land as O(1) bookkeeping — multiplicity adjustments
    write straight into the mult vector (copy-on-write when a snapshot
    shares it), inserts stage in a pending dict — and
    :meth:`snapshot` materializes them in batch: staged rows are
    encoded and appended via array concatenation, and rows deleted to
    zero are masked out (with a full compaction once more than a
    quarter of the array is dead, so storage tracks the live size).

    Totals past ``MAX_TOTAL`` disable the delta permanently (the handle
    simply stays on the row kernels); handles smaller than ``MIN_ROWS``
    stay pending-only and cost nothing.
    """

    __slots__ = (
        "attrs", "cols", "mults", "rows", "loc", "dead", "total",
        "pending", "_shared", "disabled",
    )

    # `rows` may alias a live snapshot's list (the `_shared` branch of
    # snapshot()): rebind only, never extend/append in place (RL03 —
    # the PR 6 aliasing bug).  `mults` is *copy-on-write* instead
    # (update() clones before writing while shared), so it is
    # deliberately not declared frozen.
    FROZEN_FIELDS = ("rows",)

    def __init__(self, attrs, mults: dict) -> None:
        self.attrs = attrs
        self.cols: list = []
        self.mults = None
        self.rows: list = []
        self.loc: dict = {}
        self.dead = 0
        self.pending: dict = dict(mults)
        self._shared = False
        self.disabled = np is None
        total = 0
        for mult in mults.values():
            total += mult
        self.total = total
        if total > MAX_TOTAL:
            self._disable()

    def _disable(self) -> None:
        self.disabled = True
        self.cols = []
        self.mults = None
        self.rows = []
        self.loc = {}
        self.pending = {}

    def update(self, row: tuple, new: int) -> None:
        """Record ``row`` now having multiplicity ``new`` (0 = gone)."""
        if self.disabled:
            return
        index = self.loc.get(row)
        if index is None:
            old = self.pending.get(row, 0)
        else:
            old = int(self.mults[index])
        self.total += new - old
        if self.total > MAX_TOTAL:
            self._disable()
            return
        if index is None:
            if new:
                self.pending[row] = new
            else:
                self.pending.pop(row, None)
            return
        if self._shared:
            # a live snapshot aliases the mult vector; never mutate it
            self.mults = self.mults.copy()
            self._shared = False
        if new == 0 and old:
            self.dead += 1
        elif old == 0 and new:
            self.dead -= 1
        self.mults[index] = new

    def _materialize(self) -> None:
        if not self.pending:
            return
        fresh = self.pending
        self.pending = {}
        n = len(fresh)
        encoded = encode_rows(
            self.attrs, fresh.keys(), fresh.values(), n, 0
        )
        base = len(self.rows)
        if base:
            self.cols = [
                np.concatenate((old, new))
                for old, new in zip(self.cols, encoded.cols)
            ]
            self.mults = np.concatenate((self.mults, encoded.mults))
        else:
            self.cols = encoded.cols
            self.mults = encoded.mults
        self._shared = False
        # rebind, never extend in place: a live snapshot may alias rows
        self.rows = self.rows + encoded.rows
        for offset, row in enumerate(encoded.rows):
            self.loc[row] = base + offset

    def _compact(self) -> None:
        keep = self.mults > 0
        self.cols = [col[keep] for col in self.cols]
        self.mults = self.mults[keep]
        self._shared = False
        kept_rows = [
            row for row, alive in zip(self.rows, keep.tolist()) if alive
        ]
        self.rows = kept_rows
        self.loc = {row: i for i, row in enumerate(kept_rows)}
        self.dead = 0

    def snapshot(self) -> ColumnarBag | None:
        """The current contents as a :class:`ColumnarBag` for the
        handle's immutable snapshot, or ``None`` (stay on row kernels)."""
        if self.disabled or not enabled():
            return None
        live = len(self.loc) - self.dead + len(self.pending)
        if live < MIN_ROWS:
            return None
        self._materialize()
        if self.dead > max(64, len(self.rows) // 4):
            self._compact()
        if self.dead:
            keep = self.mults > 0
            cols = [col[keep] for col in self.cols]
            mults = self.mults[keep]
            rows = [
                row for row, alive in zip(self.rows, keep.tolist())
                if alive
            ]
        else:
            self._shared = True
            if sanitizer_active():
                # the snapshot aliases our arrays/rows from here on:
                # freeze them so any in-place write (ours or the
                # snapshot's) trips instead of corrupting silently.
                # update() copies `mults` before writing while shared,
                # and a .copy() of a frozen array is writable again.
                self.cols = [freeze_array(col) for col in self.cols]
                self.mults = freeze_array(self.mults)
                self.rows = freeze_rows(self.rows)
            cols, mults, rows = self.cols, self.mults, self.rows
        return _freeze_bag(
            ColumnarBag(self.attrs, cols, mults, rows, self.total)
        )
