"""Per-instance index caches for bags and relations.

The seed rebuilt the same bucket dictionaries over and over: every
``bag_join``, every ``build_network``, every semijoin of a full-reducer
pass re-grouped an unchanged bag's rows by the same projection key.
Bags and relations are immutable, so that work is cacheable — a
:class:`BagIndex` (resp. :class:`RelationIndex`) lazily groups an
instance's rows per target schema and memoizes the result *on the
instance itself* (a dedicated slot), so the cache lives and dies with
the object and never needs invalidation.

Invariants:

* an index never outlives its instance, and an instance has at most one
  index (:meth:`BagIndex.of` is the only constructor call site);
* everything cached here is a pure function of the instance's rows —
  marginals, buckets, key sets, the deterministic row order;
* cached marginal bags are themselves ordinary immutable bags, so index
  chains (marginal-of-marginal) memoize transparently.

The classes touch ``_mults`` / ``_rows`` directly: they are the storage
layer's companion module, not external consumers.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from ..analysis.registry import register_lock
from ..core.schema import Schema, projection_plan
from . import columnar, kernels

# Guards first-use index creation: two engine worker threads touching
# the same instance must end up sharing one index, not build two and
# discard one's memos.  The per-target memo dicts inside an index stay
# unguarded — racing fills compute equal values and dict stores are
# atomic, so the worst case is one duplicated computation.
_CREATE_LOCK = register_lock(
    "_CREATE_LOCK", threading.Lock(), tier="engine"
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..core.bags import Bag
    from ..core.relations import Relation


class BagIndex:
    """Lazy, memoized access structures for one immutable :class:`Bag`.

    Also the home of the bag's content fingerprint
    (:mod:`repro.engine.fingerprint`): computed once, cached in the
    ``_fingerprint`` slot, and — because the fingerprint registry lets
    value-equal bags *adopt* each other's index — potentially shared by
    every bag with the same content (hence the ``__weakref__`` slot:
    the registry holds indexes weakly).

    The ``_columnar`` slot caches the bag's dictionary encoding
    (:mod:`repro.engine.columnar`) under the same sharing regime, so
    the encoding is effectively keyed by content fingerprint: two
    value-equal bags encode once.
    """

    __slots__ = (
        "_bag",
        "_marginals",
        "_buckets",
        "_key_sets",
        "_sorted",
        "_fingerprint",
        "_columnar",
        "__weakref__",
    )

    def __init__(self, bag: "Bag") -> None:
        self._bag = bag
        self._marginals: dict[tuple, "Bag"] = {}
        self._buckets: dict[tuple, dict] = {}
        self._key_sets: dict[tuple, set] = {}
        self._sorted: list[tuple] | None = None
        self._fingerprint: int | None = None
        self._columnar = None

    @staticmethod
    def of(bag: "Bag") -> "BagIndex":
        """The bag's index, created on first use and cached on the bag."""
        index = bag._index
        if index is None:
            with _CREATE_LOCK:
                index = bag._index
                if index is None:
                    index = bag._index = BagIndex(bag)
        return index

    @property
    def bag(self) -> "Bag":
        return self._bag

    def marginal(self, target: Schema) -> "Bag":
        """The cached marginal R[Z] (Equation 2); ``R[X] is R``."""
        bag = self._bag
        if target == bag._schema:
            return bag
        key = target.attrs
        cached = self._marginals.get(key)
        if cached is None:
            table = columnar.try_marginal(self, key)
            if table is None:
                columnar.count_row("marginals")
                table = kernels.marginal_table(
                    bag._mults.items(), bag._schema.attrs, key
                )
            cached = type(bag)._from_clean(target, table)
            self._marginals[key] = cached
        return cached

    def buckets(self, target: Schema) -> dict[tuple, list[tuple[tuple, int]]]:
        """Support rows with multiplicities, grouped by their projection
        onto ``target`` — the build side of joins and networks."""
        key = target.attrs
        cached = self._buckets.get(key)
        if cached is None:
            plan = projection_plan(self._bag._schema.attrs, key)
            cached = kernels.group_items(self._bag._mults.items(), plan)
            self._buckets[key] = cached
        return cached

    def key_set(self, target: Schema) -> set:
        """The projection of the support onto ``target`` as a set of raw
        keys — the probe side of semijoins."""
        key = target.attrs
        cached = self._key_sets.get(key)
        if cached is None:
            plan = projection_plan(self._bag._schema.attrs, key)
            cached = kernels.project_key_set(self._bag._mults, plan)
            self._key_sets[key] = cached
        return cached

    def sorted_rows(self) -> list[tuple]:
        """The support rows in the deterministic ``repr`` order, computed
        once (the seed re-sorted on every ``Bag.tuples()`` call)."""
        if self._sorted is None:
            self._sorted = sorted(self._bag._mults, key=repr)
        return self._sorted


class RelationIndex:
    """Lazy, memoized access structures for one immutable
    :class:`Relation` — the set-semantics sibling of :class:`BagIndex`,
    shared by the full-reducer and Yannakakis passes."""

    __slots__ = (
        "_relation",
        "_projections",
        "_buckets",
        "_key_sets",
        "_fingerprint",
        "_columnar",
        "__weakref__",
    )

    def __init__(self, relation: "Relation") -> None:
        self._relation = relation
        self._projections: dict[tuple, "Relation"] = {}
        self._buckets: dict[tuple, dict] = {}
        self._key_sets: dict[tuple, frozenset] = {}
        self._fingerprint: int | None = None
        self._columnar = None

    @staticmethod
    def of(relation: "Relation") -> "RelationIndex":
        index = relation._index
        if index is None:
            with _CREATE_LOCK:
                index = relation._index
                if index is None:
                    index = relation._index = RelationIndex(relation)
        return index

    def project(self, target: Schema) -> "Relation":
        """The cached projection R[Z]; ``R[X] is R``."""
        relation = self._relation
        if target == relation._schema:
            return relation
        key = target.attrs
        cached = self._projections.get(key)
        if cached is None:
            cached = type(relation)._from_clean(
                target, frozenset(self.key_set(target))
            )
            self._projections[key] = cached
        return cached

    def buckets(self, target: Schema) -> dict[tuple, list[tuple]]:
        key = target.attrs
        cached = self._buckets.get(key)
        if cached is None:
            plan = projection_plan(self._relation._schema.attrs, key)
            cached = kernels.group_rows(self._relation._rows, plan)
            self._buckets[key] = cached
        return cached

    def key_set(self, target: Schema) -> frozenset:
        key = target.attrs
        cached = self._key_sets.get(key)
        if cached is None:
            plan = projection_plan(self._relation._schema.attrs, key)
            cached = frozenset(
                kernels.project_key_set(self._relation._rows, plan)
            )
            self._key_sets[key] = cached
        return cached
