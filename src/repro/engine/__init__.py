"""The columnar bag-execution engine.

Layering (lowest first):

* :mod:`repro.engine.kernels` — plan-compiled projection / marginal /
  hash-join / semi-join primitives over raw value tuples;
* :mod:`repro.engine.index` — per-instance lazy bucket/marginal caches
  (:class:`BagIndex`, :class:`RelationIndex`);
* :mod:`repro.engine.session` — the :class:`Engine` facade: memoized
  marginal/join/consistency queries (bounded LRU cache, pinning,
  per-bag invalidation) plus the batched entry points
  (``are_consistent_many``, ``witness_many``, ``global_check_many``,
  each with a ``parallelism=`` knob);
* :mod:`repro.engine.live` — :class:`LiveEngine`: mutable
  :class:`LiveBag` handles whose updates bump O(1) incremental pair
  checkers and invalidate only the cache entries they touch;
* :mod:`repro.engine.reference` — the seed's pre-engine loops, kept as
  the oracle for cross-check tests and speedup benchmarks.

The core storage classes (:class:`repro.core.bags.Bag`,
:class:`repro.core.relations.Relation`) import the kernels, and the
session imports the core classes, so this package initializer must stay
import-light: the facade names are exported lazily (PEP 562).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .index import BagIndex, RelationIndex
    from .live import LiveBag, LiveEngine
    from .live_global import LiveGlobalWitness
    from .session import Engine, EngineStats, VerdictStore

__all__ = [
    "Engine",
    "EngineStats",
    "VerdictStore",
    "LiveEngine",
    "LiveBag",
    "LiveGlobalWitness",
    "BagIndex",
    "RelationIndex",
    "kernels",
]

_LAZY = {
    "Engine": ("repro.engine.session", "Engine"),
    "EngineStats": ("repro.engine.session", "EngineStats"),
    "VerdictStore": ("repro.engine.session", "VerdictStore"),
    "LiveEngine": ("repro.engine.live", "LiveEngine"),
    "LiveBag": ("repro.engine.live", "LiveBag"),
    "LiveGlobalWitness": ("repro.engine.live_global", "LiveGlobalWitness"),
    "BagIndex": ("repro.engine.index", "BagIndex"),
    "RelationIndex": ("repro.engine.index", "RelationIndex"),
}

_MODULES = (
    "kernels",
    "index",
    "fingerprint",
    "session",
    "executors",
    "jobs",
    "live",
    "live_global",
    "reference",
)


def __getattr__(name: str):
    import importlib

    if name in _MODULES:
        return importlib.import_module(f"repro.engine.{name}")
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    return getattr(importlib.import_module(module_name), attr)
