"""Content fingerprints: canonical hashes for schemas, bags, relations.

The PR-1/PR-2 engine keyed every cached result on *object identity*
(``id()``), so two value-equal bags — the same ledger parsed by two
requests, the same suite built twice, a bag rebuilt after an undo —
never shared a verdict.  This module gives every schema, bag, and
relation a deterministic **content fingerprint** so caches can be keyed
on *what a bag is* rather than *which object holds it*:

* fingerprints are pure functions of the value: schema attributes, and
  the (row, multiplicity) multiset for bags (row set for relations);
* they are **order-insensitive over rows** — the per-row digests are
  combined with a commutative modular sum, so insertion order, dict
  order, and construction route (``from_pairs``, ``KRelation`` round
  trips, kernel outputs) cannot matter;
* they are **multiplicity-aware** — the multiplicity is hashed into
  each row's term, so bags with equal supports but different counts
  never share a fingerprint;
* they are **process-independent** — digests are BLAKE2b over a
  type-qualified ``repr`` encoding, never the salted builtin ``hash``,
  so fingerprints computed in a worker process or another daemon match
  the parent's (the process executor and ``repro serve`` depend on
  this);
* they support **O(1) incremental maintenance** — changing one row's
  multiplicity shifts the commutative sum by a two-term delta
  (:func:`shift_content`), which is how :class:`repro.engine.live.LiveBag`
  keeps its fingerprint current across update streams without rescans.

Fingerprints are 128-bit integers.  A collision requires two unequal
values whose digest sums agree mod 2**128; we treat that as impossible
in practice, but the index-sharing path (:func:`of_bag`) still verifies
value equality before letting two bags share one :class:`BagIndex`.

The computed fingerprint is cached on the instance's index (one content
scan per object lifetime); :func:`seed` installs an externally-known
fingerprint — the live engine seeds snapshots from its incrementally
maintained sum, and the process executor seeds shipped payloads so
workers never rescan.
"""

from __future__ import annotations

import threading
import weakref
from functools import lru_cache
from hashlib import blake2b
from typing import TYPE_CHECKING, Iterable, Sequence

from ..analysis.registry import register_lock
from . import columnar
from .index import BagIndex, RelationIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.bags import Bag
    from ..core.relations import Relation
    from ..core.schema import Schema

__all__ = [
    "MASK",
    "content_sum",
    "of_bag",
    "of_collection",
    "of_relation",
    "of_schema",
    "row_term",
    "seed",
    "seed_with_encoding",
    "shift_content",
]

MASK = (1 << 128) - 1

# fingerprint -> the index already serving a bag/relation with that
# content; value-equal instances adopt it so marginals, buckets, and
# sorted orders are computed once per *value*, not once per object.
_BAG_INDEXES: "weakref.WeakValueDictionary[int, BagIndex]"
_BAG_INDEXES = weakref.WeakValueDictionary()
_RELATION_INDEXES: "weakref.WeakValueDictionary[int, RelationIndex]"
_RELATION_INDEXES = weakref.WeakValueDictionary()
_REGISTRY_LOCK = register_lock(
    "_REGISTRY_LOCK", threading.Lock(), tier="engine",
    slots=("_fingerprint",),
    containers=("_BAG_INDEXES", "_RELATION_INDEXES"),
)


def _digest(payload: bytes) -> int:
    return int.from_bytes(blake2b(payload, digest_size=16).digest(), "big")


def _encode_value(value: object) -> str:
    """A stable, type-qualified encoding of one attribute value.

    ``repr`` distinguishes ``1`` from ``"1"`` already; prefixing the
    type name also separates values whose reprs collide across types
    (e.g. ``True`` vs a hypothetical class repr).  Deterministic across
    processes for every built-in scalar and for any type with a
    value-based ``repr``.
    """
    return f"{type(value).__qualname__}:{value!r}"


@lru_cache(maxsize=65536)
def _attrs_fingerprint(attrs: tuple) -> int:
    payload = "schema|" + "|".join(_encode_value(a) for a in attrs)
    return _digest(payload.encode("utf-8", "surrogatepass"))


def of_schema(schema: "Schema") -> int:
    """The schema's content fingerprint (canonical attribute order, so
    ``Schema(["A","B"])`` and ``Schema(["B","A"])`` agree)."""
    return _attrs_fingerprint(schema.attrs)


@lru_cache(maxsize=262144)
def _row_term_cached(encoded: str) -> int:
    return _digest(encoded.encode("utf-8", "surrogatepass"))


def row_term(row: tuple, mult: int) -> int:
    """The commutative-sum term for one ``(row, multiplicity)`` entry.

    Only defined for positive multiplicities — a stored bag never holds
    a zero row, and the incremental shift skips the zero side.
    """
    encoded = "row|" + "|".join(_encode_value(v) for v in row) + f"|#{mult}"
    return _row_term_cached(encoded)


def content_sum(items: Iterable[tuple[tuple, int]]) -> int:
    """The order-insensitive combination of every row term (mod 2**128).

    The per-row BLAKE2b terms are unchanged in every backend — only the
    modular sum vectorizes (four 32-bit limb columns, one array
    reduction), so fingerprints computed with and without numpy, in
    workers and in daemons, are identical bit for bit.
    """
    size = len(items) if hasattr(items, "__len__") else None
    if size is not None and _vector_eligible(size):
        columnar.count_columnar("fingerprints")
        return columnar.sum_u128([row_term(row, mult) for row, mult in items])
    columnar.count_row("fingerprints")
    total = 0
    for row, mult in items:
        total += row_term(row, mult)
    return total & MASK


def _vector_eligible(size: int) -> bool:
    # sum_u128's uint64 limb sums are exact for fewer than 2**31 terms
    return columnar.enabled() and columnar.MIN_ROWS <= size < (1 << 31)


def shift_content(content: int, row: tuple, old: int, new: int) -> int:
    """The O(1) incremental update: move ``row`` from multiplicity
    ``old`` to ``new`` (either side may be zero = absent)."""
    if old > 0:
        content -= row_term(row, old)
    if new > 0:
        content += row_term(row, new)
    return content & MASK


def bag_fingerprint(schema_fp: int, content: int, support_size: int) -> int:
    """Combine the maintained parts into the final bag fingerprint."""
    return _digest(b"bag|%d|%d|%d" % (schema_fp, support_size, content))


def relation_fingerprint(schema_fp: int, content: int, size: int) -> int:
    return _digest(b"rel|%d|%d|%d" % (schema_fp, size, content))


def _relation_content(rows: Iterable[tuple]) -> int:
    if hasattr(rows, "__len__") and _vector_eligible(len(rows)):
        return content_sum([(row, 1) for row in rows])
    return content_sum((row, 1) for row in rows)


def of_bag(bag: "Bag") -> int:
    """The bag's content fingerprint, computed once and cached on its
    :class:`BagIndex`.

    First computation also consults the shared-index registry: if a
    value-equal bag already owns an index, this bag **adopts** it (after
    an equality check guarding against fingerprint collisions), so the
    two share cached marginals, buckets, and row orders from then on.
    """
    index = BagIndex.of(bag)
    fp = index._fingerprint
    if fp is not None:
        return fp
    fp = bag_fingerprint(
        of_schema(bag._schema),
        content_sum(bag._mults.items()),
        len(bag._mults),
    )
    with _REGISTRY_LOCK:
        index._fingerprint = fp
        shared = _BAG_INDEXES.get(fp)
        if shared is not None and shared is not index:
            if shared._bag == bag:
                bag._index = shared
            return fp
        _BAG_INDEXES[fp] = index
    return fp


def of_relation(relation: "Relation") -> int:
    """The relation's content fingerprint (cached + index sharing, the
    set-semantics sibling of :func:`of_bag`)."""
    index = RelationIndex.of(relation)
    fp = index._fingerprint
    if fp is not None:
        return fp
    fp = relation_fingerprint(
        of_schema(relation._schema),
        _relation_content(relation._rows),
        len(relation._rows),
    )
    with _REGISTRY_LOCK:
        index._fingerprint = fp
        shared = _RELATION_INDEXES.get(fp)
        if shared is not None and shared is not index:
            if shared._relation == relation:
                relation._index = shared
            return fp
        _RELATION_INDEXES[fp] = index
    return fp


def of_collection(bags: Sequence["Bag"]) -> tuple[int, ...]:
    """Fingerprints of a bag sequence, in order (collection-level cache
    keys preserve order, exactly as the identity-keyed keys did)."""
    return tuple(of_bag(bag) for bag in bags)


def seed(bag: "Bag", fp: int) -> "Bag":
    """Install a fingerprint known from elsewhere — the live engine's
    incrementally maintained sum, or a process payload's precomputed
    value — so the bag's first engine query skips the content scan.
    Registers the bag's index for sharing like :func:`of_bag`; returns
    the bag for chaining."""
    index = BagIndex.of(bag)
    if index._fingerprint is None:
        with _REGISTRY_LOCK:
            index._fingerprint = fp
            shared = _BAG_INDEXES.get(fp)
            if shared is not None and shared is not index:
                if shared._bag == bag:
                    bag._index = shared
                return bag
            _BAG_INDEXES[fp] = index
    return bag


def seed_with_encoding(bag: "Bag", fp: int, encoded) -> "Bag":
    """:func:`seed`, then publish a ready-made columnar encoding — a
    wire frame's remapped twin — onto the bag's index.  The order
    matters: seeding may swap ``bag._index`` for a value-equal peer's
    shared index, and the encoding must land on the index the engine
    will actually consult."""
    seed(bag, fp)
    if encoded is not None:
        columnar.adopt_encoding(BagIndex.of(bag), encoded)
    return bag
