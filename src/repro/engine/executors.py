"""Pluggable execution backends for the batched engine entry points.

Three backends, selected by name (``backend=`` on the ``*_many``
methods, ``--backend`` on ``repro batch`` / ``repro serve``):

* ``serial`` — plain loop, no pools.  The default when no parallelism
  is requested.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor` over
  the pure kernels.  Workers share the engine's verdict store, so this
  backend shines on cache-heavy workloads (overlapping pairs, repeated
  suites) but cannot speed up CPU-bound misses: the interpreter lock
  serializes them.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  The engine pre-filters the batch against its store, ships the
  *misses* as fingerprinted job payloads (bags pickled without their
  per-process indexes, fingerprints seeded on arrival so workers never
  rescan), and each worker runs the batch through a private engine.
  Workers return their store's **verdict deltas** — every
  ``(key, value, participant_fps)`` they computed — which the parent
  merges back into the shared store; fingerprint keys are
  process-independent, so a final local replay of the whole batch is
  pure hits.  This is the only backend that scales the CPU-bound
  global checks (Theorem 4 search instances) across cores.

``backend=None`` preserves the PR-2 contract: serial unless
``parallelism > 1``, which selects threads.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Sequence

from ..errors import InconsistentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.bags import Bag
    from .session import Engine

__all__ = [
    "BACKENDS",
    "SerialExecutor",
    "ThreadExecutor",
    "is_process_backend",
    "resolve_executor",
    "run_process_batch",
]

BACKENDS = ("serial", "thread", "process")


def _default_workers(parallelism: int | None) -> int:
    if parallelism is not None:
        if parallelism < 1:
            raise ValueError(
                f"parallelism must be positive, got {parallelism}"
            )
        return parallelism
    return os.cpu_count() or 1


class SerialExecutor:
    """The no-pool baseline: apply ``fn`` in submission order."""

    name = "serial"

    def run(self, fn, items: list) -> list:
        return [fn(item) for item in items]


class ThreadExecutor:
    """A bounded thread pool.  The kernels are pure and the verdict
    store is lock-protected, so workers share hits; two workers racing
    on the same miss at worst compute it twice (deterministic results —
    one entry survives)."""

    name = "thread"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"parallelism must be positive, got {workers}")
        self.workers = workers

    def run(self, fn, items: list) -> list:
        if self.workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(items))
        ) as pool:
            return list(pool.map(fn, items))


def is_process_backend(backend: str | None) -> bool:
    if backend is not None and backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose one of {BACKENDS}"
        )
    return backend == "process"


def resolve_executor(
    backend: str | None, parallelism: int | None, n_items: int
):
    """The in-process executor for a batch (``process`` is handled by
    :func:`run_process_batch` before this is consulted)."""
    if backend is None:
        # Legacy contract: parallelism alone selects threads.
        if parallelism is not None and parallelism < 1:
            raise ValueError(
                f"parallelism must be positive, got {parallelism}"
            )
        if parallelism is None or parallelism == 1:
            return SerialExecutor()
        return ThreadExecutor(parallelism)
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(_default_workers(parallelism))
    raise ValueError(
        f"unknown backend {backend!r}; choose one of {BACKENDS}"
    )


# -- the process backend ------------------------------------------------
#
# Payload shape per job kind (everything picklable; fingerprints ride
# along so workers seed instead of rescanning):
#   "consistent"/"witness": (left_bag, left_fp, right_bag, right_fp)
#   "global":               ([bags], (fps...))


def _freeze_pair(pair: "tuple[Bag, Bag]"):
    from . import fingerprint

    left, right = pair
    return (left, fingerprint.of_bag(left),
            right, fingerprint.of_bag(right))


def _freeze_collection(bags: "Sequence[Bag]"):
    from . import fingerprint

    return (list(bags), fingerprint.of_collection(bags))


def _consistent_key(lfp: int, rfp: int) -> tuple:
    return (
        ("consistent", lfp, rfp) if lfp <= rfp else ("consistent", rfp, lfp)
    )


def _job_keys(kind: str, frozen, minimal: bool, method: str) -> list[tuple]:
    """The store keys a local replay of this job will probe — the
    pre-filter that keeps already-answered jobs off the wire."""
    if kind == "consistent":
        _, lfp, _, rfp = frozen
        return [_consistent_key(lfp, rfp)]
    if kind == "witness":
        _, lfp, _, rfp = frozen
        return [("witness", lfp, rfp, minimal)]
    _, fps = frozen
    return [("global", fps, method)]


def _worker_run(
    kind: str,
    payload: list,
    node_budget: int | None,
    minimal: bool,
    method: str,
):
    """Top-level (picklable) worker body: thaw the payload, run it
    through a private engine, and return the engine's verdict deltas."""
    from . import fingerprint
    from .session import Engine

    engine = Engine(node_budget=node_budget)
    if kind == "global":
        collections = []
        for bags, fps in payload:
            for bag, fp in zip(bags, fps):
                fingerprint.seed(bag, fp)
            collections.append(bags)
        engine.global_check_many(collections, method=method)
    else:
        pairs = []
        for left, lfp, right, rfp in payload:
            fingerprint.seed(left, lfp)
            fingerprint.seed(right, rfp)
            pairs.append((left, right))
        if kind == "consistent":
            engine.are_consistent_many(pairs)
        else:
            engine.witness_many(pairs, minimal=minimal)
    return engine.store.export()


def run_process_batch(
    engine: "Engine",
    kind: str,
    items: list,
    parallelism: int | None,
    minimal: bool = False,
    method: str = "auto",
) -> list:
    """Fan a batch's cache misses over worker processes, merge their
    verdict deltas into ``engine``'s store, then replay the whole batch
    locally (hits all the way down, preserving order, ``None``
    refusals, and exception behaviour)."""
    workers = _default_workers(parallelism)
    frozen = (
        [_freeze_collection(item) for item in items]
        if kind == "global"
        else [_freeze_pair(item) for item in items]
    )
    missing: list = []
    seen_keys: set[tuple] = set()
    for entry in frozen:
        keys = _job_keys(kind, entry, minimal, method)
        if any(engine.store.contains(key) for key in keys):
            continue
        key = keys[0]
        if key in seen_keys:
            continue  # duplicate job in one batch: ship it once
        seen_keys.add(key)
        missing.append(entry)
    if missing and workers > 1:
        from concurrent.futures import ProcessPoolExecutor

        n_chunks = min(workers, len(missing))
        chunks = [missing[i::n_chunks] for i in range(n_chunks)]
        with ProcessPoolExecutor(max_workers=n_chunks) as pool:
            futures = [
                pool.submit(
                    _worker_run,
                    kind,
                    chunk,
                    engine.node_budget,
                    minimal,
                    method,
                )
                for chunk in chunks
            ]
            for future in futures:
                engine.store.merge(future.result())
        # A persistent store makes merged worker deltas durable at the
        # batch boundary (no-op 0 for the in-memory store): a daemon
        # killed right after a process batch keeps those verdicts.
        engine.flush()
    # Replay locally: merged misses are hits; anything left (workers
    # disabled, or a racing invalidation) is computed here.
    if kind == "consistent":
        return [engine.are_consistent(left, right) for left, right in items]
    if kind == "witness":
        results = []
        for left, right in items:
            try:
                results.append(engine.witness(left, right, minimal=minimal))
            except InconsistentError:
                results.append(None)
        return results
    return [
        engine.global_check(collection, method=method)
        for collection in items
    ]
