"""Pluggable execution backends for the batched engine entry points.

Three backends, selected by name (``backend=`` on the ``*_many``
methods, ``--backend`` on ``repro batch`` / ``repro serve``):

* ``serial`` — plain loop, no pools.  The default when no parallelism
  is requested.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor` over
  the pure kernels.  Workers share the engine's verdict store, so this
  backend shines on cache-heavy workloads (overlapping pairs, repeated
  suites) but cannot speed up CPU-bound misses: the interpreter lock
  serializes them.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  The engine pre-filters the batch against its store, ships the
  *misses* as fingerprint-ref jobs over a per-batch bag table — each
  distinct bag travels once, as a shared-memory wire frame when its
  encoding is large enough (see ``SHM_MIN_BYTES``) and as a pickle
  otherwise; fingerprints are seeded on arrival so workers never
  rescan — and each worker runs the batch through a private engine.
  Workers return their store's **verdict deltas** — every
  ``(key, value, participant_fps)`` they computed — which the parent
  merges back into the shared store; fingerprint keys are
  process-independent, so a final local replay of the whole batch is
  pure hits.  This is the only backend that scales the CPU-bound
  global checks (Theorem 4 search instances) across cores.

``backend=None`` preserves the PR-2 contract: serial unless
``parallelism > 1``, which selects threads.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import TYPE_CHECKING

from ..analysis.registry import register_lock
from ..errors import InconsistentError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

# Process fan-out latency: the whole ship-misses/merge-deltas phase
# (zero-sample when every job is a hit — the pre-filter skipped it).
_PROCESS_HISTOGRAM = obs_metrics.REGISTRY.histogram(
    "repro_executor_process_seconds"
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.bags import Bag
    from .session import Engine

__all__ = [
    "BACKENDS",
    "SHM_MIN_BYTES",
    "SerialExecutor",
    "ThreadExecutor",
    "active_shm_segments",
    "is_process_backend",
    "resolve_executor",
    "run_process_batch",
    "set_wire_format",
]

BACKENDS = ("serial", "thread", "process")

# Payload transport for the process backend: "columnar" spills large
# encodings to shared memory (below), "json" ships pickles only (the
# --wire-format knob).  Plain module global: flipped by the CLI driver
# before any pool spins up, never under concurrency.
_WIRE_FORMAT = "columnar"

# Encodings smaller than this ride the pickle path: mapping a segment
# costs two syscalls per worker, which only amortizes on real arrays.
# Module attribute (read at call time) so tests can force tiny spills.
SHM_MIN_BYTES = 1 << 16


def set_wire_format(wire_format: str) -> None:
    """Select the process-backend payload transport (CLI knob)."""
    if wire_format not in ("json", "columnar"):
        raise ValueError(
            f"unknown wire_format {wire_format!r}; "
            "choose 'json' or 'columnar'"
        )
    global _WIRE_FORMAT
    _WIRE_FORMAT = wire_format


# Live spill segments, keyed by shm name.  The parent creates one per
# process batch and unlinks it in the batch's ``finally``; the registry
# exists so tests (and embedders) can assert nothing leaked.  Creation
# also registers with multiprocessing's resource tracker, which unlinks
# on hard parent death — the unlink-on-crash guarantee.
_ACTIVE_SEGMENTS: dict = {}
_SHM_LOCK = register_lock(
    "_SHM_LOCK", threading.Lock(), tier="store",
    containers=("_ACTIVE_SEGMENTS",),
)


def active_shm_segments() -> tuple[str, ...]:
    """Names of spill segments this process currently owns (empty
    outside a running process batch — the leak-check hook)."""
    with _SHM_LOCK:
        return tuple(_ACTIVE_SEGMENTS)


def _default_workers(parallelism: int | None) -> int:
    if parallelism is not None:
        if parallelism < 1:
            raise ValueError(
                f"parallelism must be positive, got {parallelism}"
            )
        return parallelism
    return os.cpu_count() or 1


class SerialExecutor:
    """The no-pool baseline: apply ``fn`` in submission order."""

    name = "serial"

    def run(self, fn, items: list) -> list:
        return [fn(item) for item in items]


class ThreadExecutor:
    """A bounded thread pool.  The kernels are pure and the verdict
    store is lock-protected, so workers share hits; two workers racing
    on the same miss at worst compute it twice (deterministic results —
    one entry survives)."""

    name = "thread"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"parallelism must be positive, got {workers}")
        self.workers = workers

    def run(self, fn, items: list) -> list:
        if self.workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        from concurrent.futures import ThreadPoolExecutor

        trace = obs_trace.current()
        if trace is not None:
            # Propagate the request trace into pool threads: contexts
            # cannot run concurrently, so each call re-sets the var
            # around the shared (lock-protected) trace object.
            inner = fn

            def fn(item):
                with obs_trace.activate(trace):
                    return inner(item)

        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(items))
        ) as pool:
            return list(pool.map(fn, items))


def is_process_backend(backend: str | None) -> bool:
    if backend is not None and backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose one of {BACKENDS}"
        )
    return backend == "process"


def resolve_executor(
    backend: str | None, parallelism: int | None, n_items: int
):
    """The in-process executor for a batch (``process`` is handled by
    :func:`run_process_batch` before this is consulted)."""
    if backend is None:
        # Legacy contract: parallelism alone selects threads.
        if parallelism is not None and parallelism < 1:
            raise ValueError(
                f"parallelism must be positive, got {parallelism}"
            )
        if parallelism is None or parallelism == 1:
            return SerialExecutor()
        return ThreadExecutor(parallelism)
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(_default_workers(parallelism))
    raise ValueError(
        f"unknown backend {backend!r}; choose one of {BACKENDS}"
    )


# -- the process backend ------------------------------------------------
#
# Jobs travel as fingerprint references; the bags themselves ship once
# per distinct fingerprint per batch, in a side table split two ways:
#   * large columnar-eligible bags: one shared-memory segment holding a
#     wire-format spill frame (workers map it read-only and decode only
#     the fingerprints their chunk references);
#   * everything else: plain pickles.
# Workers seed every fingerprint on arrival, so they never rescan.
# Job shapes: "consistent"/"witness" -> (left_fp, right_fp);
#             "global"               -> (fps...).


def _consistent_key(lfp: int, rfp: int) -> tuple:
    return (
        ("consistent", lfp, rfp) if lfp <= rfp else ("consistent", rfp, lfp)
    )


def _job_keys(kind: str, frozen, minimal: bool, method: str) -> list[tuple]:
    """The store keys a local replay of this job will probe — the
    pre-filter that keeps already-answered jobs off the wire."""
    if kind == "consistent":
        lfp, rfp = frozen
        return [_consistent_key(lfp, rfp)]
    if kind == "witness":
        lfp, rfp = frozen
        return [("witness", lfp, rfp, minimal)]
    return [("global", frozen, method)]


def _shm_module():
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - platform without shm
        return None
    return shared_memory


def _attach_segment(name: str):
    shared_memory = _shm_module()
    try:
        # track=False (3.13+): an attach must not register with the
        # worker's resource tracker — the parent owns the lifetime.
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _adopt_spill(shm_ref: tuple, needed: set) -> dict:
    """Worker side: map the parent's spill segment read-only, decode
    the needed fingerprints (owned copies), detach."""
    from . import wire

    if not needed:
        return {}
    name, nbytes = shm_ref
    segment = _attach_segment(name)
    try:
        table = wire.decode_bag_table(segment.buf[:nbytes], only=needed)
        wire.count_shm("segments_adopted")
        return table
    finally:
        # decode returns owned arrays/rows and its transient views die
        # with its frame; if it *raised*, the in-flight traceback can
        # still pin a view — suppress the BufferError rather than mask
        # the real error (the mapping dies with the worker anyway).
        with contextlib.suppress(BufferError):
            segment.close()


def _build_spill(bags_by_fp: dict):
    """Parent side: partition a batch's distinct bags into one spill
    frame (encodings at least ``SHM_MIN_BYTES``) and a pickle
    remainder.  Returns ``(segment, (name, nbytes) or None, pickled)``;
    any shm failure falls back to pickling everything."""
    pickled = dict(bags_by_fp)
    if _WIRE_FORMAT != "columnar" or _shm_module() is None:
        return None, None, pickled
    from . import wire

    entries = []
    for fp, bag in bags_by_fp.items():
        # cheap size floor before touching the encoder: the code matrix
        # alone is n x attrs x 8 bytes, so a bag that cannot clear the
        # floor is pickled without ever paying for an export
        estimate = len(bag) * len(bag.schema.attrs) * 8
        if estimate < SHM_MIN_BYTES:
            continue
        port = wire.portable_bag(bag)
        if port is not None and port.nbytes >= SHM_MIN_BYTES:
            entries.append((fp, port))
    if not entries:
        return None, None, pickled
    frame = wire.encode_bag_table(entries)
    shared_memory = _shm_module()
    try:
        segment = shared_memory.SharedMemory(create=True, size=len(frame))
    except OSError:  # /dev/shm unavailable or full: pickle everything
        return None, None, pickled
    segment.buf[:len(frame)] = frame
    with _SHM_LOCK:
        _ACTIVE_SEGMENTS[segment.name] = segment
    wire.count_shm("segments_created")
    wire.count_shm("bytes_spilled", len(frame))
    for fp, _ in entries:
        del pickled[fp]
    return segment, (segment.name, len(frame)), pickled


def _release_segment(segment) -> None:
    """Parent side: drop the registry entry, close, unlink.  Runs in
    the batch's ``finally`` — no worker reads past this point (the pool
    has been joined)."""
    with _SHM_LOCK:
        _ACTIVE_SEGMENTS.pop(segment.name, None)
    with contextlib.suppress(BufferError):
        segment.close()
    with contextlib.suppress(FileNotFoundError):
        segment.unlink()


def _worker_run(
    kind: str,
    jobs: list,
    pickled: dict,
    shm_ref: tuple | None,
    node_budget: int | None,
    minimal: bool,
    method: str,
    trace_id: str | None = None,
):
    """Top-level (picklable) worker body: thaw the bag table (pickles +
    spill segment), run the fingerprint-ref jobs through a private
    engine, and return the engine's verdict deltas plus the worker's
    span deltas (``trace_id`` rides in with the payload; spans ride
    back and merge like verdicts)."""
    from . import fingerprint
    from .session import Engine

    with obs_trace.worker_trace(trace_id) as worker_span_sink:
        table = {
            fp: fingerprint.seed(bag, fp) for fp, bag in pickled.items()
        }
        if shm_ref is not None:
            needed = set()
            for job in jobs:
                needed.update(job)
            table.update(_adopt_spill(shm_ref, needed - set(table)))
        engine = Engine(node_budget=node_budget)
        start = time.perf_counter()
        if kind == "global":
            engine.global_check_many(
                [[table[fp] for fp in fps] for fps in jobs], method=method
            )
        else:
            pairs = [(table[lfp], table[rfp]) for lfp, rfp in jobs]
            if kind == "consistent":
                engine.are_consistent_many(pairs)
            else:
                engine.witness_many(pairs, minimal=minimal)
        if worker_span_sink is not None:
            worker_span_sink.add_span(
                "worker.chunk", start, time.perf_counter() - start,
                kind=kind, jobs=len(jobs),
            )
    spans = (
        worker_span_sink.export_spans()
        if worker_span_sink is not None else []
    )
    return engine.store.export(), spans


def run_process_batch(
    engine: "Engine",
    kind: str,
    items: list,
    parallelism: int | None,
    minimal: bool = False,
    method: str = "auto",
) -> list:
    """Fan a batch's cache misses over worker processes, merge their
    verdict deltas into ``engine``'s store, then replay the whole batch
    locally (hits all the way down, preserving order, ``None``
    refusals, and exception behaviour)."""
    from . import fingerprint

    workers = _default_workers(parallelism)
    bags_by_fp: "dict[int, Bag]" = {}

    def note(bag: "Bag") -> int:
        fp = fingerprint.of_bag(bag)
        bags_by_fp.setdefault(fp, bag)
        return fp

    if kind == "global":
        frozen = [tuple(note(bag) for bag in item) for item in items]
    else:
        frozen = [(note(left), note(right)) for left, right in items]
    missing: list = []
    seen_keys: set[tuple] = set()
    for entry in frozen:
        keys = _job_keys(kind, entry, minimal, method)
        if any(engine.store.contains(key) for key in keys):
            continue
        key = keys[0]
        if key in seen_keys:
            continue  # duplicate job in one batch: ship it once
        seen_keys.add(key)
        missing.append(entry)
    if missing and workers > 1:
        from concurrent.futures import ProcessPoolExecutor

        trace = obs_trace.current()
        trace_id = trace.trace_id if trace is not None else None
        batch_start = time.perf_counter()
        needed: set[int] = set()
        for entry in missing:
            needed.update(entry)
        segment, shm_ref, pickled = _build_spill(
            {fp: bags_by_fp[fp] for fp in needed}
        )
        n_chunks = min(workers, len(missing))
        chunks = [missing[i::n_chunks] for i in range(n_chunks)]
        try:
            with ProcessPoolExecutor(max_workers=n_chunks) as pool:
                futures = []
                for chunk in chunks:
                    chunk_fps: set[int] = set()
                    for entry in chunk:
                        chunk_fps.update(entry)
                    futures.append(pool.submit(
                        _worker_run,
                        kind,
                        chunk,
                        {
                            fp: pickled[fp]
                            for fp in chunk_fps if fp in pickled
                        },
                        shm_ref,
                        engine.node_budget,
                        minimal,
                        method,
                        trace_id,
                    ))
                for index, future in enumerate(futures):
                    deltas, worker_spans = future.result()
                    engine.store.merge(deltas)
                    if trace is not None and worker_spans:
                        trace.merge_remote(worker_spans, worker=index)
        finally:
            if segment is not None:
                _release_segment(segment)
        elapsed = time.perf_counter() - batch_start
        _PROCESS_HISTOGRAM.record(elapsed)
        if trace is not None:
            trace.add_span(
                "executor.process_batch", batch_start, elapsed,
                kind=kind, misses=len(missing), workers=n_chunks,
            )
        # A persistent store makes merged worker deltas durable at the
        # batch boundary (no-op 0 for the in-memory store): a daemon
        # killed right after a process batch keeps those verdicts.
        engine.flush()
    # Replay locally: merged misses are hits; anything left (workers
    # disabled, or a racing invalidation) is computed here.
    if kind == "consistent":
        return [engine.are_consistent(left, right) for left, right in items]
    if kind == "witness":
        results = []
        for left, right in items:
            try:
                results.append(engine.witness(left, right, minimal=minimal))
            except InconsistentError:
                results.append(None)
        return results
    return [
        engine.global_check(collection, method=method)
        for collection in items
    ]
