"""Columnar execution kernels: projection, marginal, hash join, semi-join.

Every headline algorithm of the paper — Lemma 2's marginal test,
Corollary 1's flow witness, Theorem 6's acyclic folding, the Yannakakis
passes — is built from two primitives: *marginals* (project + aggregate)
and *joins* (bucket + probe + emit).  The seed implemented each call
site as its own per-row ``project_values`` loop; this module is the one
shared kernel they all route through.

The design is plan-based: for every ``(source schema, target schema)``
pair a projector is compiled once (an :func:`operator.itemgetter`, via
:func:`repro.core.schema.projection_plan`) and cached process-wide, and
for every ``(left schema, right schema)`` pair a :class:`JoinPlan` is
compiled once holding the key projectors, the output emitter, and the
derived common/union schemas.  Kernels then apply the plan to raw value
tuples with no schema arithmetic inside the loop.

This module deliberately sits *below* the bag/relation classes: it
imports only :mod:`repro.core.schema` and operates on plain mappings and
row iterables, so :class:`repro.core.bags.Bag`,
:class:`repro.core.relations.Relation`, and
:class:`repro.core.krelations.KRelation` can all share it without
import cycles.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable, Iterable, Iterator, Mapping, NamedTuple

from ..core.schema import Attribute, Schema, projection_plan

__all__ = [
    "JoinPlan",
    "join_plan",
    "marginal_table",
    "aggregate_table",
    "group_items",
    "group_rows",
    "hash_join_mults",
    "hash_join_annotations",
    "hash_join_rows",
    "iter_join_pairs",
    "semi_join_rows",
    "project_key_set",
]


class JoinPlan(NamedTuple):
    """A precompiled plan for joining rows of two fixed schemas.

    ``left_key``/``right_key`` project a row of either side onto the
    common attributes; ``emit`` maps the concatenation ``lrow + rrow``
    onto the union schema's canonical layout (the duplicate common
    positions resolve to the right side, whose values are equal on a
    join match by construction).
    """

    left: Schema
    right: Schema
    common: Schema
    union: Schema
    left_key: Callable[[tuple], tuple]
    right_key: Callable[[tuple], tuple]
    emit: Callable[[tuple], tuple]


@lru_cache(maxsize=16384)
def join_plan(
    left_attrs: tuple[Attribute, ...], right_attrs: tuple[Attribute, ...]
) -> JoinPlan:
    """The cached :class:`JoinPlan` for a pair of schema layouts."""
    left = Schema(left_attrs)
    right = Schema(right_attrs)
    common = left & right
    union = left | right
    return JoinPlan(
        left=left,
        right=right,
        common=common,
        union=union,
        left_key=projection_plan(left_attrs, common.attrs),
        right_key=projection_plan(right_attrs, common.attrs),
        emit=projection_plan(left_attrs + right_attrs, union.attrs),
    )


def marginal_table(
    items: Iterable[tuple[tuple, int]],
    source_attrs: tuple[Attribute, ...],
    target_attrs: tuple[Attribute, ...],
) -> dict[tuple, int]:
    """The marginal of Equation (2) over raw ``(row, multiplicity)``
    items: sum multiplicities over rows with equal projection."""
    plan = projection_plan(source_attrs, target_attrs)
    out: dict[tuple, int] = {}
    get = out.get
    for row, mult in items:
        key = plan(row)
        out[key] = get(key, 0) + mult
    return out


def aggregate_table(
    items: Iterable[tuple[tuple, Any]],
    source_attrs: tuple[Attribute, ...],
    target_attrs: tuple[Attribute, ...],
    add: Callable[[Any, Any], Any],
) -> dict[tuple, Any]:
    """Semiring-generic marginal: like :func:`marginal_table` but values
    combine with ``add`` (used by K-relations)."""
    plan = projection_plan(source_attrs, target_attrs)
    out: dict[tuple, Any] = {}
    for row, value in items:
        key = plan(row)
        if key in out:
            out[key] = add(out[key], value)
        else:
            out[key] = value
    return out


def group_items(
    items: Iterable[tuple[tuple, Any]],
    key: Callable[[tuple], tuple],
) -> dict[tuple, list[tuple[tuple, Any]]]:
    """Bucket ``(row, value)`` items by the key projection of the row —
    the build side of every hash join."""
    buckets: dict[tuple, list[tuple[tuple, Any]]] = {}
    setdefault = buckets.setdefault
    for row, value in items:
        setdefault(key(row), []).append((row, value))
    return buckets


def group_rows(
    rows: Iterable[tuple],
    key: Callable[[tuple], tuple],
) -> dict[tuple, list[tuple]]:
    """Bucket bare rows by their key projection (set-semantics builds)."""
    buckets: dict[tuple, list[tuple]] = {}
    setdefault = buckets.setdefault
    for row in rows:
        setdefault(key(row), []).append(row)
    return buckets


def hash_join_mults(
    left_items: Iterable[tuple[tuple, int]],
    plan: JoinPlan,
    right_buckets: Mapping[tuple, list[tuple[tuple, int]]],
) -> dict[tuple, int]:
    """The bag join: probe prebuilt right-side buckets with the left
    rows; multiplicities multiply, colliding outputs add (Section 2)."""
    out: dict[tuple, int] = {}
    get_bucket = right_buckets.get
    get = out.get
    left_key, emit = plan.left_key, plan.emit
    for lrow, lmult in left_items:
        bucket = get_bucket(left_key(lrow))
        if not bucket:
            continue
        for rrow, rmult in bucket:
            joined = emit(lrow + rrow)
            out[joined] = get(joined, 0) + lmult * rmult
    return out


def hash_join_annotations(
    left_items: Iterable[tuple[tuple, Any]],
    plan: JoinPlan,
    right_buckets: Mapping[tuple, list[tuple[tuple, Any]]],
    mul: Callable[[Any, Any], Any],
    add: Callable[[Any, Any], Any],
) -> dict[tuple, Any]:
    """Semiring-generic join: annotations multiply with ``mul`` and
    colliding outputs combine with ``add`` (K-relations)."""
    out: dict[tuple, Any] = {}
    get_bucket = right_buckets.get
    left_key, emit = plan.left_key, plan.emit
    for lrow, lval in left_items:
        bucket = get_bucket(left_key(lrow))
        if not bucket:
            continue
        for rrow, rval in bucket:
            joined = emit(lrow + rrow)
            product = mul(lval, rval)
            if joined in out:
                out[joined] = add(out[joined], product)
            else:
                out[joined] = product
    return out


def hash_join_rows(
    left_rows: Iterable[tuple],
    plan: JoinPlan,
    right_buckets: Mapping[tuple, list[tuple]],
) -> set:
    """The natural join under set semantics (relation supports)."""
    out: set = set()
    get_bucket = right_buckets.get
    add = out.add
    left_key, emit = plan.left_key, plan.emit
    for lrow in left_rows:
        bucket = get_bucket(left_key(lrow))
        if not bucket:
            continue
        for rrow in bucket:
            add(emit(lrow + rrow))
    return out


def iter_join_pairs(
    left_rows: Iterable[tuple],
    plan: JoinPlan,
    right_buckets: Mapping[tuple, list],
) -> Iterator[tuple[tuple, Any]]:
    """Stream matching ``(left row, right entry)`` pairs without
    materializing the join — the network builder and the closed-form
    witness constructions consume pairs directly.

    Right entries are whatever the buckets hold: bare rows from
    :func:`group_rows` or ``(row, value)`` items from
    :func:`group_items`.
    """
    get_bucket = right_buckets.get
    left_key = plan.left_key
    for lrow in left_rows:
        bucket = get_bucket(left_key(lrow))
        if not bucket:
            continue
        for entry in bucket:
            yield lrow, entry


def semi_join_rows(
    rows: Iterable[tuple],
    key: Callable[[tuple], tuple],
    allowed: frozenset | set,
) -> list[tuple]:
    """The semijoin filter: keep rows whose key projection is allowed."""
    return [row for row in rows if key(row) in allowed]


def project_key_set(
    rows: Iterable[tuple],
    key: Callable[[tuple], tuple],
) -> set:
    """The set of key projections of the rows (a projection's support)."""
    return {key(row) for row in rows}
