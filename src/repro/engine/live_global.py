"""Live global witness maintenance: the Theorem 6 fold, incrementalized.

:class:`~repro.engine.live.LiveEngine` already incrementalizes the
global *decision* (O(1) pair-checker bumps per update, Theorem 2 flag
reads per query), but until this module every post-update call that
needed the *witness* re-ran the whole Theorem 6 fold from scratch —
the last hot path whose cost scaled with total instance size instead
of update size.

:class:`LiveGlobalWitness` maintains the fold as a **persistent fold
tree** over the join tree of the (acyclic) schema hypergraph.  Each
node owns one bag of the collection and caches

* its **subtree witness** — a bag over the union of the subtree's
  schemas whose marginal on every subtree schema equals that schema's
  bag (computed by folding the children's cached witnesses into the
  node's bag, leaves first; the root's witness is the Theorem 6 global
  witness, because the join tree's connected-subtree property makes
  every fold step a running-intersection step);
* the **fingerprints of its inputs** (the node's bag + each child's
  witness) so an unchanged node is recognized in O(#inputs);
* its witness's maintained **content sum**, so a repaired witness is
  re-fingerprinted by PR 3's O(1) :func:`~repro.engine.fingerprint.
  shift_content` two-term shifts instead of a rescan;
* a bounded **snapshot history** keyed by input fingerprints, so an
  update stream that returns a node's inputs to a previous state (the
  delete-to-zero pattern — :class:`~repro.engine.live.LiveBag` restores
  fingerprints the same way) restores the cached witness instead of
  re-folding.

A single-row update therefore dirties one leaf-to-root path; a refresh
walks only that path, and at each node first tries a **delta repair**:
starting from the cached witness, it replays the inputs' sparse deltas
as marginal "needs" and patches witness rows (removals matched through
a projection index, additions assembled by unifying one needed cell
per input on the overlapping attributes) until every need is zero.
The patched bag's marginals then equal the new inputs *exactly* — by
construction, not by re-verification.  When the greedy patch cannot
close the needs, the delta is too large (``repair_limit``), or the
patch would break the Theorem 6 support bound (the delta invalidated
minimality), the node falls back to recomputing **its own fold only**
(children's cached witnesses are reused), so the blast radius of a
hard update stays one node, not the tree.

Cost per refresh: O(path length x witness support) against the cold
fold's O(m x witness support x max-flow) — ``benchmarks/
bench_live_global.py`` gates the streaming speedup at >= 10x.

Concurrency contract: a :class:`LiveGlobalWitness` (like the
:class:`~repro.engine.live.LiveEngine` that owns it) is
**single-owner** — one thread applies updates and queries it; nothing
here is locked, by design.  Cross-thread sharing happens only through
the immutable snapshots and the fingerprint-keyed stores, which carry
their own declared locks (see ``docs/ARCHITECTURE.md``, "Concurrency
contract").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterable, Sequence

from ..consistency.global_ import GlobalConsistencyResult, fold_step
from ..core.bags import Bag
from ..core.schema import Schema, projection_plan
from ..errors import InconsistentError
from ..hypergraphs.acyclicity import join_tree
from ..hypergraphs.hypergraph import Hypergraph
from . import fingerprint

__all__ = ["LiveGlobalWitness", "repair_fold_witness"]

_UNSET = object()

# Default ceiling on repair work: more positive/negative cells than
# this (or more patch rounds) means the delta is no longer "small" and
# a node recompute is the honest move.
DEFAULT_REPAIR_LIMIT = 64
DEFAULT_SNAPSHOT_HISTORY = 8


def _diff_mults(new: dict, old: dict) -> dict:
    """Sparse signed difference ``new - old`` of two multiplicity maps."""
    diff = {}
    for row, mult in new.items():
        delta = mult - old.get(row, 0)
        if delta:
            diff[row] = delta
    for row, mult in old.items():
        if row not in new:
            diff[row] = -mult
    return diff


def repair_fold_witness(
    mults: dict,
    union_attrs: tuple,
    inputs: Sequence[tuple[tuple, dict]],
    limit: int = DEFAULT_REPAIR_LIMIT,
) -> tuple[dict, dict] | None:
    """Patch a fold-node witness so its marginals track input deltas.

    ``mults`` is the old witness (row -> multiplicity, not mutated);
    ``inputs`` lists ``(input_attrs, delta)`` pairs where ``delta`` is
    the sparse signed change of that input's multiplicity map.  The old
    witness's marginal on each input schema equals the input's *old*
    state (the fold-tree invariant), so after the patch the marginals
    equal the *new* states exactly iff every residual "need" reaches
    zero — which is the success criterion, maintained cell-by-cell, not
    re-verified by a scan.

    Returns ``(new_mults, witness_delta)`` or ``None`` when the greedy
    patch cannot close the needs within ``limit`` rounds (caller falls
    back to re-folding the node).  Removals only ever decrease existing
    multiplicities, so the result is nonnegative by construction.
    """
    plans = [projection_plan(union_attrs, attrs) for attrs, _ in inputs]
    needs: list[dict] = [
        {cell: amount for cell, amount in delta.items() if amount}
        for _, delta in inputs
    ]
    if sum(len(need) for need in needs) > limit:
        return None
    work = dict(mults)
    changed: dict[tuple, int] = {}
    # cell -> live witness rows projecting to it, per input; built
    # lazily on the first removal (insert-only streams never pay it).
    row_index: list[dict | None] = [None for _ in inputs]

    def apply_row(row: tuple, amount: int) -> None:
        work[row] = work.get(row, 0) + amount
        if work[row] == 0:
            del work[row]
        changed[row] = changed.get(row, 0) + amount
        if changed[row] == 0:
            del changed[row]
        for i, plan in enumerate(plans):
            cell = plan(row)
            need = needs[i]
            need[cell] = need.get(cell, 0) - amount
            if need[cell] == 0:
                del need[cell]
            index = row_index[i]
            if index is not None:
                bucket = index.setdefault(cell, set())
                if row in work:
                    bucket.add(row)
                else:
                    bucket.discard(row)

    def index_for(i: int) -> dict:
        index = row_index[i]
        if index is None:
            index = {}
            plan = plans[i]
            for row in work:
                index.setdefault(plan(row), set()).add(row)
            row_index[i] = index
        return index

    for _ in range(limit):
        deficit_at = None
        for i, need in enumerate(needs):
            negative = [cell for cell, amount in need.items() if amount < 0]
            if negative:
                deficit_at = (i, min(negative, key=repr))
                break
        if deficit_at is not None:
            i, cell = deficit_at
            deficit = -needs[i][cell]
            candidates = sorted(
                (row for row in index_for(i).get(cell, ()) if row in work),
                key=repr,
            )
            if not candidates:
                return None  # bookkeeping says impossible; re-fold
            # Prefer rows whose other projections also sit at cells
            # needing removal — they settle several inputs at once.
            row = max(
                candidates[:32],
                key=lambda r: sum(
                    1
                    for j, plan in enumerate(plans)
                    if needs[j].get(plan(r), 0) < 0
                ),
            )
            apply_row(row, -min(work[row], deficit))
            continue
        seeds = [
            i
            for i, need in enumerate(needs)
            if any(amount > 0 for amount in need.values())
        ]
        if not seeds:
            return work, changed  # every need closed: marginals exact
        row = _assemble_row(union_attrs, inputs, plans, needs, seeds[0])
        if row is None:
            return None
        amount = min(
            needs[i][plans[i](row)]
            for i in range(len(inputs))
            if needs[i].get(plans[i](row), 0) > 0
        )
        apply_row(row, amount)
    return None  # round budget exhausted: the delta was not small


def _assemble_row(
    union_attrs: tuple,
    inputs: Sequence[tuple[tuple, dict]],
    plans: Sequence[Callable],
    needs: Sequence[dict],
    seed: int,
) -> tuple | None:
    """Unify one needed cell per input into a full witness row.

    Starts from an input that still has a positive need (``seed``),
    then extends attribute-by-attribute: each later input contributes a
    positive-need cell compatible with the values fixed so far, or —
    when the fixed values already determine its whole cell — that
    forced projection (driving its need negative, which the removal
    phase then settles).  Returns ``None`` when no compatible choice
    exists; the caller falls back to a node re-fold.
    """
    positions = [
        tuple(union_attrs.index(attr) for attr in attrs)
        for attrs, _ in inputs
    ]
    values: list = [_UNSET] * len(union_attrs)
    order = [seed] + [i for i in range(len(inputs)) if i != seed]
    for i in order:
        pos = positions[i]
        compatible = [
            cell
            for cell, amount in needs[i].items()
            if amount > 0
            and all(
                values[p] is _UNSET or values[p] == v
                for p, v in zip(pos, cell)
            )
        ]
        if compatible:
            cell = min(compatible, key=repr)
        elif all(values[p] is not _UNSET for p in pos):
            cell = tuple(values[p] for p in pos)
        else:
            return None
        for p, v in zip(pos, cell):
            values[p] = v
    if any(v is _UNSET for v in values):
        return None  # inputs do not cover the union schema (cannot
        # happen for a fold node; defensive for direct callers)
    return tuple(values)


class _FoldNode:
    """One node of the persistent fold tree (internal)."""

    __slots__ = (
        "index", "slot", "schema", "union_schema", "parent", "children",
        "subtree_slots", "witness", "content", "inputs", "input_fps",
        "delta", "snapshots",
    )

    def __init__(self, index: int, slot: int, schema: Schema) -> None:
        self.index = index
        self.slot = slot  # representative handle slot for this schema
        self.schema = schema
        self.union_schema = schema  # widened to the subtree union
        self.parent = -1
        self.children: list[int] = []
        self.subtree_slots: list[int] = []
        self.witness: Bag | None = None
        self.content = 0  # maintained content sum of the witness rows
        self.inputs: list[Bag] = []  # bag snapshot + child witnesses
        self.input_fps: tuple = ()
        # witness delta of the last refresh (None = not sparse: the
        # parent must diff); consumed by the parent's repair.
        self.delta: dict | None = None
        # input_fps -> (witness, content): the delete-to-zero restore
        # path, bounded like LiveBag's fingerprint history is implicit.
        self.snapshots: OrderedDict[tuple, tuple[Bag, int]] = OrderedDict()


class LiveGlobalWitnessStats:
    """Counters describing how refreshes were served (diagnostics,
    tests, and the benchmark's repair-rate report)."""

    __slots__ = (
        "refreshes", "clean_hits", "node_repairs", "node_recomputes",
        "repair_failures", "bound_failures", "snapshot_restores",
        "nodes_skipped",
    )

    def __init__(self) -> None:
        self.refreshes = 0
        self.clean_hits = 0
        self.node_repairs = 0
        self.node_recomputes = 0
        self.repair_failures = 0
        self.bound_failures = 0
        self.snapshot_restores = 0
        self.nodes_skipped = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class LiveGlobalWitness:
    """A Theorem 6 global witness maintained under live-bag updates.

    Owned by a :class:`~repro.engine.live.LiveEngine`; one instance per
    handle set (the engine keys them by slot set).  ``notify(slot)``
    marks a bag's node dirty in O(1); :meth:`refresh` re-establishes
    the root witness by walking only the dirty leaf-to-root paths.

    The caller must gate :meth:`refresh` on pairwise consistency (the
    engine's O(1) maintained checkers): over an acyclic schema that
    guarantees every fold step succeeds (Theorem 2), so the maintainer
    never discovers inconsistency mid-fold.
    """

    def __init__(
        self,
        engine,
        handles: Iterable,
        repair_limit: int = DEFAULT_REPAIR_LIMIT,
        snapshot_history: int = DEFAULT_SNAPSHOT_HISTORY,
    ) -> None:
        self._engine = engine
        self._handles = list(handles)
        if not self._handles:
            raise InconsistentError("empty collection has no witness schema")
        self.repair_limit = repair_limit
        self.snapshot_history = snapshot_history
        self.stats = LiveGlobalWitnessStats()
        # Pairwise consistency forces equal-schema bags to be equal, so
        # the tree folds one representative per schema (Theorem 6
        # dedupes the same way); every slot still maps to its node so
        # any handle's update dirties the right path.
        by_schema: dict[Schema, _FoldNode] = {}
        self._nodes: list[_FoldNode] = []
        self._slot_nodes: dict[int, int] = {}
        slots = [engine._slots[handle] for handle in self._handles]
        for slot, handle in zip(slots, self._handles):
            node = by_schema.get(handle.schema)
            if node is None:
                node = _FoldNode(len(self._nodes), slot, handle.schema)
                by_schema[handle.schema] = node
                self._nodes.append(node)
            self._slot_nodes[slot] = node.index
        tree = join_tree(
            Hypergraph.from_schemas([n.schema for n in self._nodes])
        )  # raises CyclicSchemaError on a cyclic schema set
        for node, parent in zip(self._nodes, tree.parent):
            node.parent = parent
            if parent >= 0:
                self._nodes[parent].children.append(node.index)
        self._root = tree.root
        # children-first order: parents fold over already-refreshed
        # child witnesses.
        self._order = self._postorder()
        for index in self._order:
            node = self._nodes[index]
            node.children.sort()
            node.subtree_slots = [node.slot]
            for child in node.children:
                node.union_schema = (
                    node.union_schema | self._nodes[child].union_schema
                )
                node.subtree_slots.extend(self._nodes[child].subtree_slots)
        self._dirty: set[int] = set(range(len(self._nodes)))
        self._result: GlobalConsistencyResult | None = None

    # -- topology --------------------------------------------------------

    def _postorder(self) -> list[int]:
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(self._root, False)]
        while stack:
            index, expanded = stack.pop()
            if expanded:
                order.append(index)
                continue
            stack.append((index, True))
            for child in sorted(self._nodes[index].children, reverse=True):
                stack.append((child, False))
        return order

    @property
    def nodes(self) -> int:
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Longest leaf-to-root path (the per-update refresh length)."""
        depth = {self._root: 1}
        for index in reversed(self._order):  # parents before children
            for child in self._nodes[index].children:
                depth[child] = depth[index] + 1
        return max(depth.values())

    # -- update plumbing -------------------------------------------------

    def tracks_slot(self, slot: int) -> bool:
        return slot in self._slot_nodes

    def notify(self, slot: int) -> None:
        """O(1) dirty marking; the work happens at the next refresh."""
        node = self._slot_nodes.get(slot)
        if node is not None:
            self._dirty.add(node)

    # -- the maintained fold ---------------------------------------------

    def refresh(self) -> GlobalConsistencyResult:
        """Bring the fold tree current and return the root result.

        Precondition: the tracked handles are pairwise consistent (the
        engine checks its maintained flags first).  Walks dirty nodes
        children-first; a node whose input fingerprints are unchanged
        (updates cancelled) stops the propagation early.
        """
        self.stats.refreshes += 1
        if not self._dirty and self._result is not None:
            self.stats.clean_hits += 1
            return self._result
        changed_nodes: set[int] = set()
        root_changed = False
        for index in self._order:
            node = self._nodes[index]
            if index not in self._dirty and not (
                changed_nodes & set(node.children)
            ):
                continue
            if self._refresh_node(node):
                changed_nodes.add(index)
                if index == self._root:
                    root_changed = True
            else:
                self.stats.nodes_skipped += 1
        self._dirty.clear()
        if root_changed or self._result is None:
            self._result = GlobalConsistencyResult(
                True, self._nodes[self._root].witness, "live"
            )
        return self._result

    def witness(self) -> Bag:
        """The maintained global witness (refreshing if necessary)."""
        return self.refresh().witness

    def _refresh_node(self, node: _FoldNode) -> bool:
        """Re-establish one node's witness; True when it changed."""
        bag = self._engine._handles[node.slot].bag()
        children = [self._nodes[child] for child in node.children]
        inputs = [bag] + [child.witness for child in children]
        fps = tuple(fingerprint.of_bag(b) for b in inputs)
        if node.witness is not None and fps == node.input_fps:
            node.delta = {}
            return False
        old = (node.witness, node.content, node.input_fps)
        snapshot = node.snapshots.pop(fps, None)
        if snapshot is not None:
            node.witness, node.content = snapshot
            node.delta = None  # parent falls back to a full diff
            self.stats.snapshot_restores += 1
        elif node.witness is None or not self._repair_node(
            node, inputs, children, fps
        ):
            self._refold_node(node, inputs)
        node.inputs = inputs
        node.input_fps = fps
        for child in children:
            # A child's sparse delta describes the transition this node
            # just absorbed; clear it so a later refresh that skips the
            # child cannot replay it against newer inputs.
            child.delta = None
        if old[0] is not None:
            node.snapshots[old[2]] = (old[0], old[1])
            while len(node.snapshots) > self.snapshot_history:
                node.snapshots.popitem(last=False)
        return True

    def _repair_node(
        self,
        node: _FoldNode,
        inputs: list[Bag],
        children: list[_FoldNode],
        fps: tuple,
    ) -> bool:
        """Try the delta repair; False means the caller must re-fold."""
        deltas = []
        for position, new_input in enumerate(inputs):
            if fps[position] == node.input_fps[position]:
                deltas.append({})  # untouched input: nothing to diff
            elif position > 0 and children[position - 1].delta is not None:
                deltas.append(children[position - 1].delta)
            else:
                deltas.append(
                    _diff_mults(new_input._mults, node.inputs[position]._mults)
                )
        union_attrs = node.union_schema.attrs
        patched = repair_fold_witness(
            node.witness._mults,
            union_attrs,
            [
                (b.schema.attrs, delta)
                for b, delta in zip(inputs, deltas)
            ],
            limit=self.repair_limit,
        )
        if patched is None:
            self.stats.repair_failures += 1
            return False
        work, changed = patched
        bound = sum(
            self._engine._handles[slot].support_size
            for slot in node.subtree_slots
        )
        if len(work) > bound:
            # The delta invalidated minimality (Theorem 6's support
            # bound): re-fold this node with minimal per-step witnesses.
            self.stats.bound_failures += 1
            return False
        content = node.content
        old_mults = node.witness._mults
        for row, delta in changed.items():
            content = fingerprint.shift_content(
                content, row, old_mults.get(row, 0), work.get(row, 0)
            )
        witness = Bag._from_clean(node.union_schema, work)
        fingerprint.seed(
            witness,
            fingerprint.bag_fingerprint(
                fingerprint.of_schema(node.union_schema), content, len(work)
            ),
        )
        node.witness = witness
        node.content = content
        node.delta = changed
        self.stats.node_repairs += 1
        return True

    def _refold_node(self, node: _FoldNode, inputs: list[Bag]) -> None:
        """The node-local cold path: fold the children's cached
        witnesses into the node's bag with minimal per-step witnesses
        (the children themselves are NOT recomputed)."""
        acc = inputs[0]
        for child_witness in inputs[1:]:
            acc = fold_step(acc, child_witness, minimal=True)
        node.witness = acc
        node.content = fingerprint.content_sum(acc._mults.items())
        node.delta = None
        self.stats.node_recomputes += 1
