"""The versioned binary wire format: dictionary-coded columnar frames.

The serve protocol's v1 encoding moves *rows*: a batch payload is one
newline-JSON object whose bags are ``{"schema": ..., "tuples": ...}``
row lists, and the receiving daemon re-validates, re-interns, and
re-fingerprints every bag from scratch.  This module adds the **v2
frame**: a length-prefixed binary message that ships each bag as dense
int64 *code* arrays plus the per-attribute dictionary slices those
codes reference, so the receiver rebuilds the columnar encoding with a
vectorized remap instead of re-encoding rows — and adopts it straight
onto the fingerprint-shared :class:`~repro.engine.index.BagIndex`
``_columnar`` slot, fingerprint riding along, so the first engine query
is a pure :class:`VerdictStore` probe.

Frame layout (all integers little-endian)::

    MAGIC(4) | version u8 | header_len u32 | blob_len u64
    header: UTF-8 JSON of ``header_len`` bytes
    blob:   ``blob_len`` bytes of packed little-endian int64 arrays

The header of a **jobs frame** is ``{"v": 2, "payload": ..., "bags":
[...]}`` — the payload is the ordinary batch object with every bag slot
replaced by a ``{"$bag": i}`` reference into ``bags`` (``"$bag"`` is
reserved in v2 payloads), and each bag descriptor is either

* inline JSON — ``{"json": <bag dict>, "fp": <fingerprint>}`` — for
  bags below the columnar floor or without an encoding, or
* columnar — ``{"schema": [...], "n": rows, "total": mult_total,
  "fp": <fingerprint>, "mults": [off, len], "cols": [{"codes":
  [off, len], "values": [...]}, ...]}`` — where ``codes`` index the
  column's **local dictionary** ``values``.

Interner remap rule: sender and receiver interners never agree (they
are process-local and append-only), so frames never carry raw interner
codes.  The sender re-bases each column onto a local dictionary
(``np.unique`` — the distinct values actually used, in code order); the
receiver interns that small value list into *its* dictionaries and maps
the code column through the resulting table with one fancy-indexed
gather.  Response frames carry ``{"v": 2, "response": {...}}`` and no
blob.

The same frame bytes double as the **shared-memory spill** payload of
the process executor (:func:`encode_bag_table` /
:func:`decode_bag_table`): the parent writes one frame into a
``multiprocessing.shared_memory`` segment and workers map it read-only,
decoding only the fingerprints their chunk needs.

Fallback contract: when numpy is absent (``REPRO_NO_NUMPY=1``) the
decoder walks the same blobs with :mod:`array` — results are
bit-identical to the JSON row path, just not adopted as an encoding —
and a peer that never negotiates v2 simply keeps speaking newline JSON.

Counters here (frames and bytes per direction, JSON-line traffic for
comparison, shm segments) are locked :mod:`repro.obs` registry
counters — exact under free threading — surfaced in the historical
flat-dict shape through :func:`repro.engine.columnar.kernel_stats` and
in Prometheus/JSON form through the ``metrics`` serve op.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from typing import TYPE_CHECKING, Callable, Iterable

from .. import io as repro_io
from ..core.bags import Bag
from ..obs import metrics as obs_metrics
from ..core.schema import Schema
from ..errors import ReproError, SchemaError
from . import columnar, fingerprint
from .index import BagIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .columnar import PortableEncoding

__all__ = [
    "MAGIC",
    "MAX_FRAME_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_LINE",
    "VERSION",
    "WireError",
    "decode_bag_table",
    "decode_jobs_frame",
    "encode_bag_table",
    "encode_jobs_frame",
    "encode_response_frame",
    "jsonify_payload",
    "payload_has_bags",
    "portable_bag",
    "read_frame",
    "response_from_frame",
    "split_frame",
    "wire_stats",
]

MAGIC = b"RPWF"
VERSION = 2

_PREFIX = struct.Struct("<BIQ")
_PREFIX_LEN = len(MAGIC) + _PREFIX.size

# Defensive ceilings, module attributes so tests can tighten them: a
# malformed or hostile length prefix must not make the server allocate
# without bound, and an unterminated JSON line must not buffer forever.
MAX_HEADER_BYTES = 1 << 26
MAX_FRAME_BYTES = 1 << 31
MAX_LINE = 32 * 1024 * 1024

_JSON_SCALARS = (str, int, float, bool, type(None))


class WireError(ReproError):
    """A malformed, truncated, or oversized wire frame."""


# -- observability ------------------------------------------------------

# Locked registry counters (repro.obs) — the module-level ``+=`` dict
# these replaced was racy under the thread executor.  ``wire_stats``
# keeps the historical flat-dict shape byte-compatible.
_STATS_KEYS = (
    "wire_frames_encoded", "wire_frames_decoded",
    "wire_frame_bytes_encoded", "wire_frame_bytes_decoded",
    "wire_json_requests", "wire_json_bytes",
    "shm_segments_created", "shm_segments_adopted", "shm_bytes_spilled",
)
_COUNTERS = {
    key: obs_metrics.REGISTRY.counter("repro_" + key)
    for key in _STATS_KEYS
}


def wire_stats() -> dict:
    """The process-wide wire/shm counters (merged into
    :func:`repro.engine.columnar.kernel_stats`)."""
    return {key: _COUNTERS[key].value for key in _STATS_KEYS}


def count_json_request(n_bytes: int) -> None:
    """Record one newline-JSON request of ``n_bytes`` — the row-path
    traffic the frame counters are compared against."""
    _COUNTERS["wire_json_requests"].inc()
    _COUNTERS["wire_json_bytes"].inc(n_bytes)


def count_shm(key: str, amount: int = 1) -> None:
    _COUNTERS["shm_" + key].inc(amount)


# -- framing ------------------------------------------------------------


class _BlobWriter:
    """Accumulates blob sections; ``add`` returns the ``[off, len]``
    reference a descriptor embeds."""

    def __init__(self) -> None:
        self.parts: list[bytes] = []
        self.size = 0

    def add(self, data: bytes) -> list[int]:
        ref = [self.size, len(data)]
        self.parts.append(data)
        self.size += len(data)
        return ref

    def getvalue(self) -> bytes:
        return b"".join(self.parts)


def pack_frame(header: dict, writer: _BlobWriter | None = None) -> bytes:
    try:
        header_bytes = json.dumps(
            header, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireError(f"frame header not JSON-serializable: {exc}") from exc
    blob = writer.getvalue() if writer is not None else b""
    frame = b"".join((
        MAGIC,
        _PREFIX.pack(VERSION, len(header_bytes), len(blob)),
        header_bytes,
        blob,
    ))
    _COUNTERS["wire_frames_encoded"].inc()
    _COUNTERS["wire_frame_bytes_encoded"].inc(len(frame))
    return frame


def _read_exact(stream, n: int, first: bytes = b"") -> bytes:
    chunks = [first]
    remaining = n
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            raise WireError("truncated frame (peer closed mid-frame)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _check_prefix(prefix: bytes) -> tuple[int, int]:
    if prefix[: len(MAGIC)] != MAGIC:
        raise WireError("bad frame magic")
    version, header_len, blob_len = _PREFIX.unpack_from(prefix, len(MAGIC))
    if version != VERSION:
        raise WireError(
            f"unsupported wire version {version} "
            f"(this build speaks {VERSION})"
        )
    if header_len > MAX_HEADER_BYTES:
        raise WireError(f"frame header exceeds {MAX_HEADER_BYTES} bytes")
    if blob_len > MAX_FRAME_BYTES:
        raise WireError(f"frame blob exceeds {MAX_FRAME_BYTES} bytes")
    return header_len, blob_len


def _parse_header(header_bytes: bytes) -> dict:
    try:
        header = json.loads(header_bytes)
    except json.JSONDecodeError as exc:
        raise WireError(f"invalid JSON in frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise WireError("frame header must be a JSON object")
    return header


def read_frame(stream, first: bytes = b"") -> tuple[dict, bytes]:
    """Read one complete frame off a blocking binary stream; ``first``
    is any already-consumed prefix (protocol sniffing reads one byte).
    Raises :class:`WireError` on truncation or malformation — after
    which the stream is unsynchronized and must be closed."""
    prefix = _read_exact(stream, _PREFIX_LEN - len(first), first)
    header_len, blob_len = _check_prefix(prefix)
    header = _parse_header(_read_exact(stream, header_len))
    blob = _read_exact(stream, blob_len)
    _COUNTERS["wire_frames_decoded"].inc()
    _COUNTERS["wire_frame_bytes_decoded"].inc(_PREFIX_LEN + header_len + blob_len)
    return header, blob


def split_frame(buf) -> tuple[dict, "memoryview"]:
    """Split an in-memory frame (a shared-memory segment's mapped
    bytes) into its header and a zero-copy blob view."""
    view = memoryview(buf)
    if len(view) < _PREFIX_LEN:
        raise WireError("truncated frame buffer")
    header_len, blob_len = _check_prefix(bytes(view[:_PREFIX_LEN]))
    end = _PREFIX_LEN + header_len + blob_len
    if end > len(view):
        raise WireError("truncated frame buffer")
    header = _parse_header(bytes(view[_PREFIX_LEN:_PREFIX_LEN + header_len]))
    _COUNTERS["wire_frames_decoded"].inc()
    _COUNTERS["wire_frame_bytes_decoded"].inc(end)
    return header, view[_PREFIX_LEN + header_len:end]


def encode_response_frame(response: dict) -> bytes:
    return pack_frame({"v": VERSION, "response": response})


def response_from_frame(header: dict) -> dict:
    response = header.get("response")
    if not isinstance(response, dict):
        raise WireError("frame response missing body")
    return response


# -- payload walking ----------------------------------------------------


def _walk_payload(payload: dict, convert: Callable) -> dict:
    """Copy ``payload`` with ``convert`` applied to every bag slot of
    the recognized job shapes; unrecognized shapes pass through for the
    server-side validator to reject with its usual one-line errors."""
    out: dict = {}
    for key, value in payload.items():
        if key == "pairs" and isinstance(value, (list, tuple)):
            entries = []
            for entry in value:
                if isinstance(entry, (list, tuple)) and len(entry) == 2:
                    entries.append([convert(entry[0]), convert(entry[1])])
                else:
                    entries.append(entry)
            out[key] = entries
        elif key == "collections" and isinstance(value, (list, tuple)):
            entries = []
            for entry in value:
                if isinstance(entry, dict) and isinstance(
                    entry.get("bags"), (list, tuple)
                ):
                    converted = dict(entry)
                    converted["bags"] = [
                        convert(bag) for bag in entry["bags"]
                    ]
                    entries.append(converted)
                else:
                    entries.append(entry)
            out[key] = entries
        else:
            out[key] = value
    return out


def payload_has_bags(payload: object) -> bool:
    """True when any bag slot of ``payload`` holds a live :class:`Bag`
    object (the case the v2 frame accelerates)."""
    if not isinstance(payload, dict):
        return False
    found = False

    def probe(obj):
        nonlocal found
        found = found or isinstance(obj, Bag)
        return obj

    _walk_payload(payload, probe)
    return found


def jsonify_payload(payload: object) -> object:
    """``payload`` with every :class:`Bag` object replaced by its JSON
    row encoding — the v1 newline protocol ships dicts only."""
    if not isinstance(payload, dict):
        return payload

    def convert(obj):
        return repro_io.bag_to_dict(obj) if isinstance(obj, Bag) else obj

    return _walk_payload(payload, convert)


# -- bag export ---------------------------------------------------------


def _json_safe(port: "PortableEncoding") -> bool:
    return all(
        isinstance(value, _JSON_SCALARS)
        for _, values in port.columns
        for value in values
    )


def portable_bag(bag: Bag) -> "PortableEncoding | None":
    """The bag's re-based columnar export when it has (or earns) an
    encoding and every value is a JSON scalar, else ``None`` — the
    caller falls back to inline JSON (socket) or pickle (executor)."""
    if not columnar.enabled():
        return None
    encoded = columnar.of_index(BagIndex.of(bag))
    if encoded is None:
        return None
    port = columnar.export_encoding(encoded)
    return port if _json_safe(port) else None


def _columnar_descriptor(
    fp: int, port: "PortableEncoding", writer: _BlobWriter
) -> dict:
    return {
        "schema": list(port.attrs),
        "n": port.n,
        "total": port.total,
        "fp": fp,
        "mults": writer.add(port.mults),
        "cols": [
            {"codes": writer.add(codes), "values": values}
            for codes, values in port.columns
        ],
    }


def _export_bag(bag: Bag, fp: int, writer: _BlobWriter) -> dict:
    port = portable_bag(bag)
    if port is None:
        return {"json": repro_io.bag_to_dict(bag), "fp": fp}
    return _columnar_descriptor(fp, port, writer)


def encode_jobs_frame(payload: dict) -> bytes:
    """One batch payload (bag slots may hold :class:`Bag` objects or
    plain JSON dicts) as one v2 frame.  Bag objects are deduplicated by
    content fingerprint — a bag appearing in many pairs ships once."""
    if not isinstance(payload, dict):
        raise WireError("jobs payload must be a JSON object")
    writer = _BlobWriter()
    descriptors: list = []
    by_fp: dict[int, int] = {}

    def convert(obj):
        if isinstance(obj, Bag):
            fp = fingerprint.of_bag(obj)
            index = by_fp.get(fp)
            if index is None:
                index = len(descriptors)
                descriptors.append(_export_bag(obj, fp, writer))
                by_fp[fp] = index
            return {"$bag": index}
        if isinstance(obj, dict):
            descriptors.append({"json": obj})
            return {"$bag": len(descriptors) - 1}
        return obj

    out_payload = _walk_payload(payload, convert)
    header = {"v": VERSION, "payload": out_payload}
    if descriptors:
        header["bags"] = descriptors
    return pack_frame(header, writer)


# -- bag import ---------------------------------------------------------


def _check_fp(fp: object) -> int:
    if isinstance(fp, bool) or not isinstance(fp, int) \
            or not 0 <= fp < (1 << 128):
        raise WireError(f"bad bag fingerprint in frame: {fp!r}")
    return fp


def _blob_slice(blob, ref: object, expected: int) -> "memoryview":
    view = blob if isinstance(blob, memoryview) else memoryview(blob)
    try:
        off, length = ref
    except (TypeError, ValueError):
        raise WireError(f"bad blob reference in frame: {ref!r}") from None
    if (
        isinstance(off, bool) or isinstance(length, bool)
        or not isinstance(off, int) or not isinstance(length, int)
        or off < 0 or length != expected or off + length > len(view)
    ):
        raise WireError(
            f"blob reference {ref!r} outside frame "
            f"(expected {expected} bytes in {len(view)})"
        )
    return view[off:off + length]


def _int64_list(buf, n: int) -> array:
    arr = array("q")
    arr.frombytes(bytes(buf))
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        arr.byteswap()
    if len(arr) != n:
        raise WireError("int64 column length mismatch")
    return arr


def _decode_rows_python(attrs, n, mults_buf, columns):
    """The numpy-less decode: same blobs, plain :mod:`array` walk —
    bit-identical rows, no encoding to adopt."""
    mults = _int64_list(mults_buf, n)
    if any(mult <= 0 for mult in mults):
        raise WireError("non-positive multiplicity in frame")
    decoded_cols = []
    for codes_buf, values in columns:
        codes = _int64_list(codes_buf, n)
        bound = len(values)
        col = []
        for code in codes:
            if not 0 <= code < bound:
                raise WireError("dictionary code out of range in frame")
            col.append(values[code])
        decoded_cols.append(col)
    rows = list(zip(*decoded_cols)) if attrs else [()] * n
    return rows, mults.tolist()


def _bag_from_descriptor(desc: object, blob) -> Bag:
    if not isinstance(desc, dict):
        raise WireError(f"bad bag descriptor in frame: {desc!r}")
    if "json" in desc:
        try:
            bag = repro_io.bag_from_dict(desc["json"])
        except SchemaError as exc:
            raise WireError(f"bad inline bag in frame: {exc}") from exc
        fp = desc.get("fp")
        if fp is not None:
            fingerprint.seed(bag, _check_fp(fp))
        return bag
    try:
        attrs, n, total = desc["schema"], desc["n"], desc["total"]
        fp, mult_ref, col_descs = desc["fp"], desc["mults"], desc["cols"]
    except KeyError as exc:
        raise WireError(f"bag descriptor missing {exc}") from exc
    fp = _check_fp(fp)
    if isinstance(n, bool) or not isinstance(n, int) or n < 0:
        raise WireError(f"bad row count in frame: {n!r}")
    if not isinstance(attrs, list) or not isinstance(col_descs, list) \
            or len(col_descs) != len(attrs):
        raise WireError("bag descriptor schema/column mismatch")
    try:
        schema = Schema(attrs)
    except SchemaError as exc:
        raise WireError(f"bad schema in frame: {exc}") from exc
    mults_buf = _blob_slice(blob, mult_ref, 8 * n)
    columns = []
    for col in col_descs:
        if not isinstance(col, dict) or not isinstance(
            col.get("values"), list
        ):
            raise WireError(f"bad column descriptor in frame: {col!r}")
        columns.append(
            (_blob_slice(blob, col.get("codes"), 8 * n), col["values"])
        )
    try:
        if columnar.enabled():
            rows, mults, encoded = columnar.import_encoding(
                schema.attrs, n, mults_buf, columns
            )
        else:
            rows, mults = _decode_rows_python(
                schema.attrs, n, mults_buf, columns
            )
            encoded = None
    except ValueError as exc:
        raise WireError(f"bad columnar bag in frame: {exc}") from exc
    try:
        table = dict(zip(rows, mults))
    except TypeError as exc:
        raise WireError(f"unhashable value in frame column: {exc}") from exc
    if len(table) != n:
        raise WireError("duplicate rows in columnar bag frame")
    if sum(mults) != total:
        raise WireError("multiplicity total mismatch in frame")
    bag = Bag._from_clean(schema, table)
    # Seed first, adopt second: seeding may swap the bag onto a shared
    # value-equal index, and the encoding must land on *that* index.
    fingerprint.seed_with_encoding(bag, fp, encoded)
    return bag


def decode_jobs_frame(header: dict, blob) -> dict:
    """A jobs frame back into the plain batch payload shape, every
    ``{"$bag": i}`` reference replaced by a rebuilt (seeded, possibly
    encoding-adopting) :class:`Bag` — ready for ``parse_jobs``."""
    version = header.get("v")
    if version != VERSION:
        raise WireError(f"unsupported frame header version {version!r}")
    payload = header.get("payload")
    if not isinstance(payload, dict):
        raise WireError("jobs frame missing payload object")
    descriptors = header.get("bags") or []
    if not isinstance(descriptors, list):
        raise WireError("jobs frame bags must be a list")
    bags = [_bag_from_descriptor(desc, blob) for desc in descriptors]

    def convert(obj):
        if isinstance(obj, dict) and set(obj) == {"$bag"}:
            index = obj["$bag"]
            if isinstance(index, bool) or not isinstance(index, int) \
                    or not 0 <= index < len(bags):
                raise WireError(f"bad bag reference in frame: {obj!r}")
            return bags[index]
        return obj

    return _walk_payload(payload, convert)


# -- the shared-memory spill payload ------------------------------------


def encode_bag_table(entries: Iterable[tuple[int, "PortableEncoding"]]) -> bytes:
    """``(fingerprint, portable encoding)`` pairs as one frame — the
    process executor's shared-memory spill body (no jobs ride along)."""
    writer = _BlobWriter()
    descriptors = [
        _columnar_descriptor(fp, port, writer) for fp, port in entries
    ]
    return pack_frame({"v": VERSION, "bags": descriptors}, writer)


def decode_bag_table(buf, only: "set[int] | None" = None) -> dict[int, Bag]:
    """Rebuild the bags of a spill frame, keyed by fingerprint.
    ``only`` restricts decoding to the fingerprints a worker's chunk
    actually references (the rest are skipped unread)."""
    header, blob = split_frame(buf)
    descriptors = header.get("bags") or []
    if not isinstance(descriptors, list):
        raise WireError("spill frame bags must be a list")
    table: dict[int, Bag] = {}
    for desc in descriptors:
        if not isinstance(desc, dict):
            raise WireError(f"bad bag descriptor in frame: {desc!r}")
        fp = _check_fp(desc.get("fp"))
        if only is not None and fp not in only:
            continue
        table[fp] = _bag_from_descriptor(desc, blob)
    return table
