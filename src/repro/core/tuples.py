"""Tuples over schemas.

A ``Tup`` is the paper's X-tuple: a function from a finite attribute set X
to values.  Internally it is a raw value tuple laid out in the schema's
canonical attribute order, so projection (``t[Y]`` in the paper,
:meth:`Tup.project` here) is a cached index-gather rather than a dict
rebuild.

``Tup(Schema(), ())`` is the empty tuple, the unique function with empty
domain; the paper relies on its existence (``Tup(emptyset)`` is non-empty).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ..errors import SchemaError
from .schema import Attribute, Schema, project_values


class Tup:
    """An immutable tuple over a :class:`Schema`.

    Construct from positional values in canonical attribute order, or use
    :meth:`from_mapping` for named construction:

    >>> X = Schema(["A", "B"])
    >>> t = Tup(X, (1, 2))
    >>> t["A"], t["B"]
    (1, 2)
    >>> t.project(Schema(["B"]))
    Tup({'B': 2})
    """

    __slots__ = ("_schema", "_values", "_hash")

    def __init__(self, schema: Schema, values: tuple) -> None:
        if len(values) != len(schema):
            raise SchemaError(
                f"value tuple {values!r} has arity {len(values)}, "
                f"schema {schema!r} has arity {len(schema)}"
            )
        self._schema = schema
        self._values = tuple(values)
        self._hash = hash((schema, self._values))

    @classmethod
    def from_mapping(cls, mapping: Mapping[Attribute, Any]) -> "Tup":
        """Build a tuple from an attribute-to-value mapping."""
        schema = Schema(mapping.keys())
        return cls(schema, tuple(mapping[a] for a in schema.attrs))

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values(self) -> tuple:
        """Raw values in the schema's canonical attribute order."""
        return self._values

    def __getitem__(self, attr: Attribute) -> Any:
        return self._values[self._schema.index_of(attr)]

    def project(self, target: Schema) -> "Tup":
        """The projection t[Y] of this tuple on ``target``; requires
        ``target`` to be a subset of the tuple's schema."""
        return Tup(target, project_values(self._values, self._schema, target))

    def joins_with(self, other: "Tup") -> bool:
        """True if the two tuples agree on their common attributes."""
        common = self._schema & other._schema
        return self.project(common) == other.project(common)

    def join(self, other: "Tup") -> "Tup":
        """The XY-tuple agreeing with both operands (paper's ``xy``).

        Raises :class:`SchemaError` if the tuples disagree on a common
        attribute.
        """
        if not self.joins_with(other):
            raise SchemaError(f"{self!r} does not join with {other!r}")
        combined = self._schema | other._schema
        out = []
        for attr in combined.attrs:
            if attr in self._schema:
                out.append(self[attr])
            else:
                out.append(other[attr])
        return Tup(combined, tuple(out))

    def as_mapping(self) -> dict:
        return dict(zip(self._schema.attrs, self._values))

    def __iter__(self) -> Iterator:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Tup):
            return (
                self._schema == other._schema and self._values == other._values
            )
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Tup({self.as_mapping()!r})"


EMPTY_TUP = Tup(Schema(), ())
