"""Commutative semirings for K-relations.

The paper frames relations and bags uniformly as K-relations: functions
from tuples into a semiring K.  Relations are B-relations over the Boolean
semiring and bags are Z>=0-relations over the bag semiring (Section 2).
The concluding remarks pose the open problem of extending the paper's
results to other positive semirings; this module provides the semiring
substrate for that extension (see :mod:`repro.core.krelations`).

A semiring here is ``(K, +, *, 0, 1)`` with commutative monoids for both
operations and multiplication distributing over addition.  A semiring is
*positive* if 0 != 1, it has no zero divisors, and ``a + b = 0`` implies
``a = b = 0`` — the condition under which supports behave like relations.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Iterable


class Semiring:
    """A commutative semiring presented by its operations.

    Instances are lightweight records; the standard semirings below are
    module-level singletons.  ``is_positive`` records whether the semiring
    is positive in the sense of [AK20]; the K-relation machinery relies on
    positivity for support computations.
    """

    __slots__ = ("name", "zero", "one", "add", "mul", "is_positive", "validate")

    def __init__(
        self,
        name: str,
        zero: Any,
        one: Any,
        add: Callable[[Any, Any], Any],
        mul: Callable[[Any, Any], Any],
        is_positive: bool,
        validate: Callable[[Any], bool],
    ) -> None:
        self.name = name
        self.zero = zero
        self.one = one
        self.add = add
        self.mul = mul
        self.is_positive = is_positive
        self.validate = validate

    def sum(self, values: Iterable[Any]) -> Any:
        total = self.zero
        for value in values:
            total = self.add(total, value)
        return total

    def product(self, values: Iterable[Any]) -> Any:
        total = self.one
        for value in values:
            total = self.mul(total, value)
        return total

    def is_zero(self, value: Any) -> bool:
        return value == self.zero

    def __repr__(self) -> str:
        return f"Semiring({self.name})"


def _is_bool(value: Any) -> bool:
    return value in (0, 1, False, True)


def _is_nonneg_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def _is_nonneg_rational(value: Any) -> bool:
    return isinstance(value, (int, Fraction)) and value >= 0


#: The Boolean semiring B = ({0,1}, or, and, 0, 1); B-relations are
#: ordinary relations.
BOOLEAN = Semiring(
    name="Boolean",
    zero=False,
    one=True,
    add=lambda a, b: bool(a) or bool(b),
    mul=lambda a, b: bool(a) and bool(b),
    is_positive=True,
    validate=_is_bool,
)

#: The bag semiring Z>=0 = ({0,1,2,...}, +, *, 0, 1); Z>=0-relations are
#: exactly the paper's bags.
NATURALS = Semiring(
    name="Naturals",
    zero=0,
    one=1,
    add=lambda a, b: a + b,
    mul=lambda a, b: a * b,
    is_positive=True,
    validate=_is_nonneg_int,
)

#: Non-negative rationals under (+, *): the semiring in which the paper's
#: linear program P(R, S) is solved before integrality is restored.
NONNEG_RATIONALS = Semiring(
    name="NonNegRationals",
    zero=Fraction(0),
    one=Fraction(1),
    add=lambda a, b: a + b,
    mul=lambda a, b: a * b,
    is_positive=True,
    validate=_is_nonneg_rational,
)

_INF = float("inf")

#: The tropical (min, +) semiring over non-negative reals with infinity.
TROPICAL = Semiring(
    name="Tropical",
    zero=_INF,
    one=0.0,
    add=min,
    mul=lambda a, b: a + b,
    is_positive=True,
    validate=lambda v: isinstance(v, (int, float)) and v >= 0,
)

#: The Viterbi semiring ([0,1], max, *): confidence scores.
VITERBI = Semiring(
    name="Viterbi",
    zero=0.0,
    one=1.0,
    add=max,
    mul=lambda a, b: a * b,
    is_positive=True,
    validate=lambda v: isinstance(v, (int, float)) and 0 <= v <= 1,
)

ALL_SEMIRINGS = (BOOLEAN, NATURALS, NONNEG_RATIONALS, TROPICAL, VITERBI)


def check_semiring_laws(
    semiring: Semiring, sample: Iterable[Any]
) -> list[str]:
    """Check the semiring axioms on a finite sample of elements.

    Returns a list of human-readable violations (empty when the sample
    exhibits no violation).  Used by the test suite to sanity-check the
    singletons above and any user-supplied semiring.
    """
    sample = list(sample)
    violations = []
    add, mul = semiring.add, semiring.mul
    zero, one = semiring.zero, semiring.one
    for a in sample:
        if add(a, zero) != a:
            violations.append(f"{a!r} + 0 != {a!r}")
        if mul(a, one) != a:
            violations.append(f"{a!r} * 1 != {a!r}")
        if mul(a, zero) != zero:
            violations.append(f"{a!r} * 0 != 0")
    for a in sample:
        for b in sample:
            if add(a, b) != add(b, a):
                violations.append(f"+ not commutative on {a!r}, {b!r}")
            if mul(a, b) != mul(b, a):
                violations.append(f"* not commutative on {a!r}, {b!r}")
            for c in sample:
                if add(add(a, b), c) != add(a, add(b, c)):
                    violations.append(f"+ not associative on {a!r},{b!r},{c!r}")
                if mul(mul(a, b), c) != mul(a, mul(b, c)):
                    violations.append(f"* not associative on {a!r},{b!r},{c!r}")
                if mul(a, add(b, c)) != add(mul(a, b), mul(a, c)):
                    violations.append(
                        f"* does not distribute over + on {a!r},{b!r},{c!r}"
                    )
    if semiring.is_positive:
        if zero == one:
            violations.append("positive semiring with 0 == 1")
        for a in sample:
            for b in sample:
                if add(a, b) == zero and (a != zero or b != zero):
                    violations.append(f"positivity: {a!r} + {b!r} = 0")
                if mul(a, b) == zero and a != zero and b != zero:
                    violations.append(f"zero divisors: {a!r} * {b!r} = 0")
    return violations
