"""Relations under set semantics.

A :class:`Relation` over a schema X is a finite set of X-tuples — the
paper's function ``R : Tup(X) -> {0, 1}`` identified with its support.
This module provides the classical set-semantics operations the paper's
baseline results use: projection, natural join, and n-ary joins.

Relations are the substrate for the set-case results (Section 5.1 and
Theorem 1) and for the supports of bags (``R'`` in the paper), so the join
implemented here is exactly the join ``R' |><| S'`` over which the linear
program P(R, S) and the network N(R, S) are indexed.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..engine import kernels
from ..engine.index import RelationIndex
from ..errors import SchemaError
from .schema import Attribute, Schema
from .tuples import Tup


class Relation:
    """An immutable finite relation (set of tuples) over a schema.

    Tuples are stored as raw value tuples in the schema's canonical
    attribute order.  Iteration yields :class:`Tup` objects.

    >>> R = Relation.from_pairs(Schema(["A", "B"]), [(0, 0), (1, 1)])
    >>> len(R)
    2
    """

    __slots__ = ("_schema", "_rows", "_index")

    def __init__(self, schema: Schema, rows: Iterable[tuple]) -> None:
        self._schema = schema
        self._index = None
        frozen = frozenset(tuple(row) for row in rows)
        for row in frozen:
            if len(row) != len(schema):
                raise SchemaError(
                    f"row {row!r} has arity {len(row)}, schema {schema!r} "
                    f"has arity {len(schema)}"
                )
        self._rows = frozen

    # -- constructors ----------------------------------------------------

    @classmethod
    def _from_clean(cls, schema: Schema, rows: frozenset) -> "Relation":
        """Internal fast path: wrap a kernel-produced row set without
        re-validating arities (kernel outputs are projections/joins of
        validated rows)."""
        relation = object.__new__(cls)
        relation._schema = schema
        relation._rows = rows
        relation._index = None
        return relation

    @classmethod
    def from_pairs(
        cls, schema: Schema, rows: Iterable[Sequence]
    ) -> "Relation":
        """Build from raw rows laid out in canonical attribute order."""
        return cls(schema, (tuple(r) for r in rows))

    @classmethod
    def from_mappings(
        cls, rows: Iterable[Mapping[Attribute, Any]], schema: Schema | None = None
    ) -> "Relation":
        """Build from attribute-to-value mappings.

        If ``schema`` is omitted it is inferred from the first row; all
        rows must share the same attribute set.
        """
        rows = list(rows)
        if schema is None:
            if not rows:
                raise SchemaError(
                    "cannot infer schema from an empty row list; pass schema="
                )
            schema = Schema(rows[0].keys())
        raw = []
        for row in rows:
            if set(row.keys()) != set(schema.attrs):
                raise SchemaError(
                    f"row {row!r} does not match schema {schema!r}"
                )
            raw.append(tuple(row[a] for a in schema.attrs))
        return cls(schema, raw)

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        return cls(schema, ())

    # -- accessors -------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def rows(self) -> frozenset:
        """Raw value tuples in canonical attribute order."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __iter__(self) -> Iterator[Tup]:
        for row in sorted(self._rows, key=repr):
            yield Tup(self._schema, row)

    def __contains__(self, item: Any) -> bool:
        if isinstance(item, Tup):
            if item.schema != self._schema:
                return False
            return item.values in self._rows
        return tuple(item) in self._rows

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Relation):
            return self._schema == other._schema and self._rows == other._rows
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._schema, self._rows))

    def __le__(self, other: "Relation") -> bool:
        if self._schema != other._schema:
            raise SchemaError("containment requires equal schemas")
        return self._rows <= other._rows

    def __reduce__(self):
        """Pickle as (schema, rows) only — the per-process index stays
        behind, mirroring :meth:`repro.core.bags.Bag.__reduce__`."""
        return (_rebuild_relation, (self._schema, self._rows))

    def __repr__(self) -> str:
        shown = sorted(self._rows, key=repr)[:6]
        suffix = ", ..." if len(self._rows) > 6 else ""
        return (
            f"Relation({list(self._schema.attrs)!r}, {shown!r}{suffix} "
            f"[{len(self._rows)} rows])"
        )

    # -- relational algebra ----------------------------------------------

    def project(self, target: Schema) -> "Relation":
        """The projection R[Z] under set semantics, memoized per
        relation via the engine index."""
        return RelationIndex.of(self).project(target)

    def join(self, other: "Relation") -> "Relation":
        """Natural join R |><| S: a kernel hash join probing the other
        side's cached common-attribute buckets."""
        plan = kernels.join_plan(self._schema.attrs, other._schema.attrs)
        out = kernels.hash_join_rows(
            self._rows, plan, RelationIndex.of(other).buckets(plan.common)
        )
        return Relation._from_clean(plan.union, frozenset(out))

    def restrict(self, predicate) -> "Relation":
        """Selection: keep rows whose :class:`Tup` satisfies ``predicate``."""
        kept = [
            row
            for row in self._rows
            if predicate(Tup(self._schema, row))
        ]
        return Relation(self._schema, kept)

    def union(self, other: "Relation") -> "Relation":
        if self._schema != other._schema:
            raise SchemaError("union requires equal schemas")
        return Relation(self._schema, self._rows | other._rows)

    def intersection(self, other: "Relation") -> "Relation":
        if self._schema != other._schema:
            raise SchemaError("intersection requires equal schemas")
        return Relation(self._schema, self._rows & other._rows)

    def difference(self, other: "Relation") -> "Relation":
        if self._schema != other._schema:
            raise SchemaError("difference requires equal schemas")
        return Relation(self._schema, self._rows - other._rows)

    def active_domain(self, attr: Attribute) -> set:
        """All values the attribute takes in this relation."""
        idx = self._schema.index_of(attr)
        return {row[idx] for row in self._rows}


def _rebuild_relation(schema: Schema, rows: frozenset) -> Relation:
    """Unpickle target for :meth:`Relation.__reduce__`."""
    return Relation._from_clean(schema, rows)


def join_all(relations: Sequence[Relation]) -> Relation:
    """The n-ary natural join R1 |><| ... |><| Rm.

    Joins in input order; for an empty input returns the relation over the
    empty schema containing the empty tuple (the join identity).
    """
    if not relations:
        return Relation(Schema(), [()])
    result = relations[0]
    for rel in relations[1:]:
        result = result.join(rel)
    return result
