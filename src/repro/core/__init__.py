"""Core data model: schemas, tuples, relations (set semantics), bags
(multiset semantics), and the semiring/K-relation generalization."""

from .bags import Bag, bag_join_all
from .krelations import KRelation
from .relations import Relation, join_all
from .schema import EMPTY_SCHEMA, Attribute, Schema, schema
from .semirings import (
    ALL_SEMIRINGS,
    BOOLEAN,
    NATURALS,
    NONNEG_RATIONALS,
    TROPICAL,
    VITERBI,
    Semiring,
    check_semiring_laws,
)
from .tuples import EMPTY_TUP, Tup

__all__ = [
    "ALL_SEMIRINGS",
    "Attribute",
    "BOOLEAN",
    "Bag",
    "EMPTY_SCHEMA",
    "EMPTY_TUP",
    "KRelation",
    "NATURALS",
    "NONNEG_RATIONALS",
    "Relation",
    "Schema",
    "Semiring",
    "TROPICAL",
    "Tup",
    "VITERBI",
    "bag_join_all",
    "check_semiring_laws",
    "join_all",
    "schema",
]
