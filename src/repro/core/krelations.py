"""K-relations: relations annotated with semiring values.

A K-relation over a schema X assigns each X-tuple an element of a semiring
K, with finite support.  Bags are exactly the Z>=0-relations and relations
the B-relations (Section 2 of the paper); this module generalizes the bag
machinery so the paper's open problem — consistency over arbitrary
positive semirings (Section 6 / [AK20]) — can be explored with the same
API.

Marginals sum annotations in K; joins multiply them.  For the bag and
Boolean semirings these coincide with :class:`repro.core.bags.Bag` and
:class:`repro.core.relations.Relation` semantics, which the test suite
verifies.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from ..engine import kernels
from ..errors import MultiplicityError, SchemaError
from .bags import Bag
from .relations import Relation
from .schema import Schema
from .semirings import BOOLEAN, NATURALS, Semiring
from .tuples import Tup


class KRelation:
    """An immutable K-relation: tuples annotated with semiring values.

    Tuples whose annotation equals the semiring zero are dropped, so the
    support is always exactly the key set (this requires no special care
    only because the provided semirings are positive).
    """

    __slots__ = ("_schema", "_semiring", "_annots")

    def __init__(
        self,
        schema: Schema,
        semiring: Semiring,
        annots: Mapping[tuple, Any],
    ) -> None:
        self._schema = schema
        self._semiring = semiring
        cleaned: dict[tuple, Any] = {}
        for row, value in annots.items():
            row = tuple(row)
            if len(row) != len(schema):
                raise SchemaError(
                    f"row {row!r} has arity {len(row)}, schema {schema!r} "
                    f"has arity {len(schema)}"
                )
            if not semiring.validate(value):
                raise MultiplicityError(
                    f"value {value!r} is not a valid {semiring.name} element"
                )
            if not semiring.is_zero(value):
                cleaned[row] = value
        self._annots = cleaned

    # -- conversions -------------------------------------------------------

    @classmethod
    def from_bag(cls, bag: Bag) -> "KRelation":
        return cls(bag.schema, NATURALS, dict(bag.items()))

    @classmethod
    def from_relation(cls, relation: Relation) -> "KRelation":
        return cls(
            relation.schema, BOOLEAN, {row: True for row in relation.rows}
        )

    def to_bag(self) -> Bag:
        if self._semiring is not NATURALS:
            raise MultiplicityError(
                f"cannot convert a {self._semiring.name}-relation to a bag"
            )
        return Bag(self._schema, self._annots)

    def to_relation(self) -> Relation:
        """The support as a relation (valid for positive semirings)."""
        return Relation(self._schema, self._annots.keys())

    # -- accessors -----------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def semiring(self) -> Semiring:
        return self._semiring

    def annotation(self, row) -> Any:
        if isinstance(row, Tup):
            row = row.values
        return self._annots.get(tuple(row), self._semiring.zero)

    __call__ = annotation

    def items(self) -> Iterator[tuple[tuple, Any]]:
        return iter(self._annots.items())

    def support_rows(self) -> Iterable[tuple]:
        return self._annots.keys()

    def __len__(self) -> int:
        return len(self._annots)

    def __bool__(self) -> bool:
        return bool(self._annots)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, KRelation):
            return (
                self._schema == other._schema
                and self._semiring is other._semiring
                and self._annots == other._annots
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(
            (self._schema, self._semiring.name, frozenset(self._annots.items()))
        )

    def __repr__(self) -> str:
        return (
            f"KRelation({self._semiring.name}, {list(self._schema.attrs)!r}, "
            f"{len(self._annots)} tuples)"
        )

    # -- algebra ----------------------------------------------------------

    def marginal(self, target: Schema) -> "KRelation":
        """Sum annotations over tuples with equal projection on
        ``target`` — the engine's semiring-generic aggregation kernel."""
        out = kernels.aggregate_table(
            self._annots.items(),
            self._schema.attrs,
            target.attrs,
            self._semiring.add,
        )
        return KRelation(target, self._semiring, out)

    def join(self, other: "KRelation") -> "KRelation":
        """Natural join with annotations multiplied in K — the engine's
        semiring-generic hash-join kernel."""
        if self._semiring is not other._semiring:
            raise MultiplicityError(
                f"cannot join a {self._semiring.name}-relation with a "
                f"{other._semiring.name}-relation"
            )
        plan = kernels.join_plan(self._schema.attrs, other._schema.attrs)
        out = kernels.hash_join_annotations(
            self._annots.items(),
            plan,
            kernels.group_items(other._annots.items(), plan.right_key),
            self._semiring.mul,
            self._semiring.add,
        )
        return KRelation(plan.union, self._semiring, out)


def krelations_consistent_boolean(r: KRelation, s: KRelation) -> bool:
    """Consistency of two B-relations = consistency of their supports.

    For the Boolean semiring the paper's (set-case) criterion applies: two
    relations are consistent iff they have equal projections on the common
    attributes.
    """
    common = r.schema & s.schema
    return r.marginal(common) == s.marginal(common)
