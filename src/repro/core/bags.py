"""Bags (multiset relations) and their marginals.

A :class:`Bag` over a schema X is the paper's function
``R : Tup(X) -> {0, 1, 2, ...}`` with finite support.  The central
operation is the *marginal* (Equation 2 of the paper):

    R[Z](t)  =  sum of R(r) over all r in the support with r[Z] = t

which generalizes relational projection to bag semantics.  The module also
implements the bag join (multiplicities multiply), bag containment, the
five size measures of Section 5.2 (support size, multiplicity bound,
multiplicity size, unary size, binary size), and the arithmetic used by
the paper's constructions (sums, scalar multiples, differences).

All multiplicities are arbitrary-precision Python integers, so the
"multiplicities in binary" regime of Section 5 (e.g. Example 1's ``2^n``
multiplicities) is exact.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..engine import columnar, kernels
from ..engine.index import BagIndex
from ..errors import MultiplicityError, SchemaError
from .relations import Relation
from .schema import Attribute, Schema
from .tuples import Tup


class Bag:
    """An immutable finite bag over a schema.

    Internally a mapping from raw value tuples (canonical attribute order)
    to positive integer multiplicities; tuples with multiplicity zero are
    never stored, so ``Supp(R)`` is exactly the key set.

    >>> R = Bag.from_pairs(Schema(["A", "B"]), [((1, 2), 2), ((2, 2), 1)])
    >>> R.multiplicity((1, 2))
    2
    >>> R.marginal(Schema(["B"])).multiplicity((2,))
    3
    """

    __slots__ = ("_schema", "_mults", "_index")

    def __init__(self, schema: Schema, mults: Mapping[tuple, int]) -> None:
        self._schema = schema
        self._index = None
        cleaned: dict[tuple, int] = {}
        for row, mult in mults.items():
            row = tuple(row)
            if len(row) != len(schema):
                raise SchemaError(
                    f"row {row!r} has arity {len(row)}, schema {schema!r} "
                    f"has arity {len(schema)}"
                )
            if not isinstance(mult, int) or isinstance(mult, bool):
                raise MultiplicityError(
                    f"multiplicity of {row!r} is {mult!r}; must be an int"
                )
            if mult < 0:
                raise MultiplicityError(
                    f"multiplicity of {row!r} is negative: {mult}"
                )
            if mult > 0:
                cleaned[row] = mult
        self._mults = cleaned

    # -- constructors ----------------------------------------------------

    @classmethod
    def _from_clean(cls, schema: Schema, mults: dict[tuple, int]) -> "Bag":
        """Internal fast path: wrap a kernel-produced table without
        re-validating rows.  The caller guarantees every row has the
        schema's arity and every multiplicity is a positive int (kernel
        outputs are sums/products of validated inputs)."""
        bag = object.__new__(cls)
        bag._schema = schema
        bag._mults = mults
        bag._index = None
        return bag

    @classmethod
    def from_pairs(
        cls, schema: Schema, pairs: Iterable[tuple[Sequence, int]]
    ) -> "Bag":
        """Build from ``(row, multiplicity)`` pairs; repeated rows add up."""
        mults: dict[tuple, int] = {}
        for row, mult in pairs:
            row = tuple(row)
            mults[row] = mults.get(row, 0) + mult
        return cls(schema, mults)

    @classmethod
    def from_mappings(
        cls,
        pairs: Iterable[tuple[Mapping[Attribute, Any], int]],
        schema: Schema | None = None,
    ) -> "Bag":
        """Build from ``(attribute mapping, multiplicity)`` pairs."""
        pairs = list(pairs)
        if schema is None:
            if not pairs:
                raise SchemaError(
                    "cannot infer schema from an empty bag; pass schema="
                )
            schema = Schema(pairs[0][0].keys())
        raw = []
        for mapping, mult in pairs:
            if set(mapping.keys()) != set(schema.attrs):
                raise SchemaError(
                    f"row {mapping!r} does not match schema {schema!r}"
                )
            raw.append((tuple(mapping[a] for a in schema.attrs), mult))
        return cls.from_pairs(schema, raw)

    @classmethod
    def from_relation(cls, relation: Relation) -> "Bag":
        """The bag with multiplicity 1 on every tuple of the relation."""
        return cls(relation.schema, {row: 1 for row in relation.rows})

    @classmethod
    def empty(cls, schema: Schema) -> "Bag":
        return cls(schema, {})

    @classmethod
    def empty_schema_bag(cls, multiplicity: int) -> "Bag":
        """The bag over the empty schema holding the empty tuple
        ``multiplicity`` times (zero gives the empty bag)."""
        if multiplicity == 0:
            return cls(Schema(), {})
        return cls(Schema(), {(): multiplicity})

    # -- accessors -------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    def multiplicity(self, row) -> int:
        """R(t) for a raw row or a :class:`Tup` (0 if absent)."""
        if isinstance(row, Tup):
            if row.schema != self._schema:
                raise SchemaError(
                    f"tuple schema {row.schema!r} does not match bag schema "
                    f"{self._schema!r}"
                )
            row = row.values
        return self._mults.get(tuple(row), 0)

    __call__ = multiplicity

    def support(self) -> Relation:
        """Supp(R) as a :class:`Relation` (the paper's ``R'``)."""
        return Relation._from_clean(self._schema, frozenset(self._mults))

    def support_rows(self) -> Iterable[tuple]:
        """Raw support rows (no Relation wrapper); cheap iteration."""
        return self._mults.keys()

    def items(self) -> Iterator[tuple[tuple, int]]:
        """Iterate ``(raw row, multiplicity)`` pairs."""
        return iter(self._mults.items())

    def tuples(self) -> Iterator[tuple[Tup, int]]:
        """Iterate ``(Tup, multiplicity)`` pairs in deterministic order.

        The order is computed once per bag and cached on its index (the
        seed re-sorted the whole support by ``repr`` on every call).
        """
        for row in BagIndex.of(self).sorted_rows():
            yield Tup(self._schema, row), self._mults[row]

    def __len__(self) -> int:
        """Number of distinct tuples in the support."""
        return len(self._mults)

    def __bool__(self) -> bool:
        return bool(self._mults)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Bag):
            return self._schema == other._schema and self._mults == other._mults
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._schema, frozenset(self._mults.items())))

    def __reduce__(self):
        """Pickle as (schema, multiplicities) only: the lazily-built
        index (and anything adopted through the fingerprint registry)
        is per-process state and must not travel — process-executor
        payloads and returned witnesses rebuild it on demand."""
        return (_rebuild_bag, (self._schema, dict(self._mults)))

    def __repr__(self) -> str:
        shown = sorted(self._mults.items(), key=repr)[:6]
        suffix = ", ..." if len(self._mults) > 6 else ""
        pretty = ", ".join(f"{row!r}: {mult}" for row, mult in shown)
        return (
            f"Bag({list(self._schema.attrs)!r}, {{{pretty}{suffix}}} "
            f"[{len(self._mults)} tuples])"
        )

    # -- size measures (Section 5.2) ---------------------------------------

    @property
    def support_size(self) -> int:
        """``||R||supp``: the number of distinct tuples."""
        return len(self._mults)

    @property
    def multiplicity_bound(self) -> int:
        """``||R||mu``: the largest multiplicity (0 for the empty bag)."""
        return max(self._mults.values(), default=0)

    @property
    def multiplicity_size(self) -> float:
        """``||R||mb``: max over tuples of log2(R(r) + 1)."""
        return max(
            (math.log2(m + 1) for m in self._mults.values()), default=0.0
        )

    @property
    def unary_size(self) -> int:
        """``||R||u``: the total multiplicity (multiset cardinality)."""
        return sum(self._mults.values())

    @property
    def binary_size(self) -> float:
        """``||R||b``: sum over tuples of log2(R(r) + 1)."""
        return sum(math.log2(m + 1) for m in self._mults.values())

    # -- marginals and joins -----------------------------------------------

    def marginal(self, target: Schema) -> "Bag":
        """The marginal R[Z] of Equation (2): sum multiplicities over
        tuples with equal projection.

        Routed through the engine kernel and memoized per bag: repeated
        marginals on the same target (the Lemma 2 consistency test, the
        pairwise phase of every global check) are computed once.
        """
        return BagIndex.of(self).marginal(target)

    def bag_join(self, other: "Bag") -> "Bag":
        """The bag join R |><|b S: support is the join of supports, and
        multiplicities multiply (Section 2).

        A columnar sort-merge group join when both sides carry an
        encoding (:mod:`repro.engine.columnar`); otherwise a kernel
        hash join probing the other side's cached buckets, so repeated
        joins against an unchanged bag skip the build phase.
        """
        plan = kernels.join_plan(self._schema.attrs, other._schema.attrs)
        out = columnar.try_join(self, other, plan)
        if out is None:
            columnar.count_row("joins")
            out = kernels.hash_join_mults(
                self._mults.items(), plan,
                BagIndex.of(other).buckets(plan.common),
            )
        return Bag._from_clean(plan.union, out)

    # -- order and arithmetic ------------------------------------------------

    def bag_contained_in(self, other: "Bag") -> bool:
        """R <=b S: R(t) <= S(t) for every tuple (Section 2)."""
        if self._schema != other._schema:
            raise SchemaError("bag containment requires equal schemas")
        return all(
            mult <= other._mults.get(row, 0)
            for row, mult in self._mults.items()
        )

    def __le__(self, other: "Bag") -> bool:
        return self.bag_contained_in(other)

    def __add__(self, other: "Bag") -> "Bag":
        if self._schema != other._schema:
            raise SchemaError("bag sum requires equal schemas")
        out = dict(self._mults)
        for row, mult in other._mults.items():
            out[row] = out.get(row, 0) + mult
        return Bag(self._schema, out)

    def __sub__(self, other: "Bag") -> "Bag":
        """Multiset difference; raises if the result would be negative."""
        if self._schema != other._schema:
            raise SchemaError("bag difference requires equal schemas")
        out = dict(self._mults)
        for row, mult in other._mults.items():
            new = out.get(row, 0) - mult
            if new < 0:
                raise MultiplicityError(
                    f"difference would make {row!r} negative"
                )
            out[row] = new
        return Bag(self._schema, out)

    def scale(self, factor: int) -> "Bag":
        """Multiply every multiplicity by a non-negative integer."""
        if factor < 0:
            raise MultiplicityError(f"scale factor is negative: {factor}")
        return Bag(
            self._schema, {row: mult * factor for row, mult in self._mults.items()}
        )

    def restrict(self, predicate) -> "Bag":
        """Keep only tuples whose :class:`Tup` satisfies ``predicate``."""
        kept = {
            row: mult
            for row, mult in self._mults.items()
            if predicate(Tup(self._schema, row))
        }
        return Bag(self._schema, kept)

    def is_relation(self) -> bool:
        """True if every multiplicity is 0 or 1."""
        return all(mult == 1 for mult in self._mults.values())

    def active_domain(self, attr: Attribute) -> set:
        idx = self._schema.index_of(attr)
        return {row[idx] for row in self._mults}


def _rebuild_bag(schema: Schema, mults: dict[tuple, int]) -> Bag:
    """Unpickle target for :meth:`Bag.__reduce__` (rows were validated
    when the pickled bag was built, so the clean path applies)."""
    return Bag._from_clean(schema, mults)


def bag_join_all(bags: Sequence[Bag]) -> Bag:
    """The n-ary bag join; empty input yields the join identity (the empty
    tuple with multiplicity 1 over the empty schema)."""
    if not bags:
        return Bag(Schema(), {(): 1})
    result = bags[0]
    for other in bags[1:]:
        result = result.bag_join(other)
    return result
