"""Schemas: finite sets of attributes with a canonical order.

The paper works with finite sets of attributes ``X`` and writes ``XY`` for
the union of ``X`` and ``Y``.  A :class:`Schema` is an immutable, canonically ordered
set of attribute names.  The canonical order (sorted by the attribute's
string form, then by the attribute itself where comparable) gives every
tuple over the schema a fixed positional layout, which lets bags store raw
value tuples instead of dictionaries.

Attributes are ordinary hashable Python values; strings are the common
case.  The empty schema is legal and important: Lemma 4 of the paper
produces bags over the empty schema (the empty tuple with a multiplicity).
"""

from __future__ import annotations

from functools import lru_cache
from operator import itemgetter
from typing import Any, Callable, Hashable, Iterable, Iterator

from ..errors import SchemaError

Attribute = Hashable


def _canonical_sort(attrs: Iterable[Attribute]) -> tuple[Attribute, ...]:
    """Sort attributes deterministically even for mixed types.

    Sorting key is ``(type name, repr)`` which is total for all hashable
    values, so schemas over e.g. ints and strings still have a canonical
    order.
    """
    return tuple(sorted(attrs, key=lambda a: (type(a).__name__, repr(a))))


class Schema:
    """An immutable set of attributes with a canonical tuple order.

    Supports the set algebra the paper uses: union (``|`` or
    :meth:`union`), intersection (``&``), difference (``-``), subset tests
    (``<=``), and membership.  Iteration yields attributes in canonical
    order.

    >>> X = Schema(["B", "A"]); Y = Schema(["B", "C"])
    >>> list(X), list(X | Y), list(X & Y)
    (['A', 'B'], ['A', 'B', 'C'], ['B'])
    """

    __slots__ = ("_attrs", "_set", "_hash", "_pos")

    def __init__(self, attrs: Iterable[Attribute] = ()) -> None:
        attrs = tuple(attrs)
        attr_set = frozenset(attrs)
        if len(attr_set) != len(attrs):
            raise SchemaError(f"duplicate attributes in schema: {attrs!r}")
        self._attrs = _canonical_sort(attr_set)
        self._set = attr_set
        self._hash = hash(self._attrs)
        self._pos = {attr: i for i, attr in enumerate(self._attrs)}

    @property
    def attrs(self) -> tuple[Attribute, ...]:
        """The attributes in canonical order."""
        return self._attrs

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    def __contains__(self, attr: Any) -> bool:
        return attr in self._set

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Schema):
            return self._set == other._set
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Schema({list(self._attrs)!r})"

    # -- set algebra ----------------------------------------------------

    def union(self, other: "Schema") -> "Schema":
        return Schema(self._set | other._set)

    __or__ = union

    def intersection(self, other: "Schema") -> "Schema":
        return Schema(self._set & other._set)

    __and__ = intersection

    def difference(self, other: "Schema") -> "Schema":
        return Schema(self._set - other._set)

    __sub__ = difference

    def issubset(self, other: "Schema") -> bool:
        return self._set <= other._set

    def __le__(self, other: "Schema") -> bool:
        return self.issubset(other)

    def __lt__(self, other: "Schema") -> bool:
        return self._set < other._set

    def isdisjoint(self, other: "Schema") -> bool:
        return self._set.isdisjoint(other._set)

    def index_of(self, attr: Attribute) -> int:
        """Position of ``attr`` in the canonical order (O(1) lookup)."""
        try:
            return self._pos[attr]
        except KeyError:
            raise SchemaError(
                f"attribute {attr!r} not in schema {self!r}"
            ) from None

    def without(self, attr: Attribute) -> "Schema":
        """The schema with ``attr`` removed (used by vertex deletion)."""
        if attr not in self._set:
            raise SchemaError(f"attribute {attr!r} not in schema {self!r}")
        return Schema(self._set - {attr})

    def as_frozenset(self) -> frozenset:
        return self._set


EMPTY_SCHEMA = Schema()


def schema(*attrs: Attribute) -> Schema:
    """Convenience constructor: ``schema("A", "B")``."""
    return Schema(attrs)


@lru_cache(maxsize=65536)
def projection_indices(
    source_attrs: tuple[Attribute, ...], target_attrs: tuple[Attribute, ...]
) -> tuple[int, ...]:
    """Positions in a ``source``-ordered value tuple of the ``target`` attrs.

    Cached because marginal computations project the same (schema,
    subschema) pair over every tuple of a bag.
    """
    positions = {attr: i for i, attr in enumerate(source_attrs)}
    try:
        return tuple(positions[attr] for attr in target_attrs)
    except KeyError as exc:
        raise SchemaError(
            f"target attributes {target_attrs!r} not a subset of "
            f"source attributes {source_attrs!r}"
        ) from exc


def _empty_projection(values: tuple) -> tuple:
    return ()


@lru_cache(maxsize=65536)
def projection_plan(
    source_attrs: tuple[Attribute, ...], target_attrs: tuple[Attribute, ...]
) -> Callable[[tuple], tuple]:
    """A precompiled projector: maps a ``source``-ordered value tuple to
    its ``target``-ordered projection.

    Built on :func:`operator.itemgetter`, which runs the index gather in
    C — the engine kernels apply one plan per (source, target) pair to
    every row of a bag, so the per-row cost is what matters.  The empty
    and singleton targets need special-casing because ``itemgetter``
    with one index returns a bare value rather than a 1-tuple.
    """
    idx = projection_indices(source_attrs, target_attrs)
    if not idx:
        return _empty_projection
    if len(idx) == 1:
        only = idx[0]
        return lambda values: (values[only],)
    return itemgetter(*idx)


def project_values(
    values: tuple, source: Schema, target: Schema
) -> tuple:
    """Project a raw value tuple laid out for ``source`` onto ``target``."""
    return projection_plan(source.attrs, target.attrs)(values)
