"""HLY80: 3-colorability reduces to global consistency of relations.

Honeyman, Ladner, and Yannakakis showed the universal relation problem
NP-complete by reducing from 3-Colorability with binary relations of six
tuples each (Section 5.1 of the paper).  For a graph G, each edge (u, v)
becomes a relation over schema {u, v} holding all six ordered pairs of
distinct colors.  The collection is globally consistent iff G is
3-colorable:

* a witness tuple is a proper coloring (its projection on every edge
  avoids the diagonal);
* conversely, the set of *all* proper colorings projects onto all six
  pairs on every edge, because color permutations act transitively on
  ordered pairs of distinct colors.

:func:`is_three_colorable_bruteforce` is the independent oracle the tests
compare against.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from ..core.relations import Relation
from ..core.schema import Schema
from ..errors import ReductionError

COLORS = ("r", "g", "b")


def coloring_relations(
    edges: Iterable[tuple[Hashable, Hashable]],
) -> list[Relation]:
    """The HLY80 instance: one six-tuple binary relation per graph edge."""
    relations = []
    for u, v in edges:
        if u == v:
            raise ReductionError(f"self-loop on {u!r}: never 3-colorable")
        schema = Schema([u, v])
        rows = [
            (
                {u: c1, v: c2}[schema.attrs[0]],
                {u: c1, v: c2}[schema.attrs[1]],
            )
            for c1 in COLORS
            for c2 in COLORS
            if c1 != c2
        ]
        relations.append(Relation.from_pairs(schema, rows))
    return relations


def decode_coloring(
    witness: Relation,
) -> dict:
    """A proper coloring read off any single witness tuple."""
    if not witness:
        raise ReductionError("empty witness encodes no coloring")
    tup = next(iter(witness))
    return tup.as_mapping()


def is_proper_coloring(
    edges: Iterable[tuple[Hashable, Hashable]], coloring: dict
) -> bool:
    return all(coloring[u] != coloring[v] for u, v in edges)


def is_three_colorable_bruteforce(
    vertices: Sequence[Hashable],
    edges: Sequence[tuple[Hashable, Hashable]],
) -> bool:
    """Backtracking 3-coloring — the independent oracle."""
    adjacency: dict[Hashable, set] = {v: set() for v in vertices}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    order = sorted(adjacency, key=lambda v: (-len(adjacency[v]), repr(v)))
    coloring: dict = {}

    def assign(i: int) -> bool:
        if i == len(order):
            return True
        vertex = order[i]
        for color in COLORS:
            if all(
                coloring.get(nb) != color for nb in adjacency[vertex]
            ):
                coloring[vertex] = color
                if assign(i + 1):
                    return True
                del coloring[vertex]
        return False

    return assign(0)


def is_three_colorable_via_consistency(
    edges: Sequence[tuple[Hashable, Hashable]],
) -> bool:
    """Decide 3-colorability through the reduction: the HLY80 relations
    are globally consistent iff the graph is 3-colorable.

    Uses the join-and-project decision for relations (exponential when
    the schema is part of the input — exactly the NP-hardness the
    reduction establishes).
    """
    from ..consistency.setcase import relations_globally_consistent

    if not edges:
        return True
    return relations_globally_consistent(coloring_relations(edges))
