"""Polynomial-time reductions: HLY80 3-colorability, Irving-Jerrum 3DCT,
and the Lemma 6 / Lemma 7 chains that spread NP-hardness along the C_n
and H_n families."""

from . import cycle_chain, hn_chain
from .three_coloring import (
    COLORS,
    coloring_relations,
    decode_coloring,
    is_proper_coloring,
    is_three_colorable_bruteforce,
    is_three_colorable_via_consistency,
)
from .three_dct import (
    ThreeDCT,
    decide_3dct,
    project_table,
    random_consistent_instance,
    random_instance,
)

__all__ = [
    "COLORS",
    "ThreeDCT",
    "coloring_relations",
    "cycle_chain",
    "decide_3dct",
    "decode_coloring",
    "hn_chain",
    "is_proper_coloring",
    "is_three_colorable_bruteforce",
    "is_three_colorable_via_consistency",
    "project_table",
    "random_consistent_instance",
    "random_instance",
]
