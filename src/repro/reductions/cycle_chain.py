"""Lemma 6: the reduction GCPB(C_{n-1}) <=p GCPB(C_n).

An instance over the (n-1)-cycle — bags R1(A1A2), ..., R_{n-1}(A_{n-1}A1)
— maps to an instance over the n-cycle by re-schematizing the closing
bag onto (A_{n-1}, A_n) for a fresh attribute A_n (a copy of A1's role)
and appending a *diagonal* bag over (A_n, A1) whose entry at (a, a) is
the multiplicity of a in R_{n-1}[A1].  The diagonal pins A_n = A_1, so
witnesses transfer in both directions; together with the NP-hardness of
GCPB(C3) (3DCT) this makes GCPB(C_n) NP-complete for every n >= 3
(Theorem 4's cyclic half for the C_n family).

All three maps are provided: the instance map
(:func:`reduce_cycle_instance`) and the witness maps in both directions
(:func:`map_witness_forward`, :func:`map_witness_backward`).
"""

from __future__ import annotations

from typing import Sequence

from ..core.bags import Bag
from ..core.schema import Schema
from ..errors import ReductionError


def _cycle_attrs(m: int, prefix: str = "A") -> list[str]:
    return [f"{prefix}{i}" for i in range(1, m + 1)]


def check_cycle_instance(
    bags: Sequence[Bag], prefix: str = "A"
) -> list[str]:
    """Validate that ``bags`` is a GCPB(C_m) instance (schemas are the
    consecutive pairs of A1..Am, closing at (Am, A1)); returns the
    attribute list."""
    m = len(bags)
    if m < 3:
        raise ReductionError(f"a cycle instance needs >= 3 bags, got {m}")
    attrs = _cycle_attrs(m, prefix)
    for i, bag in enumerate(bags):
        expected = Schema([attrs[i], attrs[(i + 1) % m]])
        if bag.schema != expected:
            raise ReductionError(
                f"bag {i} has schema {bag.schema!r}, expected {expected!r}"
            )
    return attrs


def reduce_cycle_instance(
    bags: Sequence[Bag], prefix: str = "A"
) -> list[Bag]:
    """The Lemma 6 instance map: GCPB(C_{n-1}) -> GCPB(C_n)."""
    attrs = check_cycle_instance(bags, prefix)
    m = len(bags)  # instance over C_m, producing C_{m+1}
    closing = bags[-1]  # schema {A_m, A_1}
    a_first, a_last = attrs[0], attrs[-1]
    a_new = f"{prefix}{m + 1}"
    # Identical copy of the closing bag with A1 renamed to the fresh A_{m+1}.
    copied = Bag.from_mappings(
        [
            (
                {
                    a_last: tup[a_last],
                    a_new: tup[a_first],
                },
                mult,
            )
            for tup, mult in closing.tuples()
        ],
        schema=Schema([a_last, a_new]),
    )
    # Diagonal bag over (A_{m+1}, A_1) carrying the A1-marginal of the
    # closing bag.
    a1_marginal = closing.marginal(Schema([a_first]))
    diagonal = Bag.from_mappings(
        [
            ({a_new: tup[a_first], a_first: tup[a_first]}, mult)
            for tup, mult in a1_marginal.tuples()
        ],
        schema=Schema([a_new, a_first]),
    )
    return list(bags[:-1]) + [copied, diagonal]


def map_witness_forward(
    witness: Bag, n_source: int, prefix: str = "A"
) -> Bag:
    """Map a witness over A1..A_{n_source} to one over A1..A_{n_source+1}
    by pinning the fresh attribute to A1's value."""
    attrs = _cycle_attrs(n_source, prefix)
    expected = Schema(attrs)
    if witness.schema != expected:
        raise ReductionError(
            f"witness schema {witness.schema!r}, expected {expected!r}"
        )
    a_new = f"{prefix}{n_source + 1}"
    rows = []
    for tup, mult in witness.tuples():
        mapping = tup.as_mapping()
        mapping[a_new] = mapping[attrs[0]]
        rows.append((mapping, mult))
    return Bag.from_mappings(rows, schema=Schema(attrs + [a_new]))


def map_witness_backward(
    witness: Bag, n_target: int, prefix: str = "A"
) -> Bag:
    """Map a witness over A1..A_{n_target+1} back to A1..A_{n_target}.

    Only tuples with A_{n_target+1} = A_1 can carry multiplicity in a
    genuine witness (the diagonal bag forces it); the map drops the
    fresh attribute.
    """
    attrs = _cycle_attrs(n_target + 1, prefix)
    expected = Schema(attrs)
    if witness.schema != expected:
        raise ReductionError(
            f"witness schema {witness.schema!r}, expected {expected!r}"
        )
    a_first, a_new = attrs[0], attrs[-1]
    rows = []
    for tup, mult in witness.tuples():
        mapping = tup.as_mapping()
        if mapping[a_new] != mapping[a_first]:
            raise ReductionError(
                "witness has off-diagonal mass on (A_new, A_1); it cannot "
                "witness the reduced instance"
            )
        del mapping[a_new]
        rows.append((mapping, mult))
    return Bag.from_mappings(rows, schema=Schema(attrs[:-1]))
