"""3-dimensional contingency tables (Irving-Jerrum) and GCPB(C3).

The consistency problem for 3-dimensional statistical data tables
(3DCT): given row sums R(i, k), column sums C(j, k) and file sums
F(i, j), is there a non-negative integer table X(i, j, k) with those
two-dimensional marginals?  Irving and Jerrum proved it NP-complete;
Lemma 6 of the paper observes that GCPB(C3) — global consistency of
three bags over the triangle schema {X,Y}, {Y,Z}, {Z,X} — generalizes it
directly, which seeds the NP-hardness side of the dichotomy
(Theorem 4).

:class:`ThreeDCT` carries the three marginal tables;
:meth:`ThreeDCT.to_bags` is the translation into a GCPB(C3) instance,
and :func:`project_table` builds consistent instances from hidden
tables (the planted-witness generator used by tests and benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import random

from ..core.bags import Bag
from ..core.schema import Schema
from ..errors import ReductionError

ATTR_X = "X"
ATTR_Y = "Y"
ATTR_Z = "Z"


@dataclass(frozen=True)
class ThreeDCT:
    """A 3DCT instance over index sets [n] x [n] x [n].

    ``row_sums[(i, k)]``, ``col_sums[(j, k)]`` and ``file_sums[(i, j)]``
    are the prescribed marginals R, C, F of the Irving-Jerrum problem;
    missing keys mean zero.
    """

    n: int
    row_sums: Mapping[tuple[int, int], int]
    col_sums: Mapping[tuple[int, int], int]
    file_sums: Mapping[tuple[int, int], int]

    def __post_init__(self) -> None:
        for name, table in (
            ("row_sums", self.row_sums),
            ("col_sums", self.col_sums),
            ("file_sums", self.file_sums),
        ):
            for (a, b), value in table.items():
                if not (1 <= a <= self.n and 1 <= b <= self.n):
                    raise ReductionError(
                        f"{name} index ({a},{b}) outside [1,{self.n}]^2"
                    )
                if value < 0:
                    raise ReductionError(f"{name} has negative entry")

    def to_bags(self) -> list[Bag]:
        """The GCPB(C3) instance: bags over XZ, YZ, XY with the marginal
        tables as multiplicities (zero entries omitted)."""
        xz = Schema([ATTR_X, ATTR_Z])
        yz = Schema([ATTR_Y, ATTR_Z])
        xy = Schema([ATTR_X, ATTR_Y])
        r = Bag.from_mappings(
            [
                ({ATTR_X: i, ATTR_Z: k}, v)
                for (i, k), v in self.row_sums.items()
                if v
            ],
            schema=xz,
        )
        c = Bag.from_mappings(
            [
                ({ATTR_Y: j, ATTR_Z: k}, v)
                for (j, k), v in self.col_sums.items()
                if v
            ],
            schema=yz,
        )
        f = Bag.from_mappings(
            [
                ({ATTR_X: i, ATTR_Y: j}, v)
                for (i, j), v in self.file_sums.items()
                if v
            ],
            schema=xy,
        )
        return [r, c, f]

    def total(self) -> tuple[int, int, int]:
        """Grand totals of the three tables (equal for consistent
        instances)."""
        return (
            sum(self.row_sums.values()),
            sum(self.col_sums.values()),
            sum(self.file_sums.values()),
        )


def project_table(
    n: int, table: Mapping[tuple[int, int, int], int]
) -> ThreeDCT:
    """The (always consistent) 3DCT instance obtained by marginalizing a
    concrete table X(i, j, k) — the planted-witness generator."""
    rows: dict[tuple[int, int], int] = {}
    cols: dict[tuple[int, int], int] = {}
    files: dict[tuple[int, int], int] = {}
    for (i, j, k), value in table.items():
        if value < 0:
            raise ReductionError("table entries must be non-negative")
        if not value:
            continue
        rows[(i, k)] = rows.get((i, k), 0) + value
        cols[(j, k)] = cols.get((j, k), 0) + value
        files[(i, j)] = files.get((i, j), 0) + value
    return ThreeDCT(n, rows, cols, files)


def random_consistent_instance(
    n: int, rng: random.Random, density: float = 0.5, max_entry: int = 5
) -> ThreeDCT:
    """A consistent instance planted from a random table."""
    table = {
        (i, j, k): rng.randint(1, max_entry)
        for i in range(1, n + 1)
        for j in range(1, n + 1)
        for k in range(1, n + 1)
        if rng.random() < density
    }
    return project_table(n, table)


def random_instance(
    n: int, rng: random.Random, total: int = 20
) -> ThreeDCT:
    """Marginal tables with equal grand totals but no planted witness —
    instances that may or may not be consistent."""

    def random_table() -> dict[tuple[int, int], int]:
        table: dict[tuple[int, int], int] = {}
        for _ in range(total):
            key = (rng.randint(1, n), rng.randint(1, n))
            table[key] = table.get(key, 0) + 1
        return table

    return ThreeDCT(n, random_table(), random_table(), random_table())


def decide_3dct(
    instance: ThreeDCT, node_budget: int | None = None
) -> bool:
    """Decide a 3DCT instance through GCPB(C3) (Lemma 6's translation)."""
    from ..consistency.global_ import decide_global_consistency
    from ..lp.integer_feasibility import DEFAULT_NODE_BUDGET

    budget = DEFAULT_NODE_BUDGET if node_budget is None else node_budget
    return decide_global_consistency(
        instance.to_bags(), method="search", node_budget=budget
    )
