"""Lemma 7: the reduction GCPB(H_{n-1}) <=p GCPB(H_n).

``H_n`` has the (n-1)-element subsets of {A1, ..., An} as hyperedges.
Given bags R1(X1), ..., R_{n-1}(X_{n-1}) with Xi = {A1..A_{n-1}} - {Ai},
the reduction introduces a fresh two-valued attribute A_n and builds
bags S1(Y1), ..., S_n(Y_n) with Yi = {A1..An} - {Ai}:

* for i < n:  Si(t, 1) = Ri(t) and Si(t, 2) = M * D_i - Ri(t) for every
  tuple t over the active-domain grid of Xi, where D_i is the size of
  A_i's active domain and M the maximum input multiplicity;
* Sn(t) = M for every grid tuple t over {A1..A_{n-1}}.

Witnesses map by S(t, 1) = R(t), S(t, 2) = M - R(t) forward and
R(t) = S(t, 1) backward.  Combined with GCPB(H3) = GCPB(C3) NP-complete,
this makes GCPB(H_n) NP-complete for every n >= 3 (Theorem 4's cyclic
half for the H_n family).
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

from ..core.bags import Bag
from ..core.schema import Schema
from ..errors import ReductionError


def _hn_attrs(n: int, prefix: str = "A") -> list[str]:
    return [f"{prefix}{i}" for i in range(1, n + 1)]


def check_hn_instance(bags: Sequence[Bag], prefix: str = "A") -> list[str]:
    """Validate that ``bags`` is a GCPB(H_m) instance; m = len(bags)."""
    m = len(bags)
    if m < 3:
        raise ReductionError(f"an H_m instance needs >= 3 bags, got {m}")
    attrs = _hn_attrs(m, prefix)
    for i, bag in enumerate(bags):
        expected = Schema([a for j, a in enumerate(attrs) if j != i])
        if bag.schema != expected:
            raise ReductionError(
                f"bag {i} has schema {bag.schema!r}, expected {expected!r}"
            )
    return attrs


def active_domains(
    bags: Sequence[Bag], attrs: Sequence[str]
) -> dict[str, list]:
    """Active domain of each attribute across all supports, sorted for
    determinism.  Raises when an attribute never occurs (an empty active
    domain makes the grid construction vacuous)."""
    domains: dict[str, set] = {a: set() for a in attrs}
    for bag in bags:
        for attr in bag.schema.attrs:
            domains[attr].update(bag.active_domain(attr))
    out = {}
    for attr in attrs:
        if not domains[attr]:
            raise ReductionError(
                f"attribute {attr!r} has empty active domain; the "
                f"grid-based reduction is undefined"
            )
        out[attr] = sorted(domains[attr], key=repr)
    return out


def _grid(schema: Schema, domains: dict[str, list]):
    """All tuples over the schema's active-domain grid, as mappings."""
    attrs = schema.attrs
    for values in product(*(domains[a] for a in attrs)):
        yield dict(zip(attrs, values))


def reduce_hn_instance(
    bags: Sequence[Bag], prefix: str = "A", fresh_domain=(1, 2)
) -> list[Bag]:
    """The Lemma 7 instance map: GCPB(H_{n-1}) -> GCPB(H_n)."""
    attrs = check_hn_instance(bags, prefix)
    n_minus_1 = len(bags)
    a_new = f"{prefix}{n_minus_1 + 1}"
    one, two = fresh_domain
    domains = active_domains(bags, attrs)
    max_mult = max(bag.multiplicity_bound for bag in bags)
    if max_mult == 0:
        raise ReductionError("all input bags are empty; reduction undefined")
    out: list[Bag] = []
    for i, bag in enumerate(bags):
        d_i = len(domains[attrs[i]])
        schema = bag.schema | Schema([a_new])
        rows = []
        for grid_tuple in _grid(bag.schema, domains):
            raw_row = tuple(grid_tuple[a] for a in bag.schema.attrs)
            mult = bag.multiplicity(raw_row)
            rows.append(({**grid_tuple, a_new: one}, mult))
            rows.append(({**grid_tuple, a_new: two}, max_mult * d_i - mult))
        out.append(Bag.from_mappings(rows, schema=schema))
    # S_n over {A1..A_{n-1}}: constant M on the grid.
    full = Schema(attrs)
    rows = [
        (grid_tuple, max_mult) for grid_tuple in _grid(full, domains)
    ]
    out.append(Bag.from_mappings(rows, schema=full))
    return out


def map_witness_forward(
    witness: Bag,
    bags: Sequence[Bag],
    prefix: str = "A",
    fresh_domain=(1, 2),
) -> Bag:
    """S(t, 1) = R(t), S(t, 2) = M - R(t) over the active-domain grid."""
    attrs = check_hn_instance(bags, prefix)
    expected = Schema(attrs)
    if witness.schema != expected:
        raise ReductionError(
            f"witness schema {witness.schema!r}, expected {expected!r}"
        )
    a_new = f"{prefix}{len(bags) + 1}"
    one, two = fresh_domain
    domains = active_domains(bags, attrs)
    max_mult = max(bag.multiplicity_bound for bag in bags)
    rows = []
    for grid_tuple in _grid(expected, domains):
        raw = tuple(grid_tuple[a] for a in expected.attrs)
        mult = witness.multiplicity(raw)
        if mult > max_mult:
            raise ReductionError(
                "witness multiplicity exceeds the input maximum; it "
                "cannot be a witness of the original instance"
            )
        rows.append(({**grid_tuple, a_new: one}, mult))
        rows.append(({**grid_tuple, a_new: two}, max_mult - mult))
    return Bag.from_mappings(rows, schema=expected | Schema([a_new]))


def map_witness_backward(
    witness: Bag, n_target: int, prefix: str = "A", fresh_domain=(1, 2)
) -> Bag:
    """R(t) = S(t, 1): restrict to the A_n = 1 slice and project it off."""
    attrs = _hn_attrs(n_target + 1, prefix)
    expected = Schema(attrs)
    if witness.schema != expected:
        raise ReductionError(
            f"witness schema {witness.schema!r}, expected {expected!r}"
        )
    a_new = attrs[-1]
    one = fresh_domain[0]
    sliced = witness.restrict(lambda tup: tup[a_new] == one)
    return sliced.marginal(Schema(attrs[:-1]))
