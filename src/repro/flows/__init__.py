"""Flow substrate: capacitated networks and integral max-flow (Dinic)."""

from .maxflow import (
    CutResult,
    FlowResult,
    max_flow,
    min_cut,
    saturated_flow,
    verify_cut,
    verify_flow,
)
from .network import FlowNetwork

__all__ = [
    "CutResult",
    "FlowNetwork",
    "FlowResult",
    "max_flow",
    "min_cut",
    "saturated_flow",
    "verify_cut",
    "verify_flow",
]
