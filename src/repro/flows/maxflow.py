"""Integral maximum flow via Dinic's algorithm.

The integrality theorem for max flow — with integer capacities there is
an integer-valued maximum flow — is what turns the rational feasibility
of the paper's program P(R, S) into a bag witness (Lemma 2, (5) => (1)).
Dinic's algorithm delivers an integral max flow directly, in
O(V^2 E) time, strongly polynomial in the sense required by Corollary 1
(arithmetic on capacities is exact big-int arithmetic).

:func:`max_flow` returns both the value and the per-edge flow;
:func:`saturated_flow` additionally checks the paper's *saturated*
condition: every source-leaving and sink-entering edge runs at capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from .network import FlowNetwork, Node


@dataclass(frozen=True)
class FlowResult:
    """A feasible integral flow: its value and per-edge assignment."""

    value: int
    flow: dict[tuple[Node, Node], int]

    def on(self, u: Node, v: Node) -> int:
        return self.flow.get((u, v), 0)


class _Dinic:
    """Adjacency-array Dinic's with arbitrary-precision capacities."""

    def __init__(self, network: FlowNetwork) -> None:
        self.index: dict[Node, int] = {}
        self.nodes: list[Node] = []
        for node in network.nodes:
            self.index[node] = len(self.nodes)
            self.nodes.append(node)
        n = len(self.nodes)
        self.graph: list[list[list]] = [[] for _ in range(n)]
        self.original: list[tuple[Node, Node]] = []
        for u, v, c in network.edges():
            self._add(self.index[u], self.index[v], c, (u, v))
        self.source = self.index[network.source]
        self.sink = self.index[network.sink]

    def _add(self, u: int, v: int, cap: int, label) -> None:
        # Each edge entry: [to, remaining capacity, index of reverse, label]
        self.graph[u].append([v, cap, len(self.graph[v]), label])
        self.graph[v].append([u, 0, len(self.graph[u]) - 1, None])

    def _bfs(self) -> list[int] | None:
        level = [-1] * len(self.graph)
        level[self.source] = 0
        queue = [self.source]
        while queue:
            nxt = []
            for u in queue:
                for edge in self.graph[u]:
                    v, cap = edge[0], edge[1]
                    if cap > 0 and level[v] < 0:
                        level[v] = level[u] + 1
                        nxt.append(v)
            queue = nxt
        return level if level[self.sink] >= 0 else None

    def _dfs(self, level: list[int], iters: list[int], u: int, limit: int) -> int:
        if u == self.sink:
            return limit
        while iters[u] < len(self.graph[u]):
            edge = self.graph[u][iters[u]]
            v, cap = edge[0], edge[1]
            if cap > 0 and level[v] == level[u] + 1:
                pushed = self._dfs(level, iters, v, min(limit, cap))
                if pushed > 0:
                    edge[1] -= pushed
                    self.graph[v][edge[2]][1] += pushed
                    return pushed
            iters[u] += 1
        return 0

    def run(self) -> int:
        total = 0
        while True:
            level = self._bfs()
            if level is None:
                return total
            iters = [0] * len(self.graph)
            while True:
                pushed = self._dfs(
                    level, iters, self.source, _practical_infinity(self)
                )
                if pushed == 0:
                    break
                total += pushed

    def flows(self) -> dict[tuple[Node, Node], int]:
        out: dict[tuple[Node, Node], int] = {}
        for u in range(len(self.graph)):
            for edge in self.graph[u]:
                label = edge[3]
                if label is None:
                    continue
                # Flow on a forward edge = residual capacity of its reverse.
                reverse = self.graph[edge[0]][edge[2]]
                out[label] = reverse[1]
        return out


def _practical_infinity(dinic: _Dinic) -> int:
    """An upper bound on any augmenting amount: total source capacity + 1."""
    return (
        sum(edge[1] for edge in dinic.graph[dinic.source]) + 1
    )


def max_flow(network: FlowNetwork) -> FlowResult:
    """An integral maximum flow of the network (Dinic's algorithm)."""
    solver = _Dinic(network)
    value = solver.run()
    return FlowResult(value=value, flow=solver.flows())


def saturated_flow(network: FlowNetwork) -> FlowResult | None:
    """A saturated integral flow, or None if none exists.

    A flow is *saturated* when every source-leaving edge and every
    sink-entering edge carries its full capacity (Section 3).  A saturated
    flow exists iff the max-flow value equals both the total source
    capacity and the total sink capacity.
    """
    result = max_flow(network)
    if (
        result.value == network.source_capacity()
        and result.value == network.sink_capacity()
    ):
        return result
    return None


@dataclass(frozen=True)
class CutResult:
    """A source-sink cut: the source-side vertex set and the crossing
    edges.  By max-flow/min-cut its capacity equals the max-flow value,
    making it the dual certificate of flow optimality."""

    source_side: frozenset
    cut_edges: tuple[tuple[Node, Node], ...]
    capacity: int


def min_cut(network: FlowNetwork) -> CutResult:
    """A minimum s-t cut, extracted from the Dinic residual graph.

    After a max flow, the vertices reachable from the source in the
    residual graph form the source side; edges leaving it are the cut.
    The returned capacity equals the max-flow value (max-flow/min-cut),
    which callers can and tests do verify.
    """
    solver = _Dinic(network)
    value = solver.run()
    # Residual reachability from the source.
    seen = {solver.source}
    stack = [solver.source]
    while stack:
        u = stack.pop()
        for edge in solver.graph[u]:
            v, cap = edge[0], edge[1]
            if cap > 0 and v not in seen:
                seen.add(v)
                stack.append(v)
    source_side = frozenset(solver.nodes[i] for i in seen)
    cut_edges = tuple(
        (u, v)
        for u, v, _ in network.edges()
        if u in source_side and v not in source_side
    )
    capacity = sum(network.capacity(u, v) for u, v in cut_edges)
    assert capacity == value, "max-flow/min-cut violated: solver bug"
    return CutResult(source_side, cut_edges, capacity)


def verify_cut(network: FlowNetwork, cut: CutResult) -> bool:
    """Certificate check: the set contains s, excludes t, and the listed
    edges are exactly those leaving it, with the stated capacity."""
    if network.source not in cut.source_side:
        return False
    if network.sink in cut.source_side:
        return False
    expected = {
        (u, v)
        for u, v, _ in network.edges()
        if u in cut.source_side and v not in cut.source_side
    }
    if expected != set(cut.cut_edges):
        return False
    return cut.capacity == sum(
        network.capacity(u, v) for u, v in cut.cut_edges
    )


def verify_flow(network: FlowNetwork, result: FlowResult) -> bool:
    """Certificate check: capacity constraints, conservation, and value."""
    inflow: dict[Node, int] = {}
    outflow: dict[Node, int] = {}
    for (u, v), f in result.flow.items():
        if f < 0 or f > network.capacity(u, v):
            return False
        outflow[u] = outflow.get(u, 0) + f
        inflow[v] = inflow.get(v, 0) + f
    for node in network.nodes:
        if node in (network.source, network.sink):
            continue
        if inflow.get(node, 0) != outflow.get(node, 0):
            return False
    value_out = outflow.get(network.source, 0) - inflow.get(network.source, 0)
    return value_out == result.value
