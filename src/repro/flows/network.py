"""Capacitated flow networks.

A network ``N = (V, E, c, s, t)`` per Section 3 of the paper: a directed
graph with non-negative integer capacities and distinguished source and
sink.  Capacities are arbitrary-precision Python integers, so the
"multiplicities in binary" regime costs nothing.

The class is a thin mutable builder; the max-flow solver
(:mod:`repro.flows.maxflow`) consumes it and reports per-edge flows keyed
by ``(u, v)`` pairs, which the consistency layer maps back to join
tuples.
"""

from __future__ import annotations

from typing import Hashable, Iterator

Node = Hashable


class FlowNetwork:
    """A directed network with integer capacities and a source and sink.

    Parallel edges are merged by summing capacities (the consistency
    networks never create them, but merging keeps the invariant simple).
    Self-loops are rejected.
    """

    __slots__ = ("_source", "_sink", "_capacity", "_nodes")

    def __init__(self, source: Node, sink: Node) -> None:
        if source == sink:
            raise ValueError("source and sink must differ")
        self._source = source
        self._sink = sink
        self._capacity: dict[tuple[Node, Node], int] = {}
        self._nodes: set = {source, sink}

    @property
    def source(self) -> Node:
        return self._source

    @property
    def sink(self) -> Node:
        return self._sink

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def add_edge(self, u: Node, v: Node, capacity: int) -> None:
        if u == v:
            raise ValueError(f"self-loop on {u!r}")
        if not isinstance(capacity, int) or isinstance(capacity, bool):
            raise ValueError(f"capacity must be an int, got {capacity!r}")
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity} on ({u!r},{v!r})")
        self._nodes.add(u)
        self._nodes.add(v)
        key = (u, v)
        self._capacity[key] = self._capacity.get(key, 0) + capacity

    def capacity(self, u: Node, v: Node) -> int:
        return self._capacity.get((u, v), 0)

    def edges(self) -> Iterator[tuple[Node, Node, int]]:
        for (u, v), c in self._capacity.items():
            yield u, v, c

    def edge_count(self) -> int:
        return len(self._capacity)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove an edge (used by the minimal-witness self-reducibility
        loop of Corollary 4)."""
        del self._capacity[(u, v)]

    def copy(self) -> "FlowNetwork":
        clone = FlowNetwork(self._source, self._sink)
        clone._capacity = dict(self._capacity)
        clone._nodes = set(self._nodes)
        return clone

    def source_capacity(self) -> int:
        """Total capacity leaving the source."""
        return sum(
            c for (u, _), c in self._capacity.items() if u == self._source
        )

    def sink_capacity(self) -> int:
        """Total capacity entering the sink."""
        return sum(
            c for (_, v), c in self._capacity.items() if v == self._sink
        )

    def __repr__(self) -> str:
        return (
            f"FlowNetwork({len(self._nodes)} nodes, "
            f"{len(self._capacity)} edges)"
        )
