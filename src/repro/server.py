"""``repro serve``: a long-running consistency-checking daemon.

The serve daemon keeps **one content-addressed verdict store** alive
across connections and speaks the existing batch JSON protocol over a
Unix or TCP socket, so a fleet of clients re-checking overlapping
ledgers pays each verdict once, process-wide — and, with
``--store-dir``, once *ever*: the store spills to sharded segment logs
on disk and a restarted daemon reopens them warm.

* every connection multiplexes requests in order, in either of two
  self-describing formats: **newline-delimited JSON** (one request
  object per line in, one response object per line out — the v1
  protocol, always accepted) or **v2 binary frames**
  (:mod:`repro.engine.wire`: length-prefixed dictionary-coded columnar
  payloads; framed requests get framed responses).  The server sniffs
  the first byte of each message, so one connection may mix both;
* a client discovers frame support through the handshake:
  ``{"op": "ping", "wire": 2}`` is answered with ``"wire": 2`` when the
  daemon accepts frames (``--wire-format columnar``, the default); a
  v1 daemon's ping simply lacks the key and the client stays on JSON
  lines;
* a request is either an ``op`` request (``{"op": "stats"}``,
  ``{"op": "ping"}``, ``{"op": "shutdown"}``) or a **batch payload** —
  exactly the object ``repro batch`` reads from a file (``pairs`` /
  ``collections`` / ``suites``; an explicit ``{"op": "batch", ...}``
  wrapper is also accepted with the job keys inline);
* responses always carry ``"ok"``; successful batch responses put the
  usual report under ``"report"``, failures put a one-line message
  under ``"error"`` (malformed jobs never tear down the connection,
  let alone the daemon);
* ``stats`` exposes the aggregated engine counters, the verdict
  store's hit rate and size — including the persistent tier (shard
  count, disk bytes, hot hits vs read-through disk hits) when one is
  attached — and daemon-level request totals.

Concurrency model (the multi-client upgrade):

* **an engine per connection over the shared store** — each handler
  thread runs its own :class:`~repro.engine.session.Engine`, so
  connections never serialize on another connection's stats lock, and
  per-connection reports still describe that client's workload; the
  verdicts themselves flow through the one shared store (per-shard
  locks when it is persistent, one lock when in-memory);
* **batch admission cap** — at most ``max_inflight`` batches execute
  at once; further batches wait up to ``admission_timeout`` seconds
  and are then refused with a one-line error instead of queueing
  unboundedly (``ping``/``stats``/``shutdown`` are never gated).

A worked session (one line per message)::

    $ repro serve --socket /tmp/repro.sock --store-dir /var/lib/repro &
    $ python - <<'PY'
    from repro.server import ServeClient
    client = ServeClient("/tmp/repro.sock")
    print(client.request({"pairs": [[{"schema": ["A"], "tuples": [[[1], 2]]},
                                     {"schema": ["A"], "tuples": [[[1], 2]]}]]}))
    print(client.request({"op": "stats"})["store"]["hit_rate"])
    client.request({"op": "shutdown"})
    PY
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from typing import Iterable

from .analysis.registry import shared_state
from .engine import wire
from .engine.jobs import JobError, parse_jobs, run_jobs
from .engine.session import Engine, EngineStats
from .errors import ReproError
from .lp.integer_feasibility import DEFAULT_NODE_BUDGET
from .obs import expo as obs_expo
from .obs import metrics as obs_metrics
from .obs import trace as obs_trace

__all__ = ["ReproServer", "ServeClient"]

_OPS = ("batch", "ping", "stats", "metrics", "shutdown")


def _default_inflight() -> int:
    return max(2, min(8, os.cpu_count() or 2))


def _merge_stats(target: EngineStats, source: dict) -> None:
    for field, value in source.items():
        setattr(target, field, getattr(target, field) + value)


# `_thread`/`_server`/`address`/`started` are setup-phase plumbing
# written before any connection exists, so they stay unregistered.
@shared_state(
    "_stats_lock",
    "requests", "batches", "errors", "admission_refusals", "connections",
    "_active_engines", "_retired", "_inflight", "peak_inflight",
    tier="engine",
)
class ReproServer:
    """The daemon: one shared verdict store, an engine per connection.

    ``method`` / ``witnesses`` / ``parallelism`` / ``backend`` are the
    serving defaults applied to every batch request (the same knobs
    ``repro batch`` takes per invocation).  ``store_dir`` attaches a
    :class:`repro.store.PersistentVerdictStore` (created on first use,
    reopened warm thereafter; the daemon owns it and closes it on
    shutdown); ``store`` shares an existing store object instead.
    ``max_inflight`` caps concurrently executing batches
    (``admission_timeout`` seconds of waiting, then a refusal).  Bind
    with :meth:`bind_unix` or :meth:`bind_tcp`, then
    :meth:`serve_forever` (blocking) or :meth:`serve_in_background`
    (tests, embedding).
    """

    def __init__(
        self,
        engine: Engine | None = None,
        capacity: int | None = None,
        node_budget: int | None = DEFAULT_NODE_BUDGET,
        method: str = "auto",
        witnesses: bool = False,
        parallelism: int | None = None,
        backend: str | None = None,
        store=None,
        store_dir: str | None = None,
        shards: int | None = None,
        max_inflight: int | None = None,
        admission_timeout: float = 60.0,
        wire_format: str = "columnar",
        slow_ms: float | None = None,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ReproError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if wire_format not in ("json", "columnar"):
            raise ReproError(
                f"unknown wire_format {wire_format!r}; "
                "choose 'json' or 'columnar'"
            )
        # "columnar" advertises v2 frames in the ping handshake (and
        # accepts them); "json" simulates a v1-only daemon.  Frames
        # decode fine without numpy (the pure-Python blob walk), so the
        # advertisement does not depend on it.
        self.wire_format = wire_format
        self._owns_store = False
        if engine is not None:
            self.engine = engine
        else:
            if store is None and store_dir is not None:
                from .store import PersistentVerdictStore

                store = PersistentVerdictStore(
                    store_dir, shards=shards, capacity=capacity
                )
                capacity = None  # the store owns the bound now
                self._owns_store = True
            self.engine = Engine(
                node_budget=node_budget, capacity=capacity, store=store
            )
        self.store = self.engine.store
        self.node_budget = self.engine.node_budget
        self.method = method
        self.witnesses = witnesses
        self.parallelism = parallelism
        self.backend = backend
        self.max_inflight = (
            max_inflight if max_inflight is not None else _default_inflight()
        )
        self.admission_timeout = admission_timeout
        # Per-server telemetry: request-latency histograms per op plus
        # the daemon totals bridged at exposition time.  A private
        # registry (not the process-global one) so a multi-daemon host
        # and the tests see exact per-server counts.
        self.slow_ms = slow_ms
        self.metrics = obs_metrics.MetricsRegistry()
        self._op_histograms = {
            op: self.metrics.histogram(
                "repro_request_seconds", {"op": op}
            )
            for op in _OPS
        }
        self._admission = threading.BoundedSemaphore(self.max_inflight)
        self.requests = 0
        self.batches = 0
        self.errors = 0
        self.admission_refusals = 0
        self.connections = 0
        self.started = time.monotonic()
        # handler threads race on the counters above; the engine/store
        # counters are locked internally, so lock these too or the
        # stats endpoint undercounts under concurrent connections
        self._stats_lock = threading.Lock()
        # process-backend batches each spawn a full worker pool; admit
        # them one at a time or N overlapping batches oversubscribe the
        # machine with N x cpu_count workers (thread/serial batches
        # share this process and are gated by max_inflight alone)
        self._process_lock = threading.Lock()
        # shutdown may be reached twice (wire op's helper thread + the
        # CLI's serve_forever exit); the lock makes the second caller
        # wait for the first one's store flush instead of racing it
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = False
        self._inflight = 0
        self.peak_inflight = 0
        # per-connection engines: live ones are summed into stats() on
        # the fly, closed ones fold into _retired so nothing is lost
        self._active_engines: set[Engine] = set()
        self._retired = EngineStats()
        self._server: socketserver.BaseServer | None = None
        self._thread: threading.Thread | None = None
        self.address: str | tuple[str, int] | None = None

    # -- binding and lifecycle -------------------------------------------

    def bind_unix(self, path: str) -> str:
        """Listen on a Unix domain socket at ``path``.

        A *stale* socket file (left by a killed daemon — nothing is
        accepting on it) is unlinked and rebound; a *live* one (another
        daemon answers) raises the usual address-in-use error."""
        try:
            self._server = _ThreadingUnixServer(path, _Handler)
        except OSError as exc:
            import errno

            if exc.errno != errno.EADDRINUSE or not _is_stale_socket(path):
                raise
            os.unlink(path)
            self._server = _ThreadingUnixServer(path, _Handler)
        self._server.owner = self  # type: ignore[attr-defined]
        self.address = path
        return path

    def bind_tcp(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Listen on TCP ``host:port`` (port 0 picks a free one);
        returns the bound address."""
        self._server = _ThreadingTCPServer((host, port), _Handler)
        self._server.owner = self  # type: ignore[attr-defined]
        self.address = self._server.server_address[:2]
        return self.address

    def serve_forever(self) -> None:
        if self._server is None:
            raise ReproError("bind_unix() or bind_tcp() before serving")
        self._server.serve_forever(poll_interval=0.1)

    def serve_in_background(self) -> None:
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()

    def shutdown(self) -> None:
        """Stop accepting, then make buffered verdicts durable.  Safe
        to call from several threads (the wire ``shutdown`` op's helper
        and the CLI's post-``serve_forever`` cleanup both land here):
        the first caller does the work, later callers block until it is
        done — so by the time *any* ``shutdown()`` returns, the store
        flush has happened."""
        with self._shutdown_lock:
            if self._shutdown_done:
                return
            self._shutdown_done = True
            if self._server is not None:
                self._server.shutdown()
                self._server.server_close()
            if self._thread is not None:
                self._thread.join(timeout=5)
                self._thread = None
            # Durable on every clean stop; fully close the store only
            # if this daemon created it.
            flush = getattr(self.store, "flush", None)
            if flush is not None:
                flush()
            if self._owns_store:
                self.store.close()

    # -- per-connection engines ------------------------------------------

    def connection_engine(self) -> Engine:
        """A fresh engine over the shared store for one connection (its
        stats describe that client; the verdicts are shared)."""
        engine = Engine(node_budget=self.node_budget, store=self.store)
        with self._stats_lock:
            self.connections += 1
            self._active_engines.add(engine)
        return engine

    def retire_engine(self, engine: Engine) -> None:
        """Fold a closed connection's counters into the daemon totals."""
        with self._stats_lock:
            if engine in self._active_engines:
                self._active_engines.discard(engine)
                _merge_stats(self._retired, engine.stats.as_dict())

    # -- request handling -------------------------------------------------

    def count_request(self, error: bool = False) -> None:
        with self._stats_lock:
            self.requests += 1
            if error:
                self.errors += 1

    def handle_payload(self, payload: object, engine: Engine | None = None) -> dict:
        """One request object in, one response object out (exceptions
        become ``{"ok": false, "error": one-line}``).  ``engine`` is the
        per-connection engine; embedders may omit it to use the base
        engine."""
        self.count_request()
        if engine is None:
            engine = self.engine
        op = payload.get("op", "batch") if isinstance(payload, dict) else "batch"
        histogram = (
            self._op_histograms.get(op) if isinstance(op, str) else None
        )
        name = f"serve.{op}" if isinstance(op, str) else "serve.invalid"
        start = time.perf_counter()
        with obs_trace.start_trace(name, slow_ms=self.slow_ms):
            response = self._handle_op(payload, op, engine)
        if histogram is not None:
            histogram.record(time.perf_counter() - start)
        return response

    def _handle_op(self, payload: object, op: object, engine: Engine) -> dict:
        try:
            if not isinstance(payload, dict):
                raise JobError("request must be a JSON object")
            if op not in _OPS:
                raise JobError(
                    f"unknown op {op!r}; expected one of {list(_OPS)}"
                )
            if op == "ping":
                response = {"ok": True, "op": "ping"}
                if self.wire_format == "columnar":
                    # the v2 handshake: clients that sent {"wire": 2}
                    # read this advertisement and switch to frames
                    response["wire"] = wire.VERSION
                return response
            if op == "stats":
                return {"ok": True, "op": "stats", **self.stats()}
            if op == "metrics":
                return {"ok": True, "op": "metrics", **self.metrics_payload()}
            if op == "shutdown":
                # Stop accepting from a helper thread: shutdown() blocks
                # until serve_forever exits, which must not wait on the
                # handler thread that is writing this response.
                threading.Thread(target=self.shutdown, daemon=True).start()
                return {"ok": True, "op": "shutdown", "bye": True}
            jobs = parse_jobs(
                {k: v for k, v in payload.items() if k != "op"}
            )
            # Admission control: overlapping connections run batches
            # concurrently up to max_inflight; beyond that, callers wait
            # briefly and are then refused with a one-line error rather
            # than queueing without bound (each batch already fans out
            # internally via parallelism/backend).
            if not self._admission.acquire(timeout=self.admission_timeout):
                with self._stats_lock:
                    self.admission_refusals += 1
                    self.errors += 1
                return {
                    "ok": False,
                    "error": (
                        f"server at capacity: {self.max_inflight} batches "
                        f"in flight (waited {self.admission_timeout:g}s)"
                    ),
                }
            try:
                with self._stats_lock:
                    self.batches += 1
                    self._inflight += 1
                    self.peak_inflight = max(
                        self.peak_inflight, self._inflight
                    )
                if self.backend == "process":
                    # one worker pool at a time (see _process_lock)
                    with self._process_lock:
                        report = self._run_jobs(jobs, engine)
                else:
                    report = self._run_jobs(jobs, engine)
            finally:
                with self._stats_lock:
                    self._inflight -= 1
                self._admission.release()
            return {"ok": True, "op": "batch", "report": report}
        except ReproError as exc:
            with self._stats_lock:
                self.errors += 1
            return {"ok": False, "error": str(exc)}

    def _run_jobs(self, jobs, engine: Engine) -> dict:
        return run_jobs(
            jobs,
            engine,
            method=self.method,
            witnesses=self.witnesses,
            parallelism=self.parallelism,
            backend=self.backend,
        )

    def stats(self) -> dict:
        """The ``stats`` endpoint body: aggregated engine counters
        (base + every connection, live and closed), store hit
        rate/size (persistent tier included when attached), daemon
        totals, and admission state."""
        with self._stats_lock:
            requests, batches, errors = self.requests, self.batches, self.errors
            aggregated = EngineStats()
            _merge_stats(aggregated, self._retired.as_dict())
            _merge_stats(aggregated, self.engine.stats.as_dict())
            for engine in self._active_engines:
                _merge_stats(aggregated, engine.stats.as_dict())
            connections = self.connections
            active = len(self._active_engines)
            inflight = self._inflight
            refusals = self.admission_refusals
            peak = self.peak_inflight
        from .engine import columnar

        return {
            "stats": aggregated.as_dict(),
            "store": self.store.stats_dict(),
            "kernels": columnar.kernel_stats(),
            "wire_format": self.wire_format,
            "requests": requests,
            "batches": batches,
            "request_errors": errors,
            "connections": connections,
            "active_connections": active,
            "max_inflight": self.max_inflight,
            "inflight_batches": inflight,
            "peak_inflight": peak,
            "admission_refusals": refusals,
            "uptime_seconds": time.monotonic() - self.started,
            # telemetry views (additive: every pre-telemetry key above
            # is unchanged — tests pin that)
            "latency": {
                op: hist.summary()
                for op, hist in self._op_histograms.items()
                if hist.count
            },
            "trace": {
                "enabled": obs_trace.enabled(),
                "slow_ms": self.slow_ms,
                "recent": len(obs_trace.RECENT),
            },
        }

    def metrics_payload(self) -> dict:
        """The ``metrics`` endpoint body: the process-global and
        per-server registries merged with gauge *views* of the legacy
        stats surfaces (aggregated engine counters, store tiers, daemon
        totals), rendered as both a JSON snapshot and Prometheus text,
        plus the recent-trace ring."""
        stats = self.stats()
        store_stats = dict(stats["store"])
        persistent = store_stats.pop("persistent", None)
        families = [
            obs_metrics.REGISTRY.snapshot(),
            self.metrics.snapshot(),
            obs_expo.gauge_family("repro_engine", stats["stats"]),
            obs_expo.gauge_family("repro_store", store_stats),
            obs_expo.gauge_family(
                "repro_server",
                {
                    key: stats[key]
                    for key in (
                        "requests",
                        "batches",
                        "request_errors",
                        "connections",
                        "active_connections",
                        "inflight_batches",
                        "peak_inflight",
                        "admission_refusals",
                        "uptime_seconds",
                    )
                },
            ),
        ]
        if isinstance(persistent, dict):
            families.append(
                obs_expo.gauge_family("repro_store_persistent", persistent)
            )
        snapshot = obs_expo.merge_snapshots(*families)
        return {
            "json": snapshot,
            "prometheus": obs_expo.render_prometheus(snapshot),
            "traces": obs_trace.RECENT.snapshot(),
        }


def _is_stale_socket(path: str) -> bool:
    """True when a socket file exists but nothing accepts on it."""
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(1.0)
        probe.connect(path)
    except (ConnectionRefusedError, FileNotFoundError):
        return True
    except OSError:
        return False
    else:
        return False
    finally:
        probe.close()


class _Handler(socketserver.StreamRequestHandler):
    """Per-connection loop: sniff each message's first byte — frame
    magic starts a length-prefixed v2 frame, anything else a JSON line
    — and answer in the format the request arrived in."""

    def handle(self) -> None:
        owner: ReproServer = self.server.owner  # type: ignore[attr-defined]
        engine = owner.connection_engine()
        try:
            while True:
                first = self.rfile.read(1)
                if not first:
                    break
                if first in (b"\n", b"\r", b" ", b"\t"):
                    continue
                if first == wire.MAGIC[:1]:
                    stop = self._handle_frame(owner, engine, first)
                else:
                    stop = self._handle_line(owner, engine, first)
                if stop:
                    break
        finally:
            owner.retire_engine(engine)

    def _respond_line(self, response: dict) -> None:
        self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
        self.wfile.flush()

    def _respond_frame(self, response: dict) -> None:
        self.wfile.write(wire.encode_response_frame(response))
        self.wfile.flush()

    def _handle_line(self, owner: ReproServer, engine, first: bytes) -> bool:
        line = first + self.rfile.readline(wire.MAX_LINE)
        if len(line) > wire.MAX_LINE and not line.endswith(b"\n"):
            # an unterminated over-limit line has no cheap resync
            # point: answer once, then drop the connection instead of
            # buffering without bound
            owner.count_request(error=True)
            self._respond_line({
                "ok": False,
                "error": f"request line exceeds {wire.MAX_LINE} bytes",
            })
            return True
        line = line.strip()
        if not line:
            return False
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            owner.count_request(error=True)
            response = {"ok": False, "error": f"invalid JSON: {exc}"}
        else:
            wire.count_json_request(len(line))
            response = owner.handle_payload(payload, engine=engine)
        self._respond_line(response)
        return bool(response.get("bye"))

    def _handle_frame(self, owner: ReproServer, engine, first: bytes) -> bool:
        try:
            header, blob = wire.read_frame(self.rfile, first=first)
        except wire.WireError as exc:
            # truncated/oversized: the stream is unsynchronized past
            # this point — answer best-effort and close
            owner.count_request(error=True)
            try:
                self._respond_frame({"ok": False, "error": str(exc)})
            except OSError:
                pass  # truncation usually means the peer is gone
            return True
        if owner.wire_format != "columnar":
            owner.count_request(error=True)
            self._respond_frame({
                "ok": False,
                "error": (
                    "binary frames are disabled (--wire-format json); "
                    "send newline JSON"
                ),
            })
            return False  # frame fully consumed: stream still synced
        try:
            payload = wire.decode_jobs_frame(header, blob)
        except ReproError as exc:
            owner.count_request(error=True)
            self._respond_frame({"ok": False, "error": str(exc)})
            return False
        response = owner.handle_payload(payload, engine=engine)
        self._respond_frame(response)
        return bool(response.get("bye"))


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _ThreadingUnixServer(socketserver.ThreadingUnixStreamServer):
    daemon_threads = True


class ServeClient:
    """A minimal blocking client for the serve protocol.

    ``address`` is a Unix socket path (``str``) or a ``(host, port)``
    tuple.  One persistent connection; :meth:`request` sends one
    request object and waits for its response.  Usable as a context
    manager.

    ``wire_format`` selects the transport: ``"json"`` always speaks
    newline JSON (the v1 protocol); ``"columnar"`` negotiates v2
    binary frames on the first request (falling back to JSON against a
    v1-only server); ``"auto"`` (the default) negotiates lazily — only
    once a payload actually carries live :class:`~repro.core.bags.Bag`
    objects, the case frames accelerate.  Payloads may mix ``Bag``
    objects and plain JSON bag dicts in either format; on the JSON path
    bags are serialized to their row encodings transparently.
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        timeout: float | None = 30.0,
        wire_format: str = "auto",
    ) -> None:
        if wire_format not in ("auto", "json", "columnar"):
            raise ReproError(
                f"unknown wire_format {wire_format!r}; "
                "choose 'auto', 'json', or 'columnar'"
            )
        if isinstance(address, str):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            address = (address[0], address[1])
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(address)
        self._file = self._sock.makefile("rwb")
        self._format = wire_format
        # negotiated protocol: 1 = JSON lines, wire.VERSION = frames,
        # None = not yet negotiated (auto waits for a Bag payload)
        self._wire: int | None = 1 if wire_format == "json" else None

    @property
    def wire_version(self) -> int | None:
        """The negotiated protocol (1 = newline JSON, 2 = binary
        frames); ``None`` until a request has forced negotiation."""
        return self._wire

    def _negotiate(self) -> None:
        response = self._request_json({"op": "ping", "wire": wire.VERSION})
        self._wire = (
            wire.VERSION
            if isinstance(response, dict)
            and response.get("ok")
            and response.get("wire") == wire.VERSION
            else 1
        )

    def request(self, payload: dict) -> dict:
        if self._wire is None and (
            self._format == "columnar"
            or (self._format == "auto" and wire.payload_has_bags(payload))
        ):
            self._negotiate()
        if self._wire == wire.VERSION:
            frame = wire.encode_jobs_frame(payload)
            self._file.write(frame)
            self._file.flush()
            return self._read_response()
        return self._request_json(payload)

    def _request_json(self, payload: dict) -> dict:
        data = json.dumps(wire.jsonify_payload(payload)).encode("utf-8")
        self._file.write(data + b"\n")
        self._file.flush()
        return self._read_response()

    def _read_response(self) -> dict:
        first = self._file.read(1)
        if not first:
            raise ReproError("serve connection closed before responding")
        if first == wire.MAGIC[:1]:
            header, _ = wire.read_frame(self._file, first=first)
            return wire.response_from_frame(header)
        line = first + self._file.readline()
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"malformed response from server: {exc}"
            ) from exc

    def request_many(self, payloads: Iterable[dict]) -> list[dict]:
        return [self.request(payload) for payload in payloads]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
