"""``repro serve``: a long-running consistency-checking daemon.

The serve daemon keeps **one content-addressed engine** alive across
connections and speaks the existing batch JSON protocol over a Unix or
TCP socket, so a fleet of clients re-checking overlapping ledgers pays
each verdict once, process-wide:

* every connection multiplexes requests as **newline-delimited JSON**:
  one request object per line in, one response object per line out, in
  order;
* a request is either an ``op`` request (``{"op": "stats"}``,
  ``{"op": "ping"}``, ``{"op": "shutdown"}``) or a **batch payload** —
  exactly the object ``repro batch`` reads from a file (``pairs`` /
  ``collections`` / ``suites``; an explicit ``{"op": "batch", ...}``
  wrapper is also accepted with the job keys inline);
* responses always carry ``"ok"``; successful batch responses put the
  usual report under ``"report"``, failures put a one-line message
  under ``"error"`` (malformed jobs never tear down the connection,
  let alone the daemon);
* ``stats`` exposes the engine counters, the verdict store's hit rate
  and size, and daemon-level request totals — the observability hook
  for the warm-cache serving claims.

Because bags are interned by *content*, two connections posting
value-equal jobs share verdicts, witnesses, and indexes: the second
connection's queries are pure cache hits (see
``benchmarks/bench_serve.py``).

A worked session (one line per message)::

    $ repro serve --socket /tmp/repro.sock &
    $ python - <<'PY'
    from repro.server import ServeClient
    client = ServeClient("/tmp/repro.sock")
    print(client.request({"pairs": [[{"schema": ["A"], "tuples": [[[1], 2]]},
                                     {"schema": ["A"], "tuples": [[[1], 2]]}]]}))
    print(client.request({"op": "stats"})["store"]["hit_rate"])
    client.request({"op": "shutdown"})
    PY
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from typing import Iterable

from .engine.jobs import JobError, parse_jobs, run_jobs
from .engine.session import Engine
from .errors import ReproError
from .lp.integer_feasibility import DEFAULT_NODE_BUDGET

__all__ = ["ReproServer", "ServeClient"]

_OPS = ("batch", "ping", "stats", "shutdown")


class ReproServer:
    """The daemon: one shared engine, many socket connections.

    ``method`` / ``witnesses`` / ``parallelism`` / ``backend`` are the
    serving defaults applied to every batch request (the same knobs
    ``repro batch`` takes per invocation).  Bind with :meth:`bind_unix`
    or :meth:`bind_tcp`, then :meth:`serve_forever` (blocking) or
    :meth:`serve_in_background` (tests, embedding).
    """

    def __init__(
        self,
        engine: Engine | None = None,
        capacity: int | None = None,
        node_budget: int | None = DEFAULT_NODE_BUDGET,
        method: str = "auto",
        witnesses: bool = False,
        parallelism: int | None = None,
        backend: str | None = None,
    ) -> None:
        self.engine = engine if engine is not None else Engine(
            node_budget=node_budget, capacity=capacity
        )
        self.method = method
        self.witnesses = witnesses
        self.parallelism = parallelism
        self.backend = backend
        self.requests = 0
        self.batches = 0
        self.errors = 0
        self.started = time.monotonic()
        # handler threads race on the counters above; the engine/store
        # counters are locked internally, so lock these too or the
        # stats endpoint undercounts under concurrent connections
        self._stats_lock = threading.Lock()
        self._jobs_lock = threading.Lock()
        self._server: socketserver.BaseServer | None = None
        self._thread: threading.Thread | None = None
        self.address: str | tuple[str, int] | None = None

    # -- binding and lifecycle -------------------------------------------

    def bind_unix(self, path: str) -> str:
        """Listen on a Unix domain socket at ``path``.

        A *stale* socket file (left by a killed daemon — nothing is
        accepting on it) is unlinked and rebound; a *live* one (another
        daemon answers) raises the usual address-in-use error."""
        try:
            self._server = _ThreadingUnixServer(path, _Handler)
        except OSError as exc:
            import errno

            if exc.errno != errno.EADDRINUSE or not _is_stale_socket(path):
                raise
            os.unlink(path)
            self._server = _ThreadingUnixServer(path, _Handler)
        self._server.owner = self  # type: ignore[attr-defined]
        self.address = path
        return path

    def bind_tcp(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Listen on TCP ``host:port`` (port 0 picks a free one);
        returns the bound address."""
        self._server = _ThreadingTCPServer((host, port), _Handler)
        self._server.owner = self  # type: ignore[attr-defined]
        self.address = self._server.server_address[:2]
        return self.address

    def serve_forever(self) -> None:
        if self._server is None:
            raise ReproError("bind_unix() or bind_tcp() before serving")
        self._server.serve_forever(poll_interval=0.1)

    def serve_in_background(self) -> None:
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()

    def shutdown(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    # -- request handling -------------------------------------------------

    def count_request(self, error: bool = False) -> None:
        with self._stats_lock:
            self.requests += 1
            if error:
                self.errors += 1

    def handle_payload(self, payload: object) -> dict:
        """One request object in, one response object out (exceptions
        become ``{"ok": false, "error": one-line}``)."""
        self.count_request()
        try:
            if not isinstance(payload, dict):
                raise JobError("request must be a JSON object")
            op = payload.get("op", "batch")
            if op not in _OPS:
                raise JobError(
                    f"unknown op {op!r}; expected one of {list(_OPS)}"
                )
            if op == "ping":
                return {"ok": True, "op": "ping"}
            if op == "stats":
                return {"ok": True, "op": "stats", **self.stats()}
            if op == "shutdown":
                # Stop accepting from a helper thread: shutdown() blocks
                # until serve_forever exits, which must not wait on the
                # handler thread that is writing this response.
                threading.Thread(target=self.shutdown, daemon=True).start()
                return {"ok": True, "op": "shutdown", "bye": True}
            jobs = parse_jobs(
                {k: v for k, v in payload.items() if k != "op"}
            )
            # One batch at a time: batches already fan out internally
            # via parallelism/backend, and serializing them keeps the
            # process-pool path from oversubscribing the machine.
            with self._stats_lock:
                self.batches += 1
            with self._jobs_lock:
                report = run_jobs(
                    jobs,
                    self.engine,
                    method=self.method,
                    witnesses=self.witnesses,
                    parallelism=self.parallelism,
                    backend=self.backend,
                )
            return {"ok": True, "op": "batch", "report": report}
        except ReproError as exc:
            with self._stats_lock:
                self.errors += 1
            return {"ok": False, "error": str(exc)}

    def stats(self) -> dict:
        """The ``stats`` endpoint body: engine counters, store hit
        rate/size, daemon totals."""
        with self._stats_lock:
            requests, batches, errors = self.requests, self.batches, self.errors
        return {
            "stats": self.engine.stats.as_dict(),
            "store": self.engine.store.stats_dict(),
            "requests": requests,
            "batches": batches,
            "request_errors": errors,
            "uptime_seconds": time.monotonic() - self.started,
        }


def _is_stale_socket(path: str) -> bool:
    """True when a socket file exists but nothing accepts on it."""
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(1.0)
        probe.connect(path)
    except (ConnectionRefusedError, FileNotFoundError):
        return True
    except OSError:
        return False
    else:
        return False
    finally:
        probe.close()


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        owner: ReproServer = self.server.owner  # type: ignore[attr-defined]
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                owner.count_request(error=True)
                response = {"ok": False, "error": f"invalid JSON: {exc}"}
            else:
                response = owner.handle_payload(payload)
            self.wfile.write(
                (json.dumps(response) + "\n").encode("utf-8")
            )
            self.wfile.flush()
            if response.get("bye"):
                break


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _ThreadingUnixServer(socketserver.ThreadingUnixStreamServer):
    daemon_threads = True


class ServeClient:
    """A minimal blocking client for the serve protocol.

    ``address`` is a Unix socket path (``str``) or a ``(host, port)``
    tuple.  One persistent connection; :meth:`request` sends one JSON
    object and waits for its one-line response.  Usable as a context
    manager.
    """

    def __init__(
        self, address: str | tuple[str, int], timeout: float | None = 30.0
    ) -> None:
        if isinstance(address, str):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            address = (address[0], address[1])
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(address)
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict) -> dict:
        self._file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ReproError("serve connection closed before responding")
        return json.loads(line)

    def request_many(self, payloads: Iterable[dict]) -> list[dict]:
        return [self.request(payload) for payload in payloads]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
