"""Serialization: JSON-friendly encoding of bags, relations, collections,
and hypergraphs.

The on-disk format is deliberately boring JSON so instances can be
shipped between tools and checked into repositories:

* a bag:      ``{"schema": ["A", "B"], "tuples": [[[1, 2], 3], ...]}``
  (each entry is ``[row, multiplicity]`` with the row in canonical
  attribute order);
* a relation: ``{"schema": ["A", "B"], "rows": [[1, 2], ...]}``;
* a collection: ``{"bags": [<bag>, ...]}``;
* a hypergraph: ``{"vertices": [...], "edges": [[...], ...]}``.

Values must be JSON scalars (strings, numbers, booleans, null); tuples
with other Python values can still be used in memory, they just will not
round-trip through JSON.  Multiplicities of arbitrary size are fine —
JSON integers are unbounded and Python reads them exactly.
"""

from __future__ import annotations

import json
from typing import Any

from .core.bags import Bag
from .core.relations import Relation
from .core.schema import Schema
from .errors import SchemaError
from .hypergraphs.hypergraph import Hypergraph


# -- bags -------------------------------------------------------------------

def bag_to_dict(bag: Bag) -> dict:
    return {
        "schema": list(bag.schema.attrs),
        "tuples": [
            [list(row), mult]
            for row, mult in sorted(bag.items(), key=repr)
        ],
    }


def bag_from_dict(data: dict) -> Bag:
    try:
        schema = Schema(data["schema"])
        pairs = [(tuple(row), mult) for row, mult in data["tuples"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed bag encoding: {exc}") from exc
    return Bag.from_pairs(schema, pairs)


def bag_to_json(bag: Bag, indent: int | None = None) -> str:
    return json.dumps(bag_to_dict(bag), indent=indent)


def bag_from_json(text: str) -> Bag:
    return bag_from_dict(json.loads(text))


# -- relations ---------------------------------------------------------------

def relation_to_dict(relation: Relation) -> dict:
    return {
        "schema": list(relation.schema.attrs),
        "rows": [list(row) for row in sorted(relation.rows, key=repr)],
    }


def relation_from_dict(data: dict) -> Relation:
    try:
        schema = Schema(data["schema"])
        rows = [tuple(row) for row in data["rows"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed relation encoding: {exc}") from exc
    return Relation.from_pairs(schema, rows)


def relation_to_json(relation: Relation, indent: int | None = None) -> str:
    return json.dumps(relation_to_dict(relation), indent=indent)


def relation_from_json(text: str) -> Relation:
    return relation_from_dict(json.loads(text))


# -- collections --------------------------------------------------------------

def collection_to_dict(bags: list[Bag]) -> dict:
    return {"bags": [bag_to_dict(bag) for bag in bags]}


def collection_from_dict(data: dict) -> list[Bag]:
    try:
        entries = data["bags"]
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"malformed collection encoding: {exc}") from exc
    return [bag_from_dict(entry) for entry in entries]


def collection_to_json(bags: list[Bag], indent: int | None = None) -> str:
    return json.dumps(collection_to_dict(bags), indent=indent)


def collection_from_json(text: str) -> list[Bag]:
    return collection_from_dict(json.loads(text))


# -- hypergraphs ---------------------------------------------------------------

def hypergraph_to_dict(hypergraph: Hypergraph) -> dict:
    return {
        "vertices": sorted(hypergraph.vertices, key=repr),
        "edges": [list(edge.attrs) for edge in hypergraph.edges],
    }


def hypergraph_from_dict(data: dict) -> Hypergraph:
    try:
        return Hypergraph(data.get("vertices"), data["edges"])
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"malformed hypergraph encoding: {exc}") from exc


def hypergraph_to_json(
    hypergraph: Hypergraph, indent: int | None = None
) -> str:
    return json.dumps(hypergraph_to_dict(hypergraph), indent=indent)


def hypergraph_from_json(text: str) -> Hypergraph:
    return hypergraph_from_dict(json.loads(text))


# -- text tables ---------------------------------------------------------------

def bag_from_table(text: str) -> Bag:
    """Parse the paper's tabular format back into a bag.

    Expects the header row (attribute names followed by ``#``) and one
    ``v1 v2 ... : mult`` line per tuple; values are parsed as ints when
    possible, strings otherwise.

    >>> bag_from_table("A  B  #\\n1  2  : 3")
    Bag(['A', 'B'], {(1, 2): 3} [1 tuples])
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise SchemaError("empty table")
    header = lines[0].split()
    if not header or header[-1] != "#":
        raise SchemaError("table header must end with '#'")
    attrs = header[:-1]
    schema = Schema(attrs)

    def parse(token: str) -> Any:
        try:
            return int(token)
        except ValueError:
            return token

    pairs = []
    for line in lines[1:]:
        if line.strip() == "(empty)":
            continue
        if ":" not in line:
            raise SchemaError(f"table row missing ': mult': {line!r}")
        left, right = line.rsplit(":", 1)
        values = [parse(tok) for tok in left.split()]
        if len(values) != len(attrs):
            raise SchemaError(
                f"row {line!r} has {len(values)} values for "
                f"{len(attrs)} attributes"
            )
        mapping = dict(zip(attrs, values))
        row = tuple(mapping[a] for a in schema.attrs)
        pairs.append((row, int(right.strip())))
    return Bag.from_pairs(schema, pairs)
