"""Chordality: Lex-BFS, perfect elimination orderings, chordless cycles.

A hypergraph is *chordal* when its primal graph is chordal, i.e. every
cycle of length at least four has a chord (Section 4).  The classical
linear-time route [RTL76, TY84] is implemented here:

1. :func:`lex_bfs` computes a lexicographic breadth-first search ordering.
2. A graph is chordal iff the reverse Lex-BFS order is a *perfect
   elimination ordering* (PEO), which :func:`check_peo` verifies.
3. When the PEO check fails, :func:`find_chordless_cycle` extracts an
   explicit chordless cycle of length >= 4 — the certificate Lemma 3(1)
   needs.
"""

from __future__ import annotations


from .graphs import Graph, Vertex


def lex_bfs(graph: Graph) -> list[Vertex]:
    """A lexicographic BFS ordering of the graph's vertices.

    Implemented with partition refinement over a list of buckets; runs in
    near-linear time for the graph sizes this library targets.
    """
    if not graph.vertices:
        return []
    # Buckets of vertices sharing the same label, most-recently-refined first.
    buckets: list[list[Vertex]] = [
        sorted(graph.vertices, key=repr)
    ]
    order: list[Vertex] = []
    while buckets:
        head = buckets[0]
        v = head.pop(0)
        if not head:
            buckets.pop(0)
        order.append(v)
        neighbors = graph.neighbors(v)
        new_buckets: list[list[Vertex]] = []
        for bucket in buckets:
            inside = [u for u in bucket if u in neighbors]
            outside = [u for u in bucket if u not in neighbors]
            if inside:
                new_buckets.append(inside)
            if outside:
                new_buckets.append(outside)
        buckets = new_buckets
    return order


def check_peo(graph: Graph, order: list[Vertex]) -> Vertex | None:
    """Check whether ``reversed(order)`` is a perfect elimination ordering.

    Returns None if it is (the graph is chordal), otherwise a vertex at
    which the check fails.  Uses the standard single-representative trick:
    for each vertex v (processed in reverse order), all earlier neighbors
    of v must be adjacent to the latest earlier neighbor of v.
    """
    position = {v: i for i, v in enumerate(order)}
    for v in reversed(order):
        earlier = [u for u in graph.neighbors(v) if position[u] < position[v]]
        if not earlier:
            continue
        pivot = max(earlier, key=lambda u: position[u])
        for u in earlier:
            if u != pivot and not graph.has_edge(u, pivot):
                return v
    return None


def is_chordal_graph(graph: Graph) -> bool:
    """True iff the graph is chordal (Lex-BFS + PEO verification)."""
    return check_peo(graph, lex_bfs(graph)) is None


def find_chordless_cycle(graph: Graph) -> list[Vertex] | None:
    """An explicit chordless cycle of length >= 4, or None if chordal.

    When the PEO check fails at v with non-adjacent earlier neighbors u, w,
    a chordless cycle through u, v, w exists: take a shortest u-w path in
    the graph with N[v] - {u, w} removed, then close it through v.  A
    shortest such path has no chords among its interior, and minimality is
    restored by shrinking over any chord found (defensive, shortest paths
    already avoid most chords).
    """
    order = lex_bfs(graph)
    position = {v: i for i, v in enumerate(order)}
    for v in reversed(order):
        earlier = [u for u in graph.neighbors(v) if position[u] < position[v]]
        if len(earlier) < 2:
            continue
        pivot = max(earlier, key=lambda u: position[u])
        for u in earlier:
            if u == pivot or graph.has_edge(u, pivot):
                continue
            cycle = _chordless_cycle_through(graph, v, u, pivot)
            if cycle is not None:
                return cycle
    return None


def _chordless_cycle_through(
    graph: Graph, v: Vertex, u: Vertex, w: Vertex
) -> list[Vertex] | None:
    """A chordless cycle through non-adjacent u, w using v as the bridge.

    Searches for a shortest u-w path avoiding N[v] - {u, w}; appending v
    closes a cycle of length >= 4.  Any chord of the closed cycle is then
    eliminated by shortcutting, which preserves that the cycle passes
    through some failure witness and keeps length >= 4 because u, w are
    non-adjacent and interior vertices are non-adjacent to v.
    """
    forbidden = (graph.neighbors(v) | {v}) - {u, w}
    # BFS from u to w in the graph minus `forbidden`.
    parents: dict[Vertex, Vertex | None] = {u: None}
    frontier = [u]
    while frontier and w not in parents:
        nxt = []
        for a in frontier:
            for b in graph.neighbors(a):
                if b in forbidden or b in parents:
                    continue
                parents[b] = a
                nxt.append(b)
        frontier = nxt
    if w not in parents:
        return None
    path = [w]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])
    path.reverse()  # u ... w
    cycle = path + [v]
    return _shrink_to_chordless(graph, cycle)


def _shrink_to_chordless(graph: Graph, cycle: list[Vertex]) -> list[Vertex] | None:
    """Remove chords by shortcutting until the cycle is chordless.

    Returns None if shrinking collapses below length 4 (can happen only if
    the original cycle was not a genuine obstruction, which the callers'
    preconditions exclude; kept defensive).
    """
    changed = True
    while changed:
        changed = False
        n = len(cycle)
        if n < 4:
            return None
        for i in range(n):
            for j in range(i + 2, n):
                if i == 0 and j == n - 1:
                    continue  # consecutive around the cycle
                if graph.has_edge(cycle[i], cycle[j]):
                    # Shortcut: keep the shorter arc plus the chord.
                    arc_a = cycle[i : j + 1]
                    arc_b = cycle[j:] + cycle[: i + 1]
                    cycle = arc_a if len(arc_a) >= len(arc_b) else arc_b
                    changed = True
                    break
            if changed:
                break
    return cycle if len(cycle) >= 4 else None


def verify_chordless_cycle(graph: Graph, cycle: list[Vertex]) -> bool:
    """Certificate check: ``cycle`` is a chordless cycle of length >= 4."""
    n = len(cycle)
    if n < 4 or len(set(cycle)) != n:
        return False
    for i in range(n):
        if not graph.has_edge(cycle[i], cycle[(i + 1) % n]):
            return False
    for i in range(n):
        for j in range(i + 2, n):
            if i == 0 and j == n - 1:
                continue
            if graph.has_edge(cycle[i], cycle[j]):
                return False
    return True
