"""Minimal undirected graphs.

The hypergraph algorithms of the paper (chordality, conformality,
obstruction finding) all factor through the *primal graph* of a
hypergraph.  This module provides the small undirected-graph substrate
they need: adjacency queries, induced subgraphs, connectivity,
clique checks, and maximal-clique enumeration (Bron-Kerbosch), kept
dependency-free so decision procedures never rely on external libraries.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

Vertex = Hashable


class Graph:
    """An immutable simple undirected graph."""

    __slots__ = ("_vertices", "_adj")

    def __init__(
        self,
        vertices: Iterable[Vertex],
        edges: Iterable[tuple[Vertex, Vertex]] = (),
    ) -> None:
        self._vertices = frozenset(vertices)
        adj: dict[Vertex, set] = {v: set() for v in self._vertices}
        for u, v in edges:
            if u == v:
                continue
            if u not in adj or v not in adj:
                raise ValueError(f"edge ({u!r}, {v!r}) uses unknown vertex")
            adj[u].add(v)
            adj[v].add(u)
        self._adj = {v: frozenset(ns) for v, ns in adj.items()}

    @property
    def vertices(self) -> frozenset:
        return self._vertices

    def neighbors(self, v: Vertex) -> frozenset:
        return self._adj[v]

    def degree(self, v: Vertex) -> int:
        return len(self._adj[v])

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return v in self._adj.get(u, frozenset())

    def edges(self) -> Iterator[frozenset]:
        seen = set()
        for u, ns in self._adj.items():
            for v in ns:
                edge = frozenset((u, v))
                if edge not in seen:
                    seen.add(edge)
                    yield edge

    def edge_count(self) -> int:
        return sum(len(ns) for ns in self._adj.values()) // 2

    def subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        keep = frozenset(keep) & self._vertices
        # dedupe via frozensets: repr-ordering may miss edges whose
        # reprs tie
        all_edges = {
            frozenset((u, v))
            for u in keep
            for v in self._adj[u]
            if v in keep
        }
        return Graph(keep, [tuple(e) for e in all_edges])

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        vs = list(vertices)
        return all(
            self.has_edge(vs[i], vs[j])
            for i in range(len(vs))
            for j in range(i + 1, len(vs))
        )

    def is_connected(self) -> bool:
        if not self._vertices:
            return True
        start = next(iter(self._vertices))
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen == self._vertices

    def connected_components(self) -> list[frozenset]:
        remaining = set(self._vertices)
        components = []
        while remaining:
            start = remaining.pop()
            seen = {start}
            stack = [start]
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v not in seen:
                        seen.add(v)
                        stack.append(v)
            components.append(frozenset(seen))
            remaining -= seen
        return components

    def maximal_cliques(self) -> Iterator[frozenset]:
        """Bron-Kerbosch with pivoting.

        Worst-case exponential; used as the definitional cross-check for
        the polynomial conformality test (Gilmore's theorem) and only on
        small graphs in tests.
        """

        def expand(r: set, p: set, x: set) -> Iterator[frozenset]:
            if not p and not x:
                yield frozenset(r)
                return
            pivot = max(p | x, key=lambda v: len(self._adj[v] & p))
            for v in list(p - self._adj[pivot]):
                yield from expand(
                    r | {v}, p & self._adj[v], x & self._adj[v]
                )
                p.remove(v)
                x.add(v)

        yield from expand(set(), set(self._vertices), set())

    def is_cycle_graph(self) -> bool:
        """True if the graph is a single simple cycle on >= 3 vertices."""
        if len(self._vertices) < 3:
            return False
        return (
            all(self.degree(v) == 2 for v in self._vertices)
            and self.is_connected()
        )

    def complement(self) -> "Graph":
        vs = list(self._vertices)
        edges = [
            (vs[i], vs[j])
            for i in range(len(vs))
            for j in range(i + 1, len(vs))
            if not self.has_edge(vs[i], vs[j])
        ]
        return Graph(vs, edges)

    def __repr__(self) -> str:
        return (
            f"Graph({len(self._vertices)} vertices, "
            f"{self.edge_count()} edges)"
        )
