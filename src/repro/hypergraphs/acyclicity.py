"""Hypergraph acyclicity: GYO reduction, join trees, RIP orderings.

Implements the structural layer of Theorem 1 / Theorem 2 (statements
(a)-(d)):

* :func:`gyo_reduction` — the Graham/Yu-Ozsoyoglu reduction: repeatedly
  delete vertices that occur in at most one hyperedge and hyperedges
  contained in other hyperedges.  The hypergraph is acyclic iff the
  reduction leaves at most one (emptied) edge.
* :func:`join_tree` — a join tree built from the GYO parent pointers
  (each edge, when deleted because it became covered, hangs off a covering
  edge).
* :func:`running_intersection_order` — a listing X1..Xm such that each Xi
  meets the union of its predecessors inside a single earlier edge Xj
  (with the witness j returned), obtained as a root-first traversal of
  the join tree.
* :func:`is_acyclic` — the top-level decider (GYO route).

All three artifacts are independently *verifiable*:
:func:`verify_join_tree` checks the coherence (connected-subtree)
property and :func:`verify_running_intersection` checks the RIP directly;
the test suite cross-validates them against the chordal+conformal
characterization.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.schema import Schema
from ..errors import CyclicSchemaError
from .hypergraph import Hypergraph


@dataclass(frozen=True)
class GYOResult:
    """Outcome of the GYO reduction.

    ``survivors`` — indices of edges never removed (at most one iff the
    hypergraph is acyclic); ``parent`` — for each removed edge index, the
    index of the edge that covered it at removal time; ``removal_order``
    — removed edge indices in removal order.
    """

    survivors: tuple[int, ...]
    parent: dict[int, int]
    removal_order: tuple[int, ...]

    @property
    def acyclic(self) -> bool:
        return len(self.survivors) <= 1


def gyo_reduction(hypergraph: Hypergraph) -> GYOResult:
    """Run the GYO reduction, keeping the bookkeeping needed downstream."""
    current: dict[int, set] = {
        i: set(edge.attrs) for i, edge in enumerate(hypergraph.edges)
    }
    parent: dict[int, int] = {}
    removal_order: list[int] = []
    changed = True
    while changed:
        changed = False
        # Rule 1: strip vertices occurring in at most one edge.
        counts: dict[object, int] = {}
        for vs in current.values():
            for v in vs:
                counts[v] = counts.get(v, 0) + 1
        lonely = {v for v, c in counts.items() if c <= 1}
        if lonely:
            for vs in current.values():
                if vs & lonely:
                    vs -= lonely
                    changed = True
        # Rule 2: remove one edge covered by another (distinct index).
        indices = sorted(current)
        removed = None
        for i in indices:
            for j in indices:
                if i == j:
                    continue
                if current[i] <= current[j]:
                    removed = (i, j)
                    break
            if removed:
                break
        if removed:
            i, j = removed
            parent[i] = j
            removal_order.append(i)
            del current[i]
            changed = True
    return GYOResult(
        survivors=tuple(sorted(current)),
        parent=parent,
        removal_order=tuple(removal_order),
    )


def is_acyclic(hypergraph: Hypergraph) -> bool:
    """True iff the hypergraph is acyclic (GYO reduction route)."""
    return gyo_reduction(hypergraph).acyclic


@dataclass(frozen=True)
class JoinTree:
    """A rooted join tree over the hyperedges of an acyclic hypergraph.

    ``edges`` lists the hyperedges; ``parent[i]`` is the index of the
    parent of edge i (the root r has ``parent[r] == -1``).
    """

    edges: tuple[Schema, ...]
    parent: tuple[int, ...]
    root: int

    def children(self) -> dict[int, list[int]]:
        out: dict[int, list[int]] = {i: [] for i in range(len(self.edges))}
        for i, p in enumerate(self.parent):
            if p >= 0:
                out[p].append(i)
        return out

    def tree_edges(self) -> list[tuple[int, int]]:
        return [(p, i) for i, p in enumerate(self.parent) if p >= 0]


def join_tree(hypergraph: Hypergraph) -> JoinTree:
    """A join tree for an acyclic hypergraph (Theorem 1(d)/2(d)).

    Raises :class:`CyclicSchemaError` for cyclic hypergraphs.
    """
    if len(hypergraph.edges) == 0:
        raise CyclicSchemaError("cannot build a join tree with no edges")
    result = gyo_reduction(hypergraph)
    if not result.acyclic:
        raise CyclicSchemaError(
            f"hypergraph is cyclic; no join tree exists: {hypergraph!r}"
        )
    m = len(hypergraph.edges)
    root = result.survivors[0]
    parents = [-1] * m
    for i, p in result.parent.items():
        parents[i] = p
    return JoinTree(tuple(hypergraph.edges), tuple(parents), root)


def verify_join_tree(tree: JoinTree) -> bool:
    """Coherence check: for every vertex, the tree nodes containing it
    induce a connected subtree (the definition in Section 4)."""
    m = len(tree.edges)
    root_and_rest = sorted(
        [tree.root] + [i for i in range(m) if tree.parent[i] >= 0]
    )
    if root_and_rest != list(range(m)):
        return False
    adjacency: dict[int, set[int]] = {i: set() for i in range(m)}
    for p, c in tree.tree_edges():
        adjacency[p].add(c)
        adjacency[c].add(p)
    vertices = set()
    for edge in tree.edges:
        vertices.update(edge.attrs)
    for v in vertices:
        holders = {i for i, e in enumerate(tree.edges) if v in e}
        start = next(iter(holders))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in adjacency[node]:
                if nxt in holders and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        if seen != holders:
            return False
    return True


@dataclass(frozen=True)
class RIPOrder:
    """A running-intersection listing of hyperedges.

    ``order[i]`` is the hyperedge in position i; ``witness[i]`` is a
    position j < i with ``order[i] & (order[0] | ... | order[i-1])``
    contained in ``order[j]`` (``witness[0] == -1``).
    """

    order: tuple[Schema, ...]
    witness: tuple[int, ...]


def running_intersection_order(hypergraph: Hypergraph) -> RIPOrder:
    """A running-intersection ordering for an acyclic hypergraph.

    Obtained by listing the join tree root-first (BFS); the RIP witness of
    each edge is its tree parent.  Raises :class:`CyclicSchemaError` for
    cyclic hypergraphs (Theorem 1(c): none exists).
    """
    tree = join_tree(hypergraph)
    children = tree.children()
    order_indices: list[int] = []
    position: dict[int, int] = {}
    queue = [tree.root]
    while queue:
        node = queue.pop(0)
        position[node] = len(order_indices)
        order_indices.append(node)
        queue.extend(sorted(children[node]))
    witness = []
    for node in order_indices:
        p = tree.parent[node]
        witness.append(-1 if p < 0 else position[p])
    return RIPOrder(
        tuple(tree.edges[i] for i in order_indices), tuple(witness)
    )


def verify_running_intersection(rip: RIPOrder) -> bool:
    """Direct check of the running intersection property on a listing."""
    union: set = set()
    for i, edge in enumerate(rip.order):
        attrs = set(edge.attrs)
        inter = attrs & union
        if i == 0:
            if rip.witness[0] != -1:
                return False
        else:
            j = rip.witness[i]
            if not (0 <= j < i):
                return False
            if not inter <= set(rip.order[j].attrs):
                return False
        union |= attrs
    return True


def has_running_intersection_property(hypergraph: Hypergraph) -> bool:
    """Theorem 1(c)/2(c) as a decider (via the join-tree construction)."""
    try:
        rip = running_intersection_order(hypergraph)
    except CyclicSchemaError:
        return False
    return verify_running_intersection(rip)


def is_acyclic_via_chordal_conformal(hypergraph: Hypergraph) -> bool:
    """Theorem 1(b)/2(b) as a decider: acyclic iff conformal and chordal.

    An independent second route to acyclicity, cross-checked against GYO
    in the test suite.
    """
    from .chordality import is_chordal_graph
    from .conformality import is_conformal

    return is_conformal(hypergraph) and is_chordal_graph(
        hypergraph.primal_graph()
    )
