"""Hypergraphs and the safe-deletion operations of the paper.

A hypergraph ``H = (V, E)`` has a finite vertex set and a set of non-empty
hyperedges (Section 4).  The operations implemented here are exactly the
ones the paper's proofs use:

* the *primal graph* (vertices adjacent iff they co-occur in a hyperedge),
* the *induced* hypergraph ``H[W]`` (non-empty traces ``X & W``),
* the *reduction* ``R(H)`` (drop hyperedges covered by other hyperedges),
* vertex deletion ``H \\ u`` (induced on ``V - {u}``) and covered-edge
  deletion ``H \\ e``, the two *safe-deletion* operations of Lemma 4,
* k-uniformity and d-regularity (the preconditions of the Tseitin-style
  construction in Theorem 2's Step 2),
* shape recognizers for the minimal obstructions ``C_n`` (cycles) and
  ``H_n`` (all (n-1)-subsets), used to validate Lemma 3 witnesses.

Hyperedges are :class:`~repro.core.schema.Schema` objects so hypergraphs
and database schemas interconvert freely, as the paper does.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..core.schema import Attribute, Schema
from ..errors import SchemaError
from .graphs import Graph


class Hypergraph:
    """An immutable hypergraph whose hyperedges are schemas.

    The edge set is deduplicated but input order of first occurrence is
    preserved, so listings are deterministic.  Isolated vertices (in no
    hyperedge) are allowed and retained.
    """

    __slots__ = ("_vertices", "_edges")

    def __init__(
        self,
        vertices: Iterable[Attribute] | None = None,
        edges: Iterable[Iterable[Attribute]] = (),
    ) -> None:
        schemas: list[Schema] = []
        seen: set[Schema] = set()
        for edge in edges:
            schema = edge if isinstance(edge, Schema) else Schema(edge)
            if len(schema) == 0:
                raise SchemaError("hyperedges must be non-empty")
            if schema not in seen:
                seen.add(schema)
                schemas.append(schema)
        covered = set()
        for schema in schemas:
            covered.update(schema.attrs)
        if vertices is None:
            vertex_set = frozenset(covered)
        else:
            vertex_set = frozenset(vertices)
            if not covered <= vertex_set:
                raise SchemaError(
                    f"edges mention vertices outside the vertex set: "
                    f"{covered - vertex_set!r}"
                )
        self._vertices = vertex_set
        self._edges = tuple(schemas)

    @classmethod
    def from_schemas(cls, schemas: Iterable[Schema]) -> "Hypergraph":
        """The hypergraph of a database schema: one hyperedge per relation
        schema (duplicates collapse)."""
        return cls(None, schemas)

    # -- accessors -------------------------------------------------------

    @property
    def vertices(self) -> frozenset:
        return self._vertices

    @property
    def edges(self) -> tuple[Schema, ...]:
        return self._edges

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[Schema]:
        return iter(self._edges)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Hypergraph):
            return (
                self._vertices == other._vertices
                and set(self._edges) == set(other._edges)
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._vertices, frozenset(self._edges)))

    def __repr__(self) -> str:
        edges = [sorted(map(repr, e.attrs)) for e in self._edges]
        return f"Hypergraph({len(self._vertices)} vertices, edges={edges!r})"

    # -- structure ---------------------------------------------------------

    def primal_graph(self) -> Graph:
        """The Gaifman/primal graph: u ~ v iff they share a hyperedge."""
        edges = []
        for schema in self._edges:
            attrs = schema.attrs
            for i in range(len(attrs)):
                for j in range(i + 1, len(attrs)):
                    edges.append((attrs[i], attrs[j]))
        return Graph(self._vertices, edges)

    def induced(self, keep: Iterable[Attribute]) -> "Hypergraph":
        """The induced hypergraph H[W]: traces X & W, empty traces dropped."""
        keep_set = frozenset(keep)
        traces = []
        for schema in self._edges:
            trace = frozenset(schema.attrs) & keep_set
            if trace:
                traces.append(Schema(trace))
        return Hypergraph(keep_set & self._vertices | keep_set, traces)

    def reduction(self) -> "Hypergraph":
        """R(H): keep only hyperedges not strictly contained in another."""
        kept = []
        for schema in self._edges:
            if not any(
                schema != other and schema.issubset(other)
                for other in self._edges
            ):
                kept.append(schema)
        return Hypergraph(self._vertices, kept)

    def is_reduced(self) -> bool:
        return len(self.reduction()) == len(self._edges)

    def delete_vertex(self, vertex: Attribute) -> "Hypergraph":
        """The safe deletion H \\ u (vertex deletion)."""
        if vertex not in self._vertices:
            raise SchemaError(f"vertex {vertex!r} not in hypergraph")
        return self.induced(self._vertices - {vertex})

    def covered_edges(self) -> list[Schema]:
        """Hyperedges e with e <= f for some distinct hyperedge f."""
        return [
            schema
            for schema in self._edges
            if any(
                schema != other and schema.issubset(other)
                for other in self._edges
            )
        ]

    def delete_covered_edge(self, edge: Schema) -> "Hypergraph":
        """The safe deletion H \\ e (only legal when e is covered)."""
        if edge not in self._edges:
            raise SchemaError(f"edge {edge!r} not in hypergraph")
        if edge not in self.covered_edges():
            raise SchemaError(
                f"edge {edge!r} is not covered; deleting it is not safe"
            )
        return Hypergraph(
            self._vertices, [e for e in self._edges if e != edge]
        )

    # -- uniformity / regularity (Theorem 2, Step 2) ------------------------

    def uniformity(self) -> int | None:
        """k if every hyperedge has exactly k vertices, else None."""
        sizes = {len(e) for e in self._edges}
        if len(sizes) == 1:
            return sizes.pop()
        return None

    def regularity(self) -> int | None:
        """d if every vertex lies in exactly d hyperedges, else None."""
        counts = {v: 0 for v in self._vertices}
        for schema in self._edges:
            for attr in schema.attrs:
                counts[attr] += 1
        degrees = set(counts.values())
        if len(degrees) == 1:
            return degrees.pop()
        return None

    def is_k_uniform(self, k: int) -> bool:
        return self.uniformity() == k

    def is_d_regular(self, d: int) -> bool:
        return self.regularity() == d

    # -- obstruction shapes (Lemma 3) ---------------------------------------

    def is_cycle_shape(self) -> bool:
        """True if H is (isomorphic to) C_n for n >= 3: all edges binary and
        the primal graph is one simple cycle covering all vertices."""
        if len(self._vertices) < 3:
            return False
        if any(len(e) != 2 for e in self._edges):
            return False
        if len(self._edges) != len(self._vertices):
            return False
        return self.primal_graph().is_cycle_graph()

    def is_hn_shape(self) -> bool:
        """True if H is (isomorphic to) H_n for n >= 3: the hyperedges are
        exactly all (n-1)-subsets of the n vertices."""
        n = len(self._vertices)
        if n < 3:
            return False
        expected = {
            Schema(self._vertices - {v}) for v in self._vertices
        }
        return set(self._edges) == expected


def hypergraph_of_bags(bags: Sequence) -> Hypergraph:
    """The hypergraph whose hyperedges are the schemas of a collection of
    bags (or relations); duplicate schemas collapse, as in the paper."""
    return Hypergraph.from_schemas([bag.schema for bag in bags])
