"""Named hypergraph families and random generators.

The paper's running examples (Section 4):

* ``P_n`` — the path: edges {A1,A2}, ..., {A(n-1),An}; acyclic for n >= 2.
* ``C_n`` — the cycle: the path plus {An,A1}; cyclic for n >= 3, the
  minimal non-chordal obstruction for n >= 4.
* ``H_n`` — all (n-1)-subsets of n vertices; cyclic for n >= 3, the
  minimal non-conformal obstruction.  ``H_3 == C_3`` (the triangle).

Random generators produce arbitrary hypergraphs (for cross-decider
property tests) and guaranteed-acyclic hypergraphs (grown edge-by-edge so
the running intersection property holds by construction).
"""

from __future__ import annotations

import random
from typing import Sequence

from .hypergraph import Hypergraph


def _attrs(n: int, prefix: str = "A") -> list[str]:
    return [f"{prefix}{i}" for i in range(1, n + 1)]


def path_hypergraph(n: int, prefix: str = "A") -> Hypergraph:
    """P_n: the path hypergraph on n >= 2 vertices (acyclic)."""
    if n < 2:
        raise ValueError(f"P_n requires n >= 2, got {n}")
    vs = _attrs(n, prefix)
    return Hypergraph(vs, [(vs[i], vs[i + 1]) for i in range(n - 1)])


def cycle_hypergraph(n: int, prefix: str = "A") -> Hypergraph:
    """C_n: the cycle hypergraph on n >= 3 vertices (cyclic)."""
    if n < 3:
        raise ValueError(f"C_n requires n >= 3, got {n}")
    vs = _attrs(n, prefix)
    edges = [(vs[i], vs[(i + 1) % n]) for i in range(n)]
    return Hypergraph(vs, edges)


def hn_hypergraph(n: int, prefix: str = "A") -> Hypergraph:
    """H_n: all (n-1)-element subsets of n >= 3 vertices (cyclic)."""
    if n < 3:
        raise ValueError(f"H_n requires n >= 3, got {n}")
    vs = _attrs(n, prefix)
    edges = [tuple(v for v in vs if v != out) for out in vs]
    return Hypergraph(vs, edges)


def triangle_hypergraph(prefix: str = "A") -> Hypergraph:
    """C_3 = H_3, the triangle {A1,A2},{A2,A3},{A3,A1} — the schema of
    3-dimensional contingency tables (Lemma 6)."""
    return cycle_hypergraph(3, prefix)


def star_hypergraph(n: int, prefix: str = "A") -> Hypergraph:
    """A star: edges {Hub, A_i}; always acyclic."""
    if n < 1:
        raise ValueError(f"star requires n >= 1 leaves, got {n}")
    hub = f"{prefix}0"
    vs = [hub] + _attrs(n, prefix)
    return Hypergraph(vs, [(hub, v) for v in vs[1:]])


def chain_of_cliques(lengths: Sequence[int], prefix: str = "A") -> Hypergraph:
    """An acyclic chain of overlapping hyperedges: edge i has
    ``lengths[i]`` vertices and shares exactly one vertex with edge i+1.
    Useful for scaling benchmarks over acyclic schemas with wide edges."""
    if not lengths or any(size < 2 for size in lengths):
        raise ValueError("each edge needs at least 2 vertices")
    edges = []
    counter = 0
    link = f"{prefix}{counter}"
    for size in lengths:
        fresh = [f"{prefix}{counter + k}" for k in range(1, size)]
        edges.append([link] + fresh)
        counter += size - 1
        link = f"{prefix}{counter}"
    return Hypergraph(None, edges)


def random_hypergraph(
    n_vertices: int,
    n_edges: int,
    max_arity: int,
    rng: random.Random,
) -> Hypergraph:
    """A uniformly arbitrary hypergraph (may be cyclic or acyclic)."""
    if n_vertices < 1 or n_edges < 1 or max_arity < 1:
        raise ValueError("need at least one vertex, edge and arity")
    vs = _attrs(n_vertices)
    edges = []
    for _ in range(n_edges):
        arity = rng.randint(1, min(max_arity, n_vertices))
        edges.append(tuple(rng.sample(vs, arity)))
    return Hypergraph(vs, edges)


def random_acyclic_hypergraph(
    n_edges: int,
    max_arity: int,
    rng: random.Random,
    max_shared: int | None = None,
) -> Hypergraph:
    """An acyclic hypergraph grown edge by edge.

    Each new edge takes a random subset of one existing edge's vertices
    plus fresh vertices, so the listing satisfies the running intersection
    property by construction (hence the result is acyclic by Theorem 1).
    """
    if n_edges < 1 or max_arity < 2:
        raise ValueError("need n_edges >= 1 and max_arity >= 2")
    counter = 0

    def fresh() -> str:
        nonlocal counter
        counter += 1
        return f"A{counter}"

    first_arity = rng.randint(1, max_arity)
    edges: list[tuple[str, ...]] = [
        tuple(fresh() for _ in range(first_arity))
    ]
    for _ in range(n_edges - 1):
        anchor = list(rng.choice(edges))
        cap = len(anchor) if max_shared is None else min(max_shared, len(anchor))
        shared = rng.randint(0, cap)
        arity = rng.randint(max(1, shared), max_arity)
        inherited = rng.sample(anchor, shared)
        new_edge = inherited + [fresh() for _ in range(arity - shared)]
        if not new_edge:
            new_edge = [fresh()]
        edges.append(tuple(new_edge))
    return Hypergraph(None, edges)


def grid_hypergraph(rows: int, cols: int) -> Hypergraph:
    """A rows x cols grid of binary edges (cyclic when both >= 2);
    a stress family for obstruction finding."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")
    def name(r: int, c: int) -> str:
        return f"G{r}_{c}"
    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((name(r, c), name(r, c + 1)))
            if r + 1 < rows:
                edges.append((name(r, c), name(r + 1, c)))
    return Hypergraph(None, edges)
