"""Additional hypergraph structure: connectivity, duals, incidence.

Support utilities the main algorithms and downstream users lean on:

* connectivity and connected components (GYO and join trees handle
  disconnected hypergraphs, but diagnostics want the decomposition);
* the dual hypergraph (vertices <-> edges), under which conformality
  and Helly-type properties swap roles in the classical theory;
* the vertex-edge incidence matrix, the bridge to the linear-algebraic
  arguments of Section 3 (for a *graph*, its transpose is exactly the
  matrix whose total unimodularity the paper invokes);
* edge/vertex degree statistics used by the uniformity/regularity
  preconditions of the Tseitin construction.
"""

from __future__ import annotations

from fractions import Fraction

from .hypergraph import Hypergraph


def is_connected(hypergraph: Hypergraph) -> bool:
    """Connected: every two vertices linked by a chain of overlapping
    hyperedges (equivalently, the primal graph is connected, plus no
    isolated vertices split off)."""
    if not hypergraph.vertices:
        return True
    return len(connected_components(hypergraph)) == 1


def connected_components(hypergraph: Hypergraph) -> list[frozenset]:
    """Vertex sets of the connected components (isolated vertices form
    singleton components)."""
    parent: dict = {v: v for v in hypergraph.vertices}

    def find(v):
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    def union(u, v):
        parent[find(u)] = find(v)

    for edge in hypergraph.edges:
        attrs = edge.attrs
        for other in attrs[1:]:
            union(attrs[0], other)
    groups: dict = {}
    for v in hypergraph.vertices:
        groups.setdefault(find(v), set()).add(v)
    return sorted(
        (frozenset(g) for g in groups.values()), key=lambda s: sorted(map(repr, s))
    )


def component_hypergraphs(hypergraph: Hypergraph) -> list[Hypergraph]:
    """The induced hypergraph of each connected component."""
    return [
        hypergraph.induced(component)
        for component in connected_components(hypergraph)
    ]


def dual_hypergraph(hypergraph: Hypergraph) -> Hypergraph:
    """The dual: one vertex per hyperedge, one hyperedge per original
    vertex (the set of edges containing it).

    Edge labels are the indices of the original edges in listing order.
    Vertices in no edge contribute nothing (their dual edge would be
    empty), and vertices with identical incidence signatures collapse to
    one dual edge, since hyperedge sets are deduplicated.
    """
    edges = []
    for v in sorted(hypergraph.vertices, key=repr):
        containing = tuple(
            i for i, edge in enumerate(hypergraph.edges) if v in edge
        )
        if containing:
            edges.append(containing)
    return Hypergraph(range(len(hypergraph.edges)), edges)


def incidence_matrix(hypergraph: Hypergraph) -> list[list[Fraction]]:
    """The vertex-edge incidence matrix: rows indexed by vertices in
    canonical order, columns by hyperedges in listing order."""
    vertices = sorted(hypergraph.vertices, key=repr)
    return [
        [
            Fraction(1) if v in edge else Fraction(0)
            for edge in hypergraph.edges
        ]
        for v in vertices
    ]


def vertex_degrees(hypergraph: Hypergraph) -> dict:
    """How many hyperedges contain each vertex (d-regularity reads off
    this)."""
    degrees = {v: 0 for v in hypergraph.vertices}
    for edge in hypergraph.edges:
        for v in edge.attrs:
            degrees[v] += 1
    return degrees


def edge_sizes(hypergraph: Hypergraph) -> list[int]:
    """Hyperedge cardinalities in listing order (k-uniformity reads off
    this)."""
    return [len(edge) for edge in hypergraph.edges]


def is_simple(hypergraph: Hypergraph) -> bool:
    """No hyperedge contained in another (i.e. H equals its reduction);
    Berge calls such hypergraphs simple (or Sperner families)."""
    return hypergraph.is_reduced()


def acyclicity_is_componentwise(hypergraph: Hypergraph) -> bool:
    """Sanity lemma used by tests: H is acyclic iff every connected
    component is (GYO never interacts across components)."""
    from .acyclicity import is_acyclic

    whole = is_acyclic(hypergraph)
    parts = all(
        is_acyclic(component)
        for component in component_hypergraphs(hypergraph)
        if len(component.edges) > 0
    )
    return whole == parts
