"""Conformality: Gilmore's criterion and the clique-cover definition.

A hypergraph is *conformal* if every clique of its primal graph is
contained in some hyperedge (Section 4).  Two deciders are provided:

* :func:`is_conformal` — Gilmore's theorem (Berge, *Hypergraphs*, p. 31):
  H is conformal iff for every three hyperedges e1, e2, e3 some hyperedge
  contains ``(e1 & e2) | (e2 & e3) | (e3 & e1)``.  Polynomial: O(m^3)
  candidate sets, each checked in O(m * n).
* :func:`is_conformal_by_cliques` — the definition, via maximal-clique
  enumeration (worst-case exponential; used as the oracle in tests).

For non-conformal hypergraphs, :func:`find_uncovered_clique` produces an
explicit primal clique contained in no hyperedge — the certificate behind
Lemma 3(2).
"""

from __future__ import annotations

from itertools import combinations

from .hypergraph import Hypergraph


def _covered(hypergraph: Hypergraph, vertex_set: frozenset) -> bool:
    return any(
        vertex_set <= edge.as_frozenset() for edge in hypergraph.edges
    )


def is_conformal(hypergraph: Hypergraph) -> bool:
    """Gilmore's O(m^3) conformality test."""
    edges = [e.as_frozenset() for e in hypergraph.edges]
    if not edges:
        return True
    m = len(edges)
    for i in range(m):
        for j in range(i, m):
            for k in range(j, m):
                candidate = (
                    (edges[i] & edges[j])
                    | (edges[j] & edges[k])
                    | (edges[k] & edges[i])
                )
                if not _covered(hypergraph, candidate):
                    return False
    return True


def is_conformal_by_cliques(hypergraph: Hypergraph) -> bool:
    """Definitional test: every maximal clique of the primal graph lies in
    some hyperedge.  Exponential worst case — test oracle only."""
    primal = hypergraph.primal_graph()
    return all(
        _covered(hypergraph, clique) for clique in primal.maximal_cliques()
    )


def find_uncovered_clique(hypergraph: Hypergraph) -> frozenset | None:
    """An inclusion-minimal primal clique not covered by any hyperedge,
    or None if the hypergraph is conformal.

    Starts from a violating Gilmore triple (whose candidate set is a primal
    clique: every pair inside it meets within one of the three edges) and
    shrinks it minimally so that every proper subset is covered.  Minimal
    uncovered cliques are what the H_n obstruction of Lemma 3(2) is made
    of.
    """
    edges = [e.as_frozenset() for e in hypergraph.edges]
    m = len(edges)
    witness: frozenset | None = None
    for i in range(m):
        for j in range(i, m):
            for k in range(j, m):
                candidate = (
                    (edges[i] & edges[j])
                    | (edges[j] & edges[k])
                    | (edges[k] & edges[i])
                )
                if not _covered(hypergraph, candidate):
                    witness = candidate
                    break
            if witness:
                break
        if witness:
            break
    if witness is None:
        return None
    # Shrink to an inclusion-minimal uncovered set; it remains a clique
    # because subsets of cliques are cliques.
    shrunk = set(witness)
    changed = True
    while changed:
        changed = False
        for v in sorted(shrunk, key=repr):
            smaller = frozenset(shrunk - {v})
            if smaller and not _covered(hypergraph, smaller):
                shrunk = set(smaller)
                changed = True
                break
    return frozenset(shrunk)


def verify_uncovered_clique(
    hypergraph: Hypergraph, clique: frozenset
) -> bool:
    """Certificate check: ``clique`` is a primal-graph clique covered by no
    hyperedge, and every proper subset of it is covered."""
    primal = hypergraph.primal_graph()
    if not primal.is_clique(clique):
        return False
    if _covered(hypergraph, clique):
        return False
    for size in range(1, len(clique)):
        for subset in combinations(sorted(clique, key=repr), size):
            if not _covered(hypergraph, frozenset(subset)):
                return False
    return True
