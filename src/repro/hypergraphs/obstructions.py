"""Lemma 3: minimal cyclic obstructions inside a cyclic hypergraph.

For a hypergraph H that is not chordal, there is a vertex set W with
|W| >= 4 such that the reduced induced hypergraph ``R(H[W])`` is the
cycle ``C_|W|``; for H not conformal, there is W with |W| >= 3 such that
``R(H[W])`` is ``H_|W|`` (all (|W|-1)-subsets).  Moreover both W and a
sequence of safe deletions transforming H into ``R(H[W])`` are computable
in polynomial time.

This module implements the witness-finding algorithm the paper sketches:
iteratively delete vertices whose removal keeps the induced hypergraph
non-chordal (resp. non-conformal) until no deletion is possible; the
survivors form W.  The resulting ``R(H[W])`` is verified against the
expected shape, so a successful return is a checked certificate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from ..errors import AcyclicSchemaError
from .acyclicity import is_acyclic
from .chordality import is_chordal_graph
from .conformality import is_conformal
from .hypergraph import Hypergraph

ObstructionKind = Literal["cycle", "hn"]


@dataclass(frozen=True)
class Obstruction:
    """A Lemma 3 obstruction certificate.

    ``kind`` is "cycle" when ``R(H[W])`` is isomorphic to C_|W| (H was not
    chordal) and "hn" when it is isomorphic to H_|W| (H was not
    conformal).  ``reduced_induced`` is R(H[W]) itself.
    """

    kind: ObstructionKind
    vertices: frozenset
    reduced_induced: Hypergraph


def find_nonchordal_witness(hypergraph: Hypergraph) -> frozenset | None:
    """A minimal W whose induced primal graph is non-chordal, or None.

    Paper's algorithm: while some vertex can be deleted leaving a
    non-chordal induced hypergraph, delete it.  The survivors induce a
    chordless cycle, so ``R(H[W])`` is isomorphic to ``C_|W|``.
    """
    if is_chordal_graph(hypergraph.primal_graph()):
        return None
    keep = set(hypergraph.vertices)
    changed = True
    while changed:
        changed = False
        for v in sorted(keep, key=repr):
            candidate = keep - {v}
            primal = hypergraph.induced(candidate).primal_graph()
            if not is_chordal_graph(primal):
                keep = candidate
                changed = True
                break
    return frozenset(keep)


def find_nonconformal_witness(hypergraph: Hypergraph) -> frozenset | None:
    """A minimal W whose induced hypergraph is non-conformal, or None.

    By [Bra16] (cited in Lemma 3), ``R(H[W])`` for the surviving W is
    isomorphic to ``H_|W|``.
    """
    if is_conformal(hypergraph):
        return None
    keep = set(hypergraph.vertices)
    changed = True
    while changed:
        changed = False
        for v in sorted(keep, key=repr):
            candidate = keep - {v}
            if not is_conformal(hypergraph.induced(candidate)):
                keep = candidate
                changed = True
                break
    return frozenset(keep)


def find_obstruction(hypergraph: Hypergraph) -> Obstruction:
    """The Lemma 3 certificate for a cyclic hypergraph.

    Prefers the non-conformal (H_n) obstruction when both exist, so the
    triangle C_3 = H_3 is reported uniformly as "hn"; falls back to the
    non-chordal (cycle) obstruction.  Raises
    :class:`AcyclicSchemaError` when the hypergraph is acyclic (by
    Theorem 1(b) an acyclic hypergraph is chordal and conformal, so no
    obstruction exists).

    The returned certificate is verified: the reduced induced hypergraph
    must have exactly the claimed shape.
    """
    if is_acyclic(hypergraph):
        raise AcyclicSchemaError(
            f"no obstruction exists: {hypergraph!r} is acyclic"
        )
    w_conf = find_nonconformal_witness(hypergraph)
    if w_conf is not None:
        reduced = hypergraph.induced(w_conf).reduction()
        if not reduced.is_hn_shape():
            raise AssertionError(
                f"Lemma 3(2) violated: R(H[W]) for W={sorted(map(repr, w_conf))} "
                f"is not an H_n: {reduced!r}"
            )
        return Obstruction("hn", w_conf, reduced)
    w_chord = find_nonchordal_witness(hypergraph)
    if w_chord is None:
        raise AssertionError(
            "cyclic hypergraph is both chordal and conformal; "
            "contradicts Theorem 1(b)"
        )
    reduced = hypergraph.induced(w_chord).reduction()
    if not reduced.is_cycle_shape() or len(w_chord) < 4:
        raise AssertionError(
            f"Lemma 3(1) violated: R(H[W]) for W={sorted(map(repr, w_chord))} "
            f"is not a C_n with n >= 4: {reduced!r}"
        )
    return Obstruction("cycle", w_chord, reduced)
