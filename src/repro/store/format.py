"""On-disk record framing for the persistent verdict store.

One **segment file** is a fixed header followed by a run of CRC-framed
records.  The format is deliberately boring — append-only, no in-place
mutation, every record independently checksummed — so that the only
crash mode a log can exhibit is a *torn tail*: a prefix of intact
records followed by garbage where the final append was cut short.

Segment header (10 bytes)::

    MAGIC   6 bytes  b"RVSSEG"
    version u16 BE   FORMAT_VERSION

Record frame::

    length  u32 BE   byte length of `body`
    crc32   u32 BE   zlib.crc32 over `body`
    body    length bytes:
        kind     u8          RECORD_PUT | RECORD_PUT_Z | RECORD_TOMBSTONE
        key_len  u32 BE      byte length of the key blob
        key      key_len bytes
        value    the rest

For a ``PUT`` the key blob is ``pickle((key, participant_fps))`` and
the value blob is ``pickle(value)`` — split so that opening a shard can
index every record (key, fingerprints, value location) **without**
unpickling any values; values are read lazily on the first read-through
miss.  A ``PUT_Z`` is the same record with the value blob run through
``zlib.compress`` — the per-record compression flag used for large
witness blobs (:func:`encode_put` compresses when the pickled value
reaches ``compress_min`` bytes *and* compression actually shrinks it;
small bools stay raw, so hot verdict reads never pay an inflate).  For
a ``TOMBSTONE`` the key blob is ``pickle(fp)`` (drop every earlier
record whose participants include ``fp``) and the value blob is empty.

Version history (``FORMAT_VERSION``): **1** wrote only ``PUT`` /
``TOMBSTONE``; **2** added ``PUT_Z``.  The bump is *tolerant* in both
directions: this reader replays v1 segments unchanged (they simply
contain no compressed records), while a v1 reader meeting a v2 segment
skips it whole (preserved, never rewritten) by the newer-version rule
below — it must not mis-parse a ``PUT_Z`` body as a torn tail and
truncate good data.

Crash tolerance on open (:func:`scan_segment`):

* a record whose frame runs past end-of-file, whose CRC disagrees, or
  whose body cannot be parsed marks the **torn tail** — everything from
  its offset on is ignored and the caller may physically truncate it;
* a file whose magic is not ours, or whose version is newer than this
  code, is **skipped whole** (reported, preserved, never rewritten) —
  a downgraded reader must not destroy a newer store's data.

Pickle is the value codec: the store holds engine results (bools,
``Bag`` witnesses, ``GlobalConsistencyResult``) produced by this
codebase on this machine; the trust boundary is the local filesystem,
exactly as for any on-disk cache.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO

__all__ = [
    "COMPRESS_MIN",
    "FORMAT_VERSION",
    "MAGIC",
    "RECORD_PUT",
    "RECORD_PUT_Z",
    "RECORD_TOMBSTONE",
    "ScannedRecord",
    "SegmentScan",
    "decode_value",
    "encode_put",
    "encode_tombstone",
    "read_value",
    "scan_segment",
    "write_header",
]

MAGIC = b"RVSSEG"
FORMAT_VERSION = 2
HEADER = struct.Struct(">6sH")
FRAME = struct.Struct(">II")
BODY_HEAD = struct.Struct(">BI")

RECORD_PUT = 1
RECORD_TOMBSTONE = 2
RECORD_PUT_Z = 3

# Pickled values at least this large are candidates for zlib
# compression.  Verdict bools and refusal Nones pickle to a few bytes
# and stay raw; witness bags and global results with non-trivial
# support clear it easily.
COMPRESS_MIN = 512


def write_header(fh: BinaryIO, version: int = FORMAT_VERSION) -> None:
    fh.write(HEADER.pack(MAGIC, version))


def _frame(body: bytes) -> bytes:
    return FRAME.pack(len(body), zlib.crc32(body)) + body


def encode_put(
    key: tuple,
    value: object,
    fps: tuple,
    compress_min: int | None = COMPRESS_MIN,
) -> bytes:
    """One framed PUT record (key + fingerprints separate from the
    lazily-read value blob).

    Value blobs of at least ``compress_min`` bytes are stored
    zlib-compressed (kind ``PUT_Z``) when that actually shrinks them;
    ``compress_min=None`` disables compression outright.  The choice is
    flagged per record, so one segment freely mixes raw and compressed
    values and readers never guess.
    """
    key_blob = pickle.dumps((key, tuple(fps)), protocol=pickle.HIGHEST_PROTOCOL)
    value_blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    kind = RECORD_PUT
    if compress_min is not None and len(value_blob) >= compress_min:
        packed = zlib.compress(value_blob)
        if len(packed) < len(value_blob):
            kind = RECORD_PUT_Z
            value_blob = packed
    body = BODY_HEAD.pack(kind, len(key_blob)) + key_blob + value_blob
    return _frame(body)


def encode_tombstone(fp: int) -> bytes:
    """One framed tombstone: drop every earlier record touching ``fp``."""
    key_blob = pickle.dumps(fp, protocol=pickle.HIGHEST_PROTOCOL)
    body = BODY_HEAD.pack(RECORD_TOMBSTONE, len(key_blob)) + key_blob
    return _frame(body)


@dataclass(frozen=True)
class ScannedRecord:
    """One intact record met during a segment scan.

    ``value_offset``/``value_length`` locate the (possibly compressed,
    see ``compressed``) pickled value inside the segment file for lazy
    reads; tombstones carry ``fp`` instead.
    """

    kind: int
    key: tuple | None
    fps: tuple
    fp: int | None
    value_offset: int
    value_length: int
    compressed: bool = False


@dataclass
class SegmentScan:
    """The outcome of scanning one segment.

    ``usable`` is False for foreign or newer-versioned files (skip,
    preserve).  ``truncate_at`` is the byte offset of the torn tail
    when one was found (``None`` for a clean file): every byte from
    there on failed framing and should be cut before appending.
    """

    usable: bool
    version: int | None
    records: list[ScannedRecord]
    truncate_at: int | None
    reason: str | None = None


def scan_segment(fh: BinaryIO) -> SegmentScan:
    """Scan an opened segment from the start, stopping at the first
    framing violation (the torn tail) — never raising for corruption."""
    header = fh.read(HEADER.size)
    if len(header) < HEADER.size:
        # shorter than a header: a creation cut short; everything goes
        return SegmentScan(True, None, [], 0, "truncated header")
    magic, version = HEADER.unpack(header)
    if magic != MAGIC:
        return SegmentScan(False, None, [], None, "foreign file (bad magic)")
    if version > FORMAT_VERSION:
        return SegmentScan(
            False, version, [], None, f"format version {version} is newer"
        )
    records: list[ScannedRecord] = []
    offset = HEADER.size
    while True:
        frame = fh.read(FRAME.size)
        if not frame:
            return SegmentScan(True, version, records, None)
        if len(frame) < FRAME.size:
            return SegmentScan(True, version, records, offset, "torn frame")
        length, crc = FRAME.unpack(frame)
        body = fh.read(length)
        if len(body) < length or zlib.crc32(body) != crc:
            return SegmentScan(True, version, records, offset, "torn body")
        record = _parse_body(body, record_start=offset)
        if record is None:
            return SegmentScan(True, version, records, offset, "bad body")
        records.append(record)
        offset += FRAME.size + length


def _parse_body(body: bytes, record_start: int) -> ScannedRecord | None:
    """Decode one CRC-verified body; ``None`` on any malformation (a
    CRC collision or a foreign writer — treated like a torn tail)."""
    if len(body) < BODY_HEAD.size:
        return None
    kind, key_len = BODY_HEAD.unpack_from(body)
    key_end = BODY_HEAD.size + key_len
    if key_end > len(body):
        return None
    try:
        key_obj = pickle.loads(body[BODY_HEAD.size:key_end])
    except Exception:
        return None
    value_offset = record_start + FRAME.size + key_end
    value_length = len(body) - key_end
    if kind in (RECORD_PUT, RECORD_PUT_Z):
        if not isinstance(key_obj, tuple) or len(key_obj) != 2:
            return None
        key, fps = key_obj
        if not isinstance(key, tuple) or not isinstance(fps, tuple):
            return None
        return ScannedRecord(
            kind, key, fps, None, value_offset, value_length,
            compressed=kind == RECORD_PUT_Z,
        )
    if kind == RECORD_TOMBSTONE:
        if not isinstance(key_obj, int):
            return None
        return ScannedRecord(kind, None, (), key_obj, value_offset, 0)
    return None  # unknown record kind: stop here, keep the prefix


def decode_value(blob: bytes, compressed: bool) -> object:
    """Unpickle one value blob, inflating it first when the record was
    flagged compressed."""
    if compressed:
        blob = zlib.decompress(blob)
    return pickle.loads(blob)


def read_value(fh: BinaryIO, record: ScannedRecord) -> object:
    """The lazily-read value of a PUT record (read-through path)."""
    fh.seek(record.value_offset)
    blob = fh.read(record.value_length)
    return decode_value(blob, record.compressed)
