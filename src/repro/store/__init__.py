"""Durable, sharded persistence for the content-addressed verdict store.

Layers (disk up):

* :mod:`repro.store.format` — CRC-framed record encoding, segment
  headers, torn-tail/foreign-file tolerant scanning;
* :mod:`repro.store.shard` — one append-only segment log per
  fingerprint-prefix shard, with write-behind buffering, tombstones,
  and snapshot compaction;
* :mod:`repro.store.persistent` — :class:`PersistentVerdictStore`, the
  drop-in ``store=`` for :class:`repro.engine.Engine`, ``repro batch
  --store-dir`` and ``repro serve --store-dir``.

Import-light on purpose: pulling in :mod:`repro.store` must not drag
the engine session module until a store is actually constructed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "DEFAULT_SHARDS",
    "PersistentVerdictStore",
    "Shard",
    "StoreFormatError",
    "shard_of_fp",
    "shard_of_key",
    "verify_store",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .persistent import (
        DEFAULT_SHARDS,
        PersistentVerdictStore,
        StoreFormatError,
        shard_of_fp,
        shard_of_key,
    )
    from .shard import Shard
    from .verify import verify_store


def __getattr__(name: str):
    if name in {
        "DEFAULT_SHARDS",
        "PersistentVerdictStore",
        "StoreFormatError",
        "shard_of_fp",
        "shard_of_key",
    }:
        from . import persistent

        return getattr(persistent, name)
    if name == "Shard":
        from .shard import Shard

        return Shard
    if name == "verify_store":
        from .verify import verify_store

        return verify_store
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
