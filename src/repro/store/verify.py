"""Offline store verification: CRC scan + recompute cross-checks.

``repro store verify`` answers two questions about a persistent
verdict store without mutating it:

1. **Is every byte intact?**  Every segment of every shard is scanned
   through the same CRC framing the open path uses — but read-only: a
   torn tail is *reported*, never truncated, and foreign or
   newer-versioned segments are counted as skipped, exactly as an open
   would treat them.

2. **Do stored results still mean what their keys claim?**  A random
   sample of live records is decoded and cross-checked against fresh
   recomputation.  Keys hold only fingerprints, not bags — but a
   witness *contains* its inputs: ``W`` was built so that its marginal
   on each input schema IS the input bag.  So for a sampled witness the
   verifier searches the sub-schemas of ``W.schema`` for marginals
   whose fingerprints equal the key's; finding them recovers the
   original bags, and the verdict is recomputed from scratch
   (``are_consistent`` + ``is_witness`` + the minimality bound when the
   key claims it).  Global results recover every participant the same
   way; pair verdicts are cross-referenced against the stored witness
   for the same fingerprint pair.  A corrupted or mislabelled value
   cannot survive: its marginal fingerprints no longer match its key.

Records whose schemas are too wide to enumerate (``max_attrs``) or
that carry nothing recomputable (e.g. a lone ``consistent`` bool with
no witness to cross-reference) are counted ``skipped`` — reported, not
silently dropped from the denominator.
"""

from __future__ import annotations

import random
from itertools import chain, combinations
from pathlib import Path

from . import format as fmt
from .persistent import META_NAME

__all__ = ["verify_store"]

DEFAULT_SAMPLE = 32
DEFAULT_MAX_ATTRS = 10


def _scan_shard(shard_dir: Path, report: dict) -> dict:
    """Replay one shard directory read-only into its live record map
    ``key -> (segment, offset, length, compressed, fps)``."""
    live: dict[tuple, tuple] = {}
    fp_keys: dict[int, set[tuple]] = {}

    def drop(fp: int) -> None:
        for key in fp_keys.pop(fp, set()):
            entry = live.pop(key, None)
            if entry is None:
                continue
            report["dead_records"] += 1
            for other in entry[4]:
                if other != fp:
                    keys = fp_keys.get(other)
                    if keys is not None:
                        keys.discard(key)

    for segment in sorted(shard_dir.glob("*.seg")):
        report["segments"] += 1
        with segment.open("rb") as fh:
            scan = fmt.scan_segment(fh)
        if not scan.usable:
            report["skipped_segments"] += 1
            continue
        if scan.truncate_at is not None:
            report["torn_tails"] += 1
        report["scanned_records"] += len(scan.records)
        for record in scan.records:
            if record.kind == fmt.RECORD_TOMBSTONE:
                drop(record.fp)
                continue
            if record.key in live:
                report["dead_records"] += 1
            else:
                for fp in record.fps:
                    fp_keys.setdefault(fp, set()).add(record.key)
            live[record.key] = (
                segment,
                record.value_offset,
                record.value_length,
                record.compressed,
                record.fps,
            )
    return live


def _load_value(entry: tuple):
    segment, offset, length, compressed, _ = entry
    with segment.open("rb") as fh:
        fh.seek(offset)
        blob = fh.read(length)
    return fmt.decode_value(blob, compressed)


def _marginal_fingerprints(witness, max_attrs: int):
    """``fingerprint -> sub-schema`` over every sub-schema of the
    witness (``None`` when the schema is too wide to enumerate)."""
    from ..core.schema import Schema
    from ..engine import fingerprint

    attrs = witness.schema.attrs
    if len(attrs) > max_attrs:
        return None
    by_fp = {}
    for subset in chain.from_iterable(
        combinations(attrs, size) for size in range(len(attrs) + 1)
    ):
        schema = Schema(subset)
        by_fp[fingerprint.of_bag(witness.marginal(schema))] = schema
    return by_fp


def _check_witness_value(key: tuple, witness, max_attrs: int) -> str:
    """Recompute a stored witness record from its own content."""
    from ..consistency.pairwise import are_consistent
    from ..consistency.witness import is_witness

    lfp, rfp = key[1], key[2]
    minimal = bool(key[3]) if len(key) > 3 else False
    by_fp = _marginal_fingerprints(witness, max_attrs)
    if by_fp is None:
        return "skipped"
    left_schema = by_fp.get(lfp)
    right_schema = by_fp.get(rfp)
    if left_schema is None or right_schema is None:
        return "mismatch"  # the value no longer contains its inputs
    if (left_schema | right_schema) != witness.schema:
        return "mismatch"
    left = witness.marginal(left_schema)
    right = witness.marginal(right_schema)
    if not are_consistent(left, right):
        return "mismatch"
    if not is_witness([left, right], witness):
        return "mismatch"
    if minimal and witness.support_size > (
        left.support_size + right.support_size
    ):
        return "mismatch"
    return "checked"


def _check_global_value(key: tuple, result, max_attrs: int) -> str:
    from ..consistency.witness import is_witness

    consistent = getattr(result, "consistent", None)
    witness = getattr(result, "witness", None)
    if consistent is None:
        return "mismatch"  # not a GlobalConsistencyResult at all
    if not consistent:
        return "checked" if witness is None else "mismatch"
    if witness is None:
        return "mismatch"
    by_fp = _marginal_fingerprints(witness, max_attrs)
    if by_fp is None:
        return "skipped"
    bags = []
    for fp in key[1]:
        schema = by_fp.get(fp)
        if schema is None:
            return "mismatch"
        bags.append(witness.marginal(schema))
    return "checked" if is_witness(bags, witness) else "mismatch"


def _check_consistent_value(key: tuple, verdict, live: dict) -> str:
    """Cross-reference a pair verdict against the stored witness for
    the same fingerprint pair (either orientation, either minimality)."""
    if not isinstance(verdict, bool):
        return "mismatch"
    a, b = key[1], key[2]
    for pair in ((a, b), (b, a)):
        for minimal in (False, True):
            entry = live.get(("witness", *pair, minimal))
            if entry is None:
                continue
            witness = _load_value(entry)
            if verdict != (witness is not None):
                return "mismatch"
            return "checked"
    return "skipped"  # no recomputable companion record


def _check_witness_refusal(key: tuple, live: dict) -> str:
    """A stored ``None`` witness claims the pair is inconsistent; the
    stored pair verdict (symmetric key: sorted fingerprints) must
    agree."""
    a, b = key[1], key[2]
    entry = live.get(("consistent", min(a, b), max(a, b)))
    if entry is None:
        return "skipped"  # refusal with no companion verdict
    verdict = _load_value(entry)
    if verdict is False:
        return "checked"
    return "mismatch"


def verify_store(
    store_dir: str | Path,
    sample: int = DEFAULT_SAMPLE,
    seed: int = 0,
    max_attrs: int = DEFAULT_MAX_ATTRS,
) -> dict:
    """CRC-scan a store directory and cross-check a sample of records.

    Read-only: unlike opening the store, a torn tail is reported
    instead of truncated.  Returns the one-line-JSON-able report;
    ``ok`` is False when any framing damage or recompute mismatch was
    found (the CLI turns that into a nonzero exit).
    """
    root = Path(store_dir)
    report = {
        "action": "verify",
        "store_dir": str(root),
        "shards": 0,
        "segments": 0,
        "skipped_segments": 0,
        "torn_tails": 0,
        "scanned_records": 0,
        "live_records": 0,
        "dead_records": 0,
        "sampled": 0,
        "checked": 0,
        "skipped": 0,
        "mismatches": 0,
    }
    live: dict[tuple, tuple] = {}
    for shard_dir in sorted(root.glob("shard-*")):
        if not shard_dir.is_dir():
            continue
        report["shards"] += 1
        live.update(_scan_shard(shard_dir, report))
    report["live_records"] = len(live)
    rng = random.Random(seed)
    keys = sorted(live, key=repr)
    if not sample:
        keys = []  # CRC scan only
    elif len(keys) > sample:
        keys = rng.sample(keys, sample)
    for key in keys:
        report["sampled"] += 1
        try:
            value = _load_value(live[key])
            if key[0] == "witness":
                outcome = (
                    _check_witness_value(key, value, max_attrs)
                    if value is not None
                    else _check_witness_refusal(key, live)
                )
            elif key[0] == "global":
                outcome = _check_global_value(key, value, max_attrs)
            elif key[0] == "consistent":
                outcome = _check_consistent_value(key, value, live)
            else:
                outcome = "skipped"
        except Exception:
            outcome = "mismatch"  # undecodable value = corruption
        report[
            "mismatches" if outcome == "mismatch"
            else "checked" if outcome == "checked"
            else "skipped"
        ] += 1
    report["ok"] = (
        report["mismatches"] == 0
        and report["torn_tails"] == 0
        and (root / META_NAME).exists()
    )
    return report
