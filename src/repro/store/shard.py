"""One disk shard: an append-only segment log with compaction.

A shard owns one directory (``shard-07/``) holding numbered segment
files (``00000001.seg``, ``00000002.seg``, ...).  All appends go to the
highest-numbered segment; compaction writes a **snapshot** — every live
record, exactly once — into a fresh higher-numbered segment and then
deletes the segments it subsumed.  Records never mutate in place, so
the invariants are:

* **replay order is truth** — scanning segments in numeric order and
  applying records in sequence (later PUT of a key supersedes earlier;
  a tombstone drops every earlier key touching its fingerprint)
  reconstructs exactly the live map;
* **a crash loses at most the unflushed tail** — appends are buffered
  (write-behind) until :meth:`flush`; a torn final record is detected
  by its CRC frame on the next open and physically truncated away;
* **foreign and newer-versioned segments are preserved, never
  rewritten** — they are skipped on open and left out of compaction's
  delete list, so a downgraded reader cannot destroy data it does not
  understand.

The in-memory side is an index only: ``key -> (segment, value offset,
length, fps)`` plus a fingerprint reverse index.  Values stay on disk
until a read-through asks for one (:meth:`lookup`), so reopening a
large store is one sequential scan per segment with **zero** value
unpickling.

Thread safety: every public method takes the shard's own lock — this
is the per-shard locking that lets concurrent serve connections touch
disjoint shards without serializing on one global store lock.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from ..analysis.registry import requires_lock, shared_state
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from . import format as fmt

__all__ = ["Shard", "ShardStats"]

_SEGMENT_SUFFIX = ".seg"

# Disk-touching latency only: the in-memory index probe records
# nothing.  The obs tier is last in the lock order, so recording while
# holding the shard lock is legal (RL05).
_READ_HISTOGRAM = obs_metrics.REGISTRY.histogram("repro_store_read_seconds")
_FLUSH_HISTOGRAM = obs_metrics.REGISTRY.histogram("repro_store_flush_seconds")


class ShardStats:
    """Mutable counters one shard exposes (merged by the store)."""

    __slots__ = (
        "appends", "flushes", "lookups", "tombstones", "compactions",
        "torn_tails", "skipped_segments",
    )

    def __init__(self) -> None:
        self.appends = 0
        self.flushes = 0
        self.lookups = 0
        self.tombstones = 0
        self.compactions = 0
        self.torn_tails = 0
        self.skipped_segments = 0


@shared_state(
    "_lock",
    "_index", "_fp_keys", "_pending", "_pending_index", "_dead",
    "_tail", "_tail_fh", "_skipped", "_no_append",
    tier="store",
)
class Shard:
    """One fingerprint-prefix shard of the persistent verdict store."""

    def __init__(
        self,
        path: str | os.PathLike,
        flush_every: int = 64,
        auto_compact: bool = True,
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be positive, got {flush_every}")
        self.path = Path(path)
        self.flush_every = flush_every
        self.auto_compact = auto_compact
        self._lock = threading.RLock()
        # key -> (segment Path, value_offset, value_length,
        # value_compressed, fps)
        self._index: dict[tuple, tuple[Path, int, int, bool, tuple]] = {}
        self._fp_keys: dict[int, set[tuple]] = {}
        # write-behind buffer: ("put", key, value, fps) | ("del", fp)
        self._pending: list[tuple] = []
        self._pending_index: dict[tuple, tuple[object, tuple]] = {}
        self._dead = 0  # superseded/tombstoned records still on disk
        self._tail: Path | None = None
        self._tail_fh = None
        self._skipped: list[Path] = []
        # readable but older-versioned segments: replayed and compacted
        # away, never appended to (appends always carry FORMAT_VERSION)
        self._no_append: set[Path] = set()
        self.stats = ShardStats()
        with self._lock:
            self._open()

    # -- open / recovery -------------------------------------------------

    def _segments(self) -> list[Path]:
        return sorted(self.path.glob(f"*{_SEGMENT_SUFFIX}"))

    def _segment_number(self, segment: Path) -> int:
        try:
            return int(segment.stem)
        except ValueError:
            return 0

    @requires_lock("_lock")
    def _open(self) -> None:
        self.path.mkdir(parents=True, exist_ok=True)
        for segment in self._segments():
            self._replay_segment(segment)
        self._tail = None  # appends open (or create) a tail lazily

    @requires_lock("_lock")
    def _replay_segment(self, segment: Path) -> None:
        with segment.open("rb") as fh:
            scan = fmt.scan_segment(fh)
        if not scan.usable:
            self._skipped.append(segment)
            self.stats.skipped_segments += 1
            return
        if scan.truncate_at is not None:
            # Torn tail: drop the garbage physically so the next append
            # starts on a clean frame boundary.
            with segment.open("r+b") as fh:
                fh.truncate(scan.truncate_at)
            self.stats.torn_tails += 1
        if scan.version is not None and scan.version != fmt.FORMAT_VERSION:
            self._no_append.add(segment)
        for record in scan.records:
            if record.kind == fmt.RECORD_TOMBSTONE:
                self._apply_tombstone(record.fp)
            else:
                self._apply_put(
                    record.key,
                    (
                        segment,
                        record.value_offset,
                        record.value_length,
                        record.compressed,
                    ),
                    record.fps,
                )

    @requires_lock("_lock")
    def _apply_put(self, key, location, fps) -> None:
        if key in self._index:
            self._dead += 1  # superseded: the old record is garbage now
        else:
            for fp in fps:
                self._fp_keys.setdefault(fp, set()).add(key)
        self._index[key] = (*location, tuple(fps))

    @requires_lock("_lock")
    def _apply_tombstone(self, fp: int) -> None:
        for key in self._fp_keys.pop(fp, set()):
            entry = self._index.pop(key, None)
            if entry is None:
                continue
            self._dead += 1
            for other in entry[4]:
                if other != fp:
                    keys = self._fp_keys.get(other)
                    if keys is not None:
                        keys.discard(key)
                        if not keys:
                            del self._fp_keys[other]

    # -- the read path ---------------------------------------------------

    def contains(self, key: tuple) -> bool:
        with self._lock:
            return key in self._pending_index or key in self._index

    def lookup(self, key: tuple):
        """``(value, fps)`` for a stored key, or ``None`` — the
        read-through miss path (one seek + one value unpickle)."""
        with self._lock:
            self.stats.lookups += 1
            pending = self._pending_index.get(key)
            if pending is not None:
                return pending
            entry = self._index.get(key)
            if entry is None:
                return None
            segment, offset, length, compressed, fps = entry
            start = time.perf_counter()
            with segment.open("rb") as fh:
                fh.seek(offset)
                blob = fh.read(length)
            value = fmt.decode_value(blob, compressed)
            elapsed = time.perf_counter() - start
            _READ_HISTOGRAM.record(elapsed)
            tr = obs_trace.current()
            if tr is not None:
                tr.add_span("store.read", start, elapsed, bytes=length)
            return value, fps

    def keys(self) -> list[tuple]:
        with self._lock:
            merged = set(self._index)
            merged.update(self._pending_index)
            return list(merged)

    # -- the write path --------------------------------------------------

    def append(self, key: tuple, value, fps) -> None:
        """Buffer one PUT (write-behind); flushes automatically every
        ``flush_every`` buffered operations."""
        with self._lock:
            fps = tuple(fps)
            if key in self._pending_index or key in self._index:
                # Results are deterministic functions of the key; a
                # second append would only write a byte-identical dead
                # record.
                return
            self._pending.append(("put", key, value, fps))
            self._pending_index[key] = (value, fps)
            self.stats.appends += 1
            if len(self._pending) >= self.flush_every:
                self._flush_locked()

    def tombstone(self, fp: int) -> int:
        """Drop every stored key touching ``fp`` (buffered like a PUT);
        returns the number of keys dropped."""
        with self._lock:
            dropped = 0
            hit_disk = fp in self._fp_keys
            for key in [
                k for k, (_, fps) in self._pending_index.items() if fp in fps
            ]:
                del self._pending_index[key]
                self._pending = [
                    op for op in self._pending
                    if not (op[0] == "put" and op[1] == key)
                ]
                dropped += 1
            if hit_disk:
                dropped += len(self._fp_keys[fp])
                self._apply_tombstone(fp)
                self._pending.append(("del", fp))
                self.stats.tombstones += 1
                if len(self._pending) >= self.flush_every:
                    self._flush_locked()
            return dropped

    def flush(self) -> int:
        """Write every buffered operation to the tail segment; returns
        the number of operations written."""
        with self._lock:
            return self._flush_locked()

    @requires_lock("_lock")
    def _tail_handle(self):
        if self._tail_fh is None:
            if self._tail is None:
                segments = [
                    s for s in self._segments()
                    if s not in self._skipped and s not in self._no_append
                ]
                self._tail = segments[-1] if segments else None
            if self._tail is None:
                self._tail = self._next_segment_path()
                self._tail_fh = self._tail.open("ab")
                fmt.write_header(self._tail_fh)
            else:
                self._tail_fh = self._tail.open("ab")
                if self._tail_fh.tell() < fmt.HEADER.size:
                    self._tail_fh.truncate(0)
                    fmt.write_header(self._tail_fh)
        return self._tail_fh

    def _next_segment_path(self) -> Path:
        highest = max(
            (self._segment_number(s) for s in self._segments()), default=0
        )
        return self.path / f"{highest + 1:08d}{_SEGMENT_SUFFIX}"

    @requires_lock("_lock")
    def _flush_locked(self) -> int:
        if not self._pending:
            return 0
        flush_start = time.perf_counter()
        fh = self._tail_handle()
        written = 0
        for op in self._pending:
            if op[0] == "put":
                _, key, value, fps = op
                offset = fh.tell()
                frame = fmt.encode_put(key, value, fps)
                fh.write(frame)
                value_length = len(
                    frame
                ) - fmt.FRAME.size - fmt.BODY_HEAD.size - self._key_blob_len(
                    frame
                )
                value_offset = offset + len(frame) - value_length
                compressed = frame[fmt.FRAME.size] == fmt.RECORD_PUT_Z
                self._apply_put(
                    key,
                    (self._tail, value_offset, value_length, compressed),
                    fps,
                )
            else:
                fh.write(fmt.encode_tombstone(op[1]))
            written += 1
        fh.flush()
        self._pending.clear()
        self._pending_index.clear()
        self.stats.flushes += 1
        elapsed = time.perf_counter() - flush_start
        _FLUSH_HISTOGRAM.record(elapsed)
        tr = obs_trace.current()
        if tr is not None:
            tr.add_span("store.flush", flush_start, elapsed, ops=written)
        if self.auto_compact and self._dead > max(64, len(self._index)):
            self._compact_locked()
        return written

    @staticmethod
    def _key_blob_len(frame: bytes) -> int:
        _, key_len = fmt.BODY_HEAD.unpack_from(frame, fmt.FRAME.size)
        return key_len

    # -- maintenance -----------------------------------------------------

    def compact(self) -> int:
        """Rewrite every live record into one fresh snapshot segment and
        delete the segments it subsumes; returns live record count."""
        with self._lock:
            self._flush_locked()
            return self._compact_locked()

    @requires_lock("_lock")
    def _compact_locked(self) -> int:
        old_segments = [s for s in self._segments() if s not in self._skipped]
        if not old_segments:
            return 0  # nothing on disk, nothing to rewrite
        self._close_tail()
        if not self._index:
            # All records are dead: reclaim the segments, skip the
            # empty snapshot.
            for segment in old_segments:
                segment.unlink(missing_ok=True)
                self._no_append.discard(segment)
            self._dead = 0
            self.stats.compactions += 1
            return 0
        snapshot = self._next_segment_path()
        live = sorted(self._index.items(), key=lambda item: repr(item[0]))
        new_index: dict[tuple, tuple[Path, int, int, bool, tuple]] = {}
        with snapshot.open("wb") as fh:
            fmt.write_header(fh)
            for key, (segment, offset, length, compressed, fps) in live:
                with segment.open("rb") as src:
                    src.seek(offset)
                    blob = src.read(length)
                value = fmt.decode_value(blob, compressed)
                record_offset = fh.tell()
                frame = fmt.encode_put(key, value, fps)
                fh.write(frame)
                value_length = len(frame) - fmt.FRAME.size \
                    - fmt.BODY_HEAD.size - self._key_blob_len(frame)
                new_index[key] = (
                    snapshot,
                    record_offset + len(frame) - value_length,
                    value_length,
                    frame[fmt.FRAME.size] == fmt.RECORD_PUT_Z,
                    fps,
                )
            fh.flush()
            os.fsync(fh.fileno())
        self._index = new_index
        for segment in old_segments:
            if segment != snapshot:
                segment.unlink(missing_ok=True)
                self._no_append.discard(segment)
        self._dead = 0
        self._tail = snapshot
        self.stats.compactions += 1
        return len(new_index)

    def clear(self) -> None:
        """Drop everything this shard understands (skipped foreign /
        newer-versioned segments are preserved)."""
        with self._lock:
            self._close_tail()
            for segment in self._segments():
                if segment not in self._skipped:
                    segment.unlink(missing_ok=True)
                    self._no_append.discard(segment)
            self._index.clear()
            self._fp_keys.clear()
            self._pending.clear()
            self._pending_index.clear()
            self._dead = 0
            self._tail = None

    @requires_lock("_lock")
    def _close_tail(self) -> None:
        if self._tail_fh is not None:
            self._tail_fh.close()
            self._tail_fh = None
        self._tail = None

    def close(self) -> None:
        with self._lock:
            self._flush_locked()
            self._close_tail()

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._index) + len(self._pending_index)

    def disk_bytes(self) -> int:
        with self._lock:
            return sum(
                segment.stat().st_size
                for segment in self._segments()
                if segment.exists()
            )

    def stats_dict(self) -> dict:
        with self._lock:
            return {
                "records": len(self._index) + len(self._pending_index),
                "dead_records": self._dead,
                "pending": len(self._pending),
                "segments": len(self._segments()),
                "skipped_segments": self.stats.skipped_segments,
                "bytes": self.disk_bytes(),
                "appends": self.stats.appends,
                "flushes": self.stats.flushes,
                "lookups": self.stats.lookups,
                "tombstones": self.stats.tombstones,
                "compactions": self.stats.compactions,
                "torn_tails": self.stats.torn_tails,
            }
