"""The persistent verdict store: durable warmth across restarts.

:class:`PersistentVerdictStore` is a drop-in replacement for the
in-memory :class:`repro.engine.session.VerdictStore` — everything that
accepts ``store=`` (``Engine``, ``LiveEngine``, ``ReproServer``, the
executors' merge path) takes one unchanged — that adds a **disk tier**
under the hot tier:

* keys are routed to one of N :class:`~repro.store.shard.Shard`
  directories by the **top bits of their primary content fingerprint**
  (:func:`shard_of_fp`), so a multi-process deployment can in principle
  split shards between daemons and, today, concurrent connections touch
  disjoint shard locks instead of one global lock;
* the hot tier is one in-memory ``VerdictStore`` *per shard* (the
  configured ``capacity`` is split across them), so reads that hit
  memory also never serialize store-wide;
* **read-through**: a hot-tier miss consults the shard's segment index;
  a disk hit promotes the entry into the hot tier and is counted
  separately (``disk_hits``) so warmth is observable;
* **write-behind**: puts land in the hot tier immediately and are
  buffered per shard, flushed every ``flush_every`` operations and on
  explicit :meth:`flush` / :meth:`close` — a crash loses at most the
  unflushed tail, never corrupts what was flushed (CRC framing,
  torn-tail truncation on reopen);
* only **durable tags** persist (pair verdicts, witnesses — refusals
  included — and global results).  Marginals and joins stay hot-only:
  they are cheap to rebuild from the bag indexes and would bloat the
  log with large value blobs.

Durability contract: :meth:`flush` makes everything buffered readable
by a future open; :meth:`close` flushes and releases file handles.
Eviction from the bounded hot tier never loses data — the entry was
appended to its shard's log at put time, so a later query pays one
read-through, not a recompute.

Pins are deliberately **ephemeral** (hot-tier only): a pin is an
eviction exemption, and eviction does not exist on disk.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Iterable, Sequence

from ..analysis.registry import shared_state
from ..errors import ReproError
from ..engine.session import VerdictStore
from ..obs import metrics as obs_metrics
from .shard import Shard

__all__ = [
    "DEFAULT_SHARDS",
    "DURABLE_TAGS",
    "PersistentVerdictStore",
    "StoreFormatError",
    "shard_of_fp",
    "shard_of_key",
]

DEFAULT_SHARDS = 8
DURABLE_TAGS = frozenset({"consistent", "witness", "global"})
META_NAME = "META.json"
META_VERSION = 1

# Process-wide read-through promotions (per-store exact counts stay on
# ``disk_hits``; this is the fleet-facing Prometheus view).  The span
# for the disk read itself is attached inside ``Shard.lookup``.
_DISK_HITS = obs_metrics.REGISTRY.counter("repro_store_disk_hits")


class StoreFormatError(ReproError):
    """A store directory this build cannot safely use (newer metadata
    version, or metadata that is not ours)."""


def shard_of_fp(fp: int, n_shards: int) -> int:
    """The shard owning a fingerprint: its top byte, folded mod N —
    "prefix" routing, so lexicographically close fingerprints spread
    uniformly (BLAKE2b top bits are uniform)."""
    return (fp >> 120) % n_shards


def shard_of_key(key: tuple, n_shards: int) -> int:
    """The shard owning a store key.

    Every engine key is ``(tag, fp-or-fp-tuple, ...)``; the *primary*
    fingerprint picks the shard.  Consistency keys are already
    fingerprint-sorted (the verdict is symmetric) but witness keys keep
    caller order, so for a witness the primary is the *smaller* of the
    pair — a pair's verdict and both witness orientations land in one
    shard, which is what lets a future multi-process split hand a
    pair's whole record set to one owner.
    """
    if len(key) < 2:
        return 0
    primary = key[1]
    if (
        key[0] == "witness"
        and len(key) > 2
        and isinstance(primary, int)
        and isinstance(key[2], int)
    ):
        primary = min(primary, key[2])
    if isinstance(primary, tuple):
        primary = primary[0] if primary else 0
    if not isinstance(primary, int):
        primary = 0
    return shard_of_fp(primary, n_shards)


# `_closed` is deliberately unregistered: it is a close()-time latch
# written by the owning thread only, and reads never need freshness.
@shared_state("_lock", "disk_hits", "merged", tier="store")
class PersistentVerdictStore:
    """A sharded disk tier under per-shard in-memory hot tiers.

    ``root`` is the store directory (created on first use; its
    ``META.json`` records the shard count, which later opens reuse —
    passing a different ``shards`` to an existing store is an error
    because keys would route to the wrong shard directories).
    """

    MISS = VerdictStore.MISS

    def __init__(
        self,
        root: str | Path,
        shards: int | None = None,
        capacity: int | None = None,
        flush_every: int = 64,
        auto_compact: bool = True,
        durable_tags: frozenset[str] = DURABLE_TAGS,
    ) -> None:
        self.root = Path(root)
        self.capacity = capacity
        self.durable_tags = durable_tags
        self.n_shards = self._load_or_create_meta(shards)
        per_shard = None
        if capacity is not None:
            if capacity < 1:
                raise ValueError(f"capacity must be positive, got {capacity}")
            per_shard = max(1, -(-capacity // self.n_shards))  # ceil div
        self._hot = [VerdictStore(per_shard) for _ in range(self.n_shards)]
        self._shards = [
            Shard(
                self.root / f"shard-{i:02d}",
                flush_every=flush_every,
                auto_compact=auto_compact,
            )
            for i in range(self.n_shards)
        ]
        self._lock = threading.Lock()  # store-level counters only
        self.disk_hits = 0
        self.merged = 0
        self._closed = False

    def _load_or_create_meta(self, shards: int | None) -> int:
        meta_path = self.root / META_NAME
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise StoreFormatError(
                    f"unreadable store metadata at {meta_path}: {exc}"
                ) from exc
            if not isinstance(meta, dict) or "shards" not in meta:
                raise StoreFormatError(
                    f"{meta_path} is not a verdict-store metadata file"
                )
            if meta.get("version", 0) > META_VERSION:
                raise StoreFormatError(
                    f"store at {self.root} has metadata version "
                    f"{meta['version']}; this build reads up to "
                    f"{META_VERSION} (upgrade, or point at a fresh "
                    f"--store-dir)"
                )
            existing = int(meta["shards"])
            if shards is not None and shards != existing:
                raise StoreFormatError(
                    f"store at {self.root} was created with {existing} "
                    f"shards; cannot reopen with shards={shards}"
                )
            return existing
        n = shards if shards is not None else DEFAULT_SHARDS
        if n < 1:
            raise ValueError(f"shards must be positive, got {n}")
        self.root.mkdir(parents=True, exist_ok=True)
        meta_path.write_text(
            json.dumps({"version": META_VERSION, "shards": n}) + "\n"
        )
        return n

    # -- routing ---------------------------------------------------------

    def _route(self, key: tuple) -> int:
        return shard_of_key(key, self.n_shards)

    def _durable(self, key: tuple) -> bool:
        return bool(key) and key[0] in self.durable_tags

    # -- the VerdictStore interface --------------------------------------

    def get(self, key: tuple):
        i = self._route(key)
        value = self._hot[i].get(key)
        if value is not self.MISS:
            return value
        if not self._durable(key):
            return self.MISS
        found = self._shards[i].lookup(key)
        if found is None:
            return self.MISS
        value, fps = found
        # Promote without re-appending: the record is already on disk.
        self._hot[i].put(key, value, fps)
        with self._lock:
            self.disk_hits += 1
        _DISK_HITS.inc()
        return value

    def contains(self, key: tuple) -> bool:
        i = self._route(key)
        if self._hot[i].contains(key):
            return True
        return self._durable(key) and self._shards[i].contains(key)

    def put(self, key: tuple, value, fps: Sequence[int]) -> int:
        i = self._route(key)
        evicted = self._hot[i].put(key, value, fps)
        if self._durable(key):
            self._shards[i].append(key, value, tuple(fps))
        return evicted

    def pin_fp(self, fp: int) -> None:
        # A pin exempts entries touching the fingerprint from hot-tier
        # eviction; participants can live in any shard, so pin all.
        for hot in self._hot:
            hot.pin_fp(fp)

    def unpin_fp(self, fp: int) -> int:
        return sum(hot.unpin_fp(fp) for hot in self._hot)

    def invalidate_fp(self, fp: int) -> int:
        """Drop every entry touching ``fp`` from both tiers (disk drops
        are tombstoned and reclaimed by compaction); returns the number
        of distinct keys dropped."""
        hot_total = sum(hot.invalidate_fp(fp) for hot in self._hot)
        disk_total = sum(shard.tombstone(fp) for shard in self._shards)
        # Disk and hot overlap (read-through promotions); report the
        # larger tier so the count is a lower bound on distinct keys.
        return max(hot_total, disk_total)

    def clear(self) -> None:
        for hot in self._hot:
            hot.clear()
        for shard in self._shards:
            shard.clear()

    def __len__(self) -> int:
        """Distinct stored keys across both tiers (hot entries that are
        also on disk count once)."""
        keys: set[tuple] = set()
        for hot in self._hot:
            with hot._lock:
                keys.update(hot._cache)
        for shard in self._shards:
            keys.update(shard.keys())
        return len(keys)

    # -- bulk transfer (process-executor merge path) ---------------------

    def export(self) -> list[tuple[tuple, object, tuple[int, ...]]]:
        entries = []
        for hot in self._hot:
            entries.extend(hot.export())
        return entries

    def merge(
        self, entries: Iterable[tuple[tuple, object, tuple[int, ...]]]
    ) -> int:
        count = 0
        for key, value, fps in entries:
            self.put(key, value, fps)
            count += 1
        with self._lock:
            self.merged += count
        return count

    # -- durability ------------------------------------------------------

    def flush(self) -> int:
        """Write every buffered operation in every shard; returns the
        number of operations written."""
        return sum(shard.flush() for shard in self._shards)

    def compact(self) -> int:
        """Flush, then rewrite each shard down to one live snapshot
        segment; returns the total live record count."""
        return sum(shard.compact() for shard in self._shards)

    def close(self) -> None:
        """Flush and release every shard's file handles (the store can
        still be used afterwards; appends reopen their tails)."""
        for shard in self._shards:
            shard.close()
        self._closed = True

    def __enter__(self) -> "PersistentVerdictStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ---------------------------------------------------

    @property
    def hits(self) -> int:
        """Served-from-store lookups, either tier (the serve tests and
        stats read this like the in-memory store's counter)."""
        return sum(hot.hits for hot in self._hot) + self.disk_hits

    @property
    def misses(self) -> int:
        """Lookups neither tier could answer."""
        return sum(hot.misses for hot in self._hot) - self.disk_hits

    @property
    def evictions(self) -> int:
        return sum(hot.evictions for hot in self._hot)

    @property
    def invalidations(self) -> int:
        return sum(hot.invalidations for hot in self._hot)

    def stats_dict(self) -> dict:
        """The in-memory store's stats keys (aggregated over the hot
        tiers, with ``hits`` including read-throughs) plus a
        ``persistent`` sub-dict describing the disk tier."""
        hot_hits = sum(hot.hits for hot in self._hot)
        misses = self.misses
        lookups = hot_hits + self.disk_hits + misses
        shard_stats = [shard.stats_dict() for shard in self._shards]
        return {
            "entries": sum(len(hot) for hot in self._hot),
            "capacity": self.capacity,
            "hits": hot_hits + self.disk_hits,
            "misses": misses,
            "hit_rate": (
                (hot_hits + self.disk_hits) / lookups if lookups else 0.0
            ),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "merged": self.merged,
            "pinned": sum(len(hot._pinned_fps) for hot in self._hot),
            "persistent": {
                "root": str(self.root),
                "shards": self.n_shards,
                "hot_hits": hot_hits,
                "disk_hits": self.disk_hits,
                "records": sum(s["records"] for s in shard_stats),
                "dead_records": sum(s["dead_records"] for s in shard_stats),
                "pending": sum(s["pending"] for s in shard_stats),
                "segments": sum(s["segments"] for s in shard_stats),
                "skipped_segments": sum(
                    s["skipped_segments"] for s in shard_stats
                ),
                "disk_bytes": sum(s["bytes"] for s in shard_stats),
                "appends": sum(s["appends"] for s in shard_stats),
                "flushes": sum(s["flushes"] for s in shard_stats),
                "tombstones": sum(s["tombstones"] for s in shard_stats),
                "compactions": sum(s["compactions"] for s in shard_stats),
                "torn_tails": sum(s["torn_tails"] for s in shard_stats),
            },
        }

    def shard_stats(self) -> list[dict]:
        """Per-shard disk stats (the ``repro store stats`` payload)."""
        return [shard.stats_dict() for shard in self._shards]
