"""Shared fixtures and hypothesis strategies for the test suite.

The strategies generate small instances on purpose: the exact integer
search and the definitional (exponential) oracles are part of most
cross-checks, so instance sizes are kept where the oracles are instant.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core import Bag, Relation, Schema
from repro.hypergraphs import Hypergraph

ATTR_POOL = ("A", "B", "C", "D", "E")


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20210621)


@pytest.fixture(autouse=True, scope="session")
def no_shm_segments_leaked():
    """Every shared-memory spill segment must be unlinked by the batch
    that created it — a leak here means /dev/shm fills up across runs."""
    yield
    from repro.engine import executors

    assert executors.active_shm_segments() == ()


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

def schemas(
    min_size: int = 0, max_size: int = 4, pool: tuple = ATTR_POOL
) -> st.SearchStrategy[Schema]:
    return st.sets(
        st.sampled_from(pool), min_size=min_size, max_size=max_size
    ).map(Schema)


@st.composite
def bags_over(
    draw,
    schema: Schema,
    domain: tuple = (0, 1, 2),
    max_tuples: int = 4,
    max_multiplicity: int = 4,
) -> Bag:
    rows = draw(
        st.lists(
            st.tuples(
                st.tuples(
                    *[st.sampled_from(domain) for _ in schema.attrs]
                ),
                st.integers(1, max_multiplicity),
            ),
            max_size=max_tuples,
        )
    )
    return Bag.from_pairs(schema, rows)


@st.composite
def bags(draw, min_attrs: int = 0, max_attrs: int = 3) -> Bag:
    schema = draw(schemas(min_attrs, max_attrs))
    return draw(bags_over(schema))


@st.composite
def relations_over(
    draw, schema: Schema, domain: tuple = (0, 1, 2), max_tuples: int = 5
) -> Relation:
    rows = draw(
        st.lists(
            st.tuples(*[st.sampled_from(domain) for _ in schema.attrs]),
            max_size=max_tuples,
        )
    )
    return Relation.from_pairs(schema, rows)


@st.composite
def schema_pairs(draw) -> tuple[Schema, Schema]:
    """Two schemas with a guaranteed-nonempty union."""
    left = draw(schemas(1, 3))
    right = draw(schemas(1, 3))
    return left, right


@st.composite
def consistent_bag_pairs(draw) -> tuple[Bag, Bag, Bag]:
    """(plant, R, S): marginals of a common witness — consistent by
    construction."""
    left, right = draw(schema_pairs())
    union = left | right
    plant = draw(bags_over(union, max_tuples=5))
    return plant, plant.marginal(left), plant.marginal(right)


@st.composite
def planted_collections(
    draw, min_bags: int = 2, max_bags: int = 4
) -> tuple[Bag, list[Bag]]:
    """A hidden witness and its marginals over a few random schemas."""
    n = draw(st.integers(min_bags, max_bags))
    schema_list = [draw(schemas(1, 3)) for _ in range(n)]
    union = Schema([])
    for schema in schema_list:
        union = union | schema
    plant = draw(bags_over(union, max_tuples=5))
    return plant, [plant.marginal(s) for s in schema_list]


@st.composite
def hypergraphs(
    draw,
    min_edges: int = 1,
    max_edges: int = 5,
    max_arity: int = 3,
    pool: tuple = ATTR_POOL,
) -> Hypergraph:
    n = draw(st.integers(min_edges, max_edges))
    edges = [
        draw(st.sets(st.sampled_from(pool), min_size=1, max_size=max_arity))
        for _ in range(n)
    ]
    return Hypergraph(None, edges)
