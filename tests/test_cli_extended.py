"""CLI tests for the certificate / repair / analyze subcommands."""


from repro.cli import main
from repro.consistency.local_global import tseitin_collection
from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.hypergraphs.families import triangle_hypergraph
from repro.io import bag_to_json, collection_from_json, collection_to_json
from repro.workloads.generators import planted_collection

AB = Schema(["A", "B"])
BC = Schema(["B", "C"])
CD = Schema(["C", "D"])


class TestCertificateCommand:
    def test_consistent_collection_exit_zero(self, tmp_path, rng, capsys):
        _, bags = planted_collection([AB, BC], rng, n_tuples=3)
        path = tmp_path / "coll.json"
        path.write_text(collection_to_json(bags))
        assert main(["certificate", str(path)]) == 0
        assert "no inconsistency certificate" in capsys.readouterr().out

    def test_pairwise_failure_names_cell(self, tmp_path, capsys):
        r = Bag.from_pairs(AB, [((1, 2), 3)])
        s = Bag.from_pairs(BC, [((2, 9), 1)])
        path = tmp_path / "coll.json"
        path.write_text(collection_to_json([r, s]))
        assert main(["certificate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "disagree on common cell" in out

    def test_tseitin_gets_farkas(self, tmp_path, capsys):
        bags = tseitin_collection(list(triangle_hypergraph().edges))
        path = tmp_path / "coll.json"
        path.write_text(collection_to_json(bags))
        assert main(["certificate", str(path), "--verbose"]) == 1
        out = capsys.readouterr().out
        assert "Farkas certificate" in out
        assert "y[bag" in out


class TestRepairCommand:
    def test_repair_writes_consistent_collection(self, tmp_path, rng, capsys):
        from repro.consistency.global_ import pairwise_consistent
        from repro.workloads.generators import perturb_bag

        _, bags = planted_collection([AB, BC, CD], rng, n_tuples=3)
        broken = [bags[0], perturb_bag(bags[1], rng), bags[2]]
        src = tmp_path / "broken.json"
        dst = tmp_path / "fixed.json"
        src.write_text(collection_to_json(broken))
        assert main(["repair", str(src), "-o", str(dst)]) == 0
        out = capsys.readouterr().out
        assert "repair cost:" in out
        fixed = collection_from_json(dst.read_text())
        assert pairwise_consistent(fixed)

    def test_cyclic_schema_exit_two(self, tmp_path, rng):
        _, bags = planted_collection(
            [AB, BC, Schema(["A", "C"])], rng, n_tuples=3
        )
        src = tmp_path / "coll.json"
        src.write_text(collection_to_json(bags))
        assert main(["repair", str(src)]) == 2


class TestAnalyzeCommand:
    def test_report_printed(self, tmp_path, capsys):
        from repro.workloads.generators import witness_family_pair

        r, s = witness_family_pair(3)
        rp = tmp_path / "r.json"
        sp = tmp_path / "s.json"
        rp.write_text(bag_to_json(r))
        sp.write_text(bag_to_json(s))
        assert main(["analyze", str(rp), str(sp)]) == 0
        out = capsys.readouterr().out
        assert "ambiguity index" in out

    def test_inconsistent_pair_exit_two(self, tmp_path):
        r = Bag.from_pairs(AB, [((1, 2), 3)])
        s = Bag.from_pairs(BC, [((2, 9), 1)])
        rp = tmp_path / "r.json"
        sp = tmp_path / "s.json"
        rp.write_text(bag_to_json(r))
        sp.write_text(bag_to_json(s))
        assert main(["analyze", str(rp), str(sp)]) == 2
