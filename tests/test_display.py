"""Unit tests for the tabular rendering helpers."""

from repro.core.bags import Bag
from repro.core.relations import Relation
from repro.core.schema import Schema
from repro.display import bag_table, collection_summary, relation_table

AB = Schema(["A", "B"])


def test_bag_table_matches_paper_layout():
    bag = Bag.from_pairs(
        AB, [(("a1", "b1"), 2), (("a2", "b2"), 1), (("a3", "b3"), 5)]
    )
    text = bag_table(bag)
    lines = text.splitlines()
    assert lines[0].split() == ["A", "B", "#"]
    assert ": 2" in text and ": 1" in text and ": 5" in text
    assert len(lines) == 4


def test_bag_table_empty():
    assert "(empty)" in bag_table(Bag.empty(AB))


def test_bag_table_empty_schema():
    bag = Bag.empty_schema_bag(3)
    text = bag_table(bag)
    assert ": 3" in text


def test_relation_table():
    rel = Relation.from_pairs(AB, [(1, 2), (3, 4)])
    text = relation_table(rel)
    lines = text.splitlines()
    assert lines[0].split() == ["A", "B"]
    assert len(lines) == 3


def test_relation_table_empty():
    assert "(empty)" in relation_table(Relation.empty(AB))


def test_collection_summary_lists_measures():
    bags = [
        Bag.from_pairs(AB, [((1, 2), 3)]),
        Bag.from_pairs(Schema(["B", "C"]), [((2, 1), 1), ((2, 2), 1)]),
    ]
    text = collection_summary(bags)
    lines = text.splitlines()
    assert len(lines) == 2
    assert "supp=1" in lines[0] and "mu=3" in lines[0]
    assert "supp=2" in lines[1]
