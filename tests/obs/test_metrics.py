"""The metrics registry: counters, gauges, log-bucket histograms,
and both exposition formats.

The histogram contract under test is the one the serving layer relies
on: a reported percentile is within one bucket ratio of the exact
sorted-oracle answer (and never below it), ``min``/``max``/``sum`` are
exact, and concurrent recording loses nothing.
"""

from __future__ import annotations

import math
import random
import re
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentiles,
    render_json,
    render_prometheus,
)
from repro.obs.metrics import BUCKET_BOUNDS, BUCKET_RATIO, flat_name

QS = (0.50, 0.95, 0.99)


def oracle(values: list, q: float) -> float:
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered) - 1e-9))
    return ordered[rank - 1]


class TestHistogramOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_percentiles_within_one_bucket_of_sorted_oracle(self, seed):
        rng = random.Random(seed)
        hist = Histogram("t")
        # log-uniform over the full in-range span of the bucket table
        values = [
            10.0 ** rng.uniform(-5.9, 1.9) for _ in range(rng.randrange(1, 500))
        ]
        for value in values:
            hist.record(value)
        for q in QS:
            exact = oracle(values, q)
            reported = hist.percentile(q)
            assert exact <= reported + 1e-12, (q, exact, reported)
            assert reported <= exact * BUCKET_RATIO * (1 + 1e-9), (
                q, exact, reported,
            )

    def test_summary_exact_fields(self):
        hist = Histogram("t")
        values = [0.002, 0.004, 0.008, 0.5]
        for value in values:
            hist.record(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(sum(values))
        assert summary["min"] == min(values)
        assert summary["max"] == max(values)

    def test_tiny_values_land_in_first_bucket(self):
        hist = Histogram("t")
        hist.record(0.0)
        hist.record(1e-9)
        assert hist.count == 2
        assert hist.percentile(0.99) <= BUCKET_BOUNDS[0]

    def test_overflow_bucket_reports_exact_max(self):
        hist = Histogram("t")
        hist.record(250.0)
        hist.record(9000.5)
        assert hist.percentile(0.99) == 9000.5
        assert hist.summary()["max"] == 9000.5

    def test_percentile_never_exceeds_observed_max(self):
        hist = Histogram("t")
        hist.record(0.0015)
        assert hist.percentile(0.99) == 0.0015

    def test_empty_histogram(self):
        hist = Histogram("t")
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0
        assert hist.buckets() == []

    def test_reset(self):
        hist = Histogram("t")
        hist.record(0.5)
        hist.reset()
        assert hist.count == 0
        assert hist.summary()["max"] == 0.0


class TestHistogramConcurrency:
    def test_threaded_hammer_loses_nothing(self):
        """8 threads x 500 records: exact count and sum, and every
        percentile still bracketed by the oracle bound (runs under
        REPRO_SANITIZE=1 in the sanitize CI job)."""
        hist = Histogram("hammer")
        counter = Counter("hammer_total")
        n_threads, per_thread = 8, 500
        all_values: list = []
        lock = threading.Lock()

        def work(seed: int) -> None:
            rng = random.Random(seed)
            mine = [10.0 ** rng.uniform(-5.5, 1.5) for _ in range(per_thread)]
            for value in mine:
                hist.record(value)
                counter.inc()
            with lock:
                all_values.extend(mine)

        threads = [
            threading.Thread(target=work, args=(seed,))
            for seed in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert hist.count == n_threads * per_thread
        assert counter.value == n_threads * per_thread
        summary = hist.summary()
        assert summary["sum"] == pytest.approx(sum(all_values))
        assert summary["min"] == min(all_values)
        assert summary["max"] == max(all_values)
        for q in QS:
            exact = oracle(all_values, q)
            assert exact <= hist.percentile(q) <= exact * BUCKET_RATIO * (
                1 + 1e-9
            )


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x")
        b = registry.counter("x")
        assert a is b

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        a = registry.histogram("lat", {"op": "batch"})
        b = registry.histogram("lat", {"op": "ping"})
        assert a is not b
        a.record(0.1)
        assert b.count == 0

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_gauge_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        gauge.add(-1.5)
        assert gauge.value == 2.5

    def test_snapshot_shape_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", {"op": "x"}).record(0.2)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        entry = snap["histograms"]["h{op=x}"]
        assert entry["count"] == 1
        assert entry["buckets"][-1][1] == 1  # cumulative reaches count
        registry.reset()
        assert registry.snapshot()["counters"] == {"c": 0}

    def test_flat_name(self):
        assert flat_name("n", None) == "n"
        assert flat_name("n", {"b": 1, "a": 2}) == "n{a=2,b=1}"


class TestPercentilesHelper:
    def test_matches_oracle(self):
        rng = random.Random(11)
        values = [rng.random() for _ in range(137)]
        out = percentiles(values, qs=QS)
        assert out["count"] == 137
        for q in QS:
            assert out[f"p{int(q * 100)}"] == oracle(values, q)

    def test_empty(self):
        assert percentiles([]) == {"count": 0, "p50": 0.0, "p99": 0.0}


PROM_LINE = re.compile(
    r"^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)"
    r'|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]\w*="[^"]*"'
    r'(,[a-zA-Z_]\w*="[^"]*")*\})? -?[0-9.+eE-]+(\+Inf)?)$'
)


class TestExposition:
    def build_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("repro_c", {"kind": "a"}).inc(2)
        registry.gauge("repro_g").set(0.25)
        hist = registry.histogram("repro_lat", {"op": "batch"})
        for value in (0.001, 0.004, 0.004, 2.0):
            hist.record(value)
        return registry.snapshot()

    def test_prometheus_is_well_formed(self):
        text = render_prometheus(self.build_snapshot())
        assert text.endswith("\n")
        lines = text.splitlines()
        for line in lines:
            assert PROM_LINE.match(line) or '+Inf"' in line, line
        # histogram series: cumulative buckets, +Inf == _count
        buckets = [
            line for line in lines if line.startswith("repro_lat_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert buckets[-1].startswith('repro_lat_bucket{op="batch",le="+Inf"}')
        assert counts[-1] == 4
        assert 'repro_lat_count{op="batch"} 4' in lines

    def test_json_is_one_line_and_round_trips(self):
        import json

        text = render_json(self.build_snapshot(), traces=[{"id": "t"}])
        assert "\n" not in text
        payload = json.loads(text)
        assert payload["counters"] == {"repro_c{kind=a}": 2}
        assert payload["traces"] == [{"id": "t"}]
