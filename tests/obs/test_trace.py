"""Request tracing: span recording, the bounded ring, the span cap,
and propagation across the thread pool and (unit-level) the process
boundary.  The full serve → engine → worker → store chain is exercised
in ``test_serve_metrics.py``.
"""

from __future__ import annotations

import logging
import random
import threading
import time

import pytest

from repro.engine.session import Engine
from repro.obs import trace as obs_trace
from repro.obs.trace import (
    MAX_SPANS,
    Trace,
    TraceBuffer,
    activate,
    current,
    finish_trace,
    span,
    start_trace,
    worker_trace,
)


@pytest.fixture(autouse=True)
def tracing_on():
    """Every test in this file assumes the default-enabled state and
    must not leak a disabled switch into the rest of the suite."""
    obs_trace.set_enabled(True)
    yield
    obs_trace.set_enabled(True)


class TestTrace:
    def test_add_span_rebases_onto_origin(self):
        trace = Trace("t")
        trace.add_span("a", trace.origin + 0.001, 0.0025)
        (entry,) = trace.spans
        assert entry == {"name": "a", "start_ms": 1.0, "ms": 2.5}

    def test_extra_fields_ride_along(self):
        trace = Trace("t")
        trace.add_span("store.read", trace.origin, 0.001, bytes=42)
        assert trace.spans[0]["bytes"] == 42

    def test_span_cap_counts_drops(self):
        trace = Trace("t")
        for index in range(MAX_SPANS + 7):
            trace.add_span(f"s{index}", trace.origin, 0.0)
        assert len(trace.spans) == MAX_SPANS
        assert trace.dropped == 7
        assert trace.to_dict()["dropped_spans"] == 7

    def test_merge_remote_tags_and_respects_cap(self):
        trace = Trace("t")
        remote = [{"name": "worker.chunk", "start_ms": 0.0, "ms": 1.0}]
        trace.merge_remote(remote, worker=3)
        (entry,) = trace.spans
        assert entry["remote"] is True
        assert entry["worker"] == 3
        assert remote[0].get("remote") is None  # input not mutated

        for _ in range(MAX_SPANS - 2):
            trace.add_span("pad", trace.origin, 0.0)
        trace.merge_remote([dict(remote[0])] * 3)  # room for one of three
        assert len(trace.spans) == MAX_SPANS
        assert trace.dropped == 2

    def test_export_spans_is_a_deep_copy(self):
        trace = Trace("t")
        trace.add_span("a", trace.origin, 0.0)
        exported = trace.export_spans()
        exported[0]["name"] = "mutated"
        assert trace.spans[0]["name"] == "a"

    def test_concurrent_add_span_loses_nothing(self):
        trace = Trace("t")
        per_thread = MAX_SPANS // 4

        def work():
            for _ in range(per_thread):
                trace.add_span("s", trace.origin, 0.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(trace.spans) == 4 * per_thread
        assert trace.dropped == 0


class TestTraceBuffer:
    def test_ring_keeps_newest_oldest_first(self):
        ring = TraceBuffer(3)
        for index in range(5):
            ring.append({"id": index})
        assert [entry["id"] for entry in ring.snapshot()] == [2, 3, 4]
        assert len(ring) == 3
        ring.clear()
        assert ring.snapshot() == []


class TestContextManagers:
    def test_start_trace_publishes_and_buffers(self):
        obs_trace.RECENT.clear()
        with start_trace("serve.test") as trace:
            assert current() is trace
            with span("inner", n=2):
                pass
        assert current() is None
        (entry,) = obs_trace.RECENT.snapshot()
        assert entry["op"] == "serve.test"
        assert entry["total_ms"] >= 0.0
        assert entry["spans"][0]["name"] == "inner"
        assert entry["spans"][0]["n"] == 2

    def test_disabled_yields_none_everywhere(self):
        obs_trace.set_enabled(False)
        obs_trace.RECENT.clear()
        with start_trace("serve.test") as trace:
            assert trace is None
            assert current() is None
            with span("inner") as inner:
                assert inner is None
        assert len(obs_trace.RECENT) == 0

    def test_activate_reentrant_and_none_safe(self):
        trace = Trace("t")
        with activate(trace):
            assert current() is trace
            with activate(None):
                # None means "caller wasn't tracing": a no-op, not a
                # reset — the outer trace stays current
                assert current() is trace
        assert current() is None

    def test_worker_trace_carries_parent_id(self):
        with worker_trace("abc123") as trace:
            assert trace.trace_id == "abc123"
            assert trace.op == "worker"
            assert current() is trace
        with worker_trace(None) as trace:
            assert trace is None

    def test_slow_request_log(self, caplog):
        trace = Trace("serve.batch")
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            finish_trace(trace, duration=0.010, slow_ms=5.0)
            finish_trace(trace, duration=0.001, slow_ms=5.0)
            finish_trace(trace, duration=0.010, slow_ms=None)
            finish_trace(trace, duration=0.010, slow_ms=0.0)  # 0 = off
        slow = [r for r in caplog.records if "slow request" in r.message]
        assert len(slow) == 1
        assert trace.trace_id in slow[0].getMessage()
        assert "total_ms=10.000" in slow[0].getMessage()


class TestThreadPropagation:
    def test_activate_across_worker_threads(self):
        """The ThreadExecutor shim: the trace object crosses threads and
        lock-protected appends interleave safely."""
        trace = Trace("t")

        def work(name: str) -> None:
            with activate(trace):
                start = time.perf_counter()
                current().add_span(name, start, 0.0)

        threads = [
            threading.Thread(target=work, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(s["name"] for s in trace.spans) == [
            "w0", "w1", "w2", "w3",
        ]
        assert current() is None  # nothing leaked into this thread

    def test_thread_backend_spans_land_on_the_request_trace(self):
        """End-to-end through the engine's thread pool: compute spans
        recorded inside pool workers attach to the submitting request's
        trace."""
        from repro.workloads.generators import planted_pair
        from repro.core.schema import Schema

        ab, bc = Schema(["A", "B"]), Schema(["B", "C"])
        pairs = [
            planted_pair(ab, bc, random.Random(seed), n_tuples=6)[1:]
            for seed in range(6)
        ]
        engine = Engine()
        with start_trace("serve.batch") as trace:
            verdicts = engine.are_consistent_many(
                pairs, parallelism=2, backend="thread"
            )
        assert verdicts == [True] * len(pairs)
        names = {s["name"] for s in trace.spans}
        assert any(name.startswith("engine.") for name in names), names
