"""The serve-layer telemetry surfaces: the ``metrics`` op (JSON +
Prometheus), the additive ``latency``/``trace`` stats blocks, the
legacy-stats-keys regression pin, and the acceptance-criterion trace
that crosses connection → engine → process worker → store.
"""

from __future__ import annotations

import pytest

from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.io import bag_to_dict
from repro.obs import trace as obs_trace
from repro.server import ReproServer, ServeClient

AB = Schema(["A", "B"])
BC = Schema(["B", "C"])


def pair_payload(n_pairs: int = 1, seed: int = 0) -> dict:
    pairs = []
    for index in range(n_pairs):
        shift = seed * 100 + index
        r = Bag.from_pairs(AB, [((1 + shift, 2), 2), ((2 + shift, 2), 1)])
        s = Bag.from_pairs(BC, [((2, 5 + shift), 3)])
        pairs.append([bag_to_dict(r), bag_to_dict(s)])
    return {"op": "batch", "pairs": pairs}


@pytest.fixture(autouse=True)
def tracing_on():
    obs_trace.set_enabled(True)
    yield
    obs_trace.set_enabled(True)


class TestMetricsOp:
    def test_metrics_op_shape(self):
        server = ReproServer()
        assert server.handle_payload(pair_payload())["ok"]
        assert server.handle_payload({"op": "ping"})["ok"]

        response = server.handle_payload({"op": "metrics"})
        assert response["ok"] and response["op"] == "metrics"
        snapshot = response["json"]
        assert set(snapshot) >= {"counters", "gauges", "histograms"}

        # per-op latency histograms with percentiles
        batch = snapshot["histograms"]["repro_request_seconds{op=batch}"]
        assert batch["count"] == 1
        assert 0.0 < batch["p50"] <= batch["p99"]
        ping = snapshot["histograms"]["repro_request_seconds{op=ping}"]
        assert ping["count"] == 1

        # daemon totals bridged as gauges (metrics op itself included
        # in the request count by the time stats() is read)
        assert snapshot["gauges"]["repro_server_requests"] == 3
        assert snapshot["gauges"]["repro_server_batches"] == 1
        assert "repro_engine_consistency_queries" in snapshot["gauges"]
        assert any(
            key.startswith("repro_store_") for key in snapshot["gauges"]
        )

        # well-formed Prometheus text with the histogram series
        prometheus = response["prometheus"]
        assert "# TYPE repro_request_seconds histogram" in prometheus
        assert 'repro_request_seconds_bucket{op="batch",le="+Inf"} 1' in (
            prometheus
        )
        assert 'repro_request_seconds_count{op="batch"} 1' in prometheus
        assert "repro_server_requests 3" in prometheus

        # recent traces ride along for `repro obs --traces`
        assert any(
            entry["op"] == "serve.batch" for entry in response["traces"]
        )

    def test_metrics_op_over_the_socket(self):
        """The CI smoke path: scrape a live daemon over TCP."""
        server = ReproServer()
        address = server.bind_tcp()
        server.serve_in_background()
        try:
            with ServeClient(address, wire_format="json") as client:
                assert client.request(pair_payload())["ok"]
                response = client.request({"op": "metrics"})
        finally:
            server.shutdown()
        assert response["ok"]
        assert response["json"]["gauges"]["repro_server_requests"] >= 2
        assert response["prometheus"].endswith("\n")
        assert "repro_request_seconds_bucket" in response["prometheus"]


class TestStatsSurface:
    LEGACY_KEYS = {
        "stats", "store", "kernels", "wire_format", "requests", "batches",
        "request_errors", "connections", "active_connections",
        "max_inflight", "inflight_batches", "peak_inflight",
        "admission_refusals", "uptime_seconds",
    }

    def test_latency_and_trace_blocks(self):
        server = ReproServer(slow_ms=250.0)
        assert server.handle_payload(pair_payload())["ok"]
        stats = server.handle_payload({"op": "stats"})
        assert set(stats["latency"]) == {"batch"}  # only ops that fired
        summary = stats["latency"]["batch"]
        assert summary["count"] == 1
        assert set(summary) == {
            "count", "sum", "min", "max", "p50", "p95", "p99",
        }
        # "recent" is read while the stats request's own trace is still
        # open, so pin the shape, not the exact ring occupancy
        assert stats["trace"]["enabled"] is True
        assert stats["trace"]["slow_ms"] == 250.0
        assert stats["trace"]["recent"] >= 1

    def test_legacy_stats_keys_unchanged(self):
        """The regression pin: telemetry is additive — every
        pre-telemetry stats key survives with its old type, and the only
        new top-level keys are ``latency`` and ``trace``."""
        server = ReproServer()
        assert server.handle_payload(pair_payload())["ok"]
        stats = server.stats()
        assert set(stats) == self.LEGACY_KEYS | {"latency", "trace"}
        for key in ("stats", "store", "kernels"):
            assert isinstance(stats[key], dict)
        assert stats["wire_format"] == "columnar"
        assert stats["requests"] == 1
        assert stats["batches"] == 1
        assert stats["request_errors"] == 0
        for key in (
            "connections", "active_connections", "max_inflight",
            "inflight_batches", "peak_inflight", "admission_refusals",
        ):
            assert isinstance(stats[key], int)
        assert stats["uptime_seconds"] >= 0.0


class TestCrossLayerTrace:
    def test_spans_cross_connection_engine_worker_and_store(self, tmp_path):
        """The acceptance criterion: one traced request over a real
        socket shows spans from the serve connection, the jobs/engine
        layer, a process-executor worker (merged back remote), and the
        persistent store."""
        obs_trace.RECENT.clear()
        store_dir = str(tmp_path / "store")
        server = ReproServer(
            store_dir=store_dir, backend="process", parallelism=2
        )
        address = server.bind_tcp()
        server.serve_in_background()
        try:
            with ServeClient(address) as client:
                assert client.request(pair_payload(n_pairs=4, seed=1))["ok"]
        finally:
            server.shutdown()

        batches = [
            entry for entry in obs_trace.RECENT.snapshot()
            if entry["op"] == "serve.batch"
        ]
        assert batches, obs_trace.RECENT.snapshot()
        entry = batches[-1]
        names = [span["name"] for span in entry["spans"]]
        assert any(name.startswith("jobs.") for name in names), names
        assert any(
            name.startswith("executor.") for name in names
        ), names
        workers = [
            span for span in entry["spans"] if span["name"] == "worker.chunk"
        ]
        assert workers and all(span["remote"] for span in workers), names
        assert any(name.startswith("store.") for name in names), names
        assert entry["total_ms"] > 0.0

    def test_disk_read_through_span_on_warm_restart(self, tmp_path):
        """Reopening the store: a fresh daemon answering the same batch
        from disk records the store.read span."""
        store_dir = str(tmp_path / "store")
        payload = pair_payload(n_pairs=2, seed=2)
        first = ReproServer(store_dir=store_dir)
        assert first.handle_payload(payload)["ok"]
        first.shutdown()

        obs_trace.RECENT.clear()
        second = ReproServer(store_dir=store_dir)
        try:
            assert second.handle_payload(payload)["ok"]
        finally:
            second.shutdown()
        (entry,) = [
            e for e in obs_trace.RECENT.snapshot()
            if e["op"] == "serve.batch"
        ]
        reads = [
            span for span in entry["spans"] if span["name"] == "store.read"
        ]
        assert reads, entry["spans"]
        assert all(span["bytes"] > 0 for span in reads)
