"""Torture tests: hostile inputs across the whole stack.

Unicode attributes, tuple-valued domain elements, None values, mixed
types, huge multiplicities, empty schemas, single-attribute overlap —
every decision procedure should handle them or fail loudly with a
library exception, never crash with a bare TypeError/KeyError.
"""


from repro.consistency.global_ import decide_global_consistency
from repro.consistency.pairwise import are_consistent, consistency_witness
from repro.consistency.witness import is_witness, minimal_pairwise_witness
from repro.core.bags import Bag
from repro.core.relations import Relation
from repro.core.schema import Schema
from repro.core.tuples import Tup


class TestExoticAttributeNames:
    def test_unicode_attributes(self):
        schema = Schema(["α", "β"])
        r = Bag.from_pairs(schema, [(("x", "y"), 2)])
        assert r.marginal(Schema(["α"])).multiplicity(("x",)) == 2

    def test_tuple_attributes(self):
        schema = Schema([("rel", 1), ("rel", 2)])
        r = Bag.from_pairs(schema, [((5, 6), 1)])
        assert r.multiplicity((5, 6)) == 1

    def test_mixed_type_attributes_have_stable_order(self):
        s1 = Schema([1, "A", ("t", 0)])
        s2 = Schema([("t", 0), 1, "A"])
        assert s1.attrs == s2.attrs


class TestExoticValues:
    def test_none_values(self):
        schema = Schema(["A", "B"])
        r = Bag.from_pairs(schema, [((None, 1), 2), ((None, None), 1)])
        assert r.marginal(Schema(["A"])).multiplicity((None,)) == 3

    def test_tuple_values_join_correctly(self):
        ab = Schema(["A", "B"])
        bc = Schema(["B", "C"])
        key = ("composite", 7)
        r = Bag.from_pairs(ab, [((1, key), 2)])
        s = Bag.from_pairs(bc, [((key, 9), 2)])
        assert are_consistent(r, s)
        w = consistency_witness(r, s)
        assert is_witness([r, s], w)

    def test_string_int_value_mix(self):
        schema = Schema(["A"])
        r = Bag.from_pairs(schema, [((1,), 1), (("1",), 1)])
        assert r.support_size == 2  # 1 and "1" are distinct values

    def test_frozenset_values(self):
        schema = Schema(["A", "B"])
        r = Bag.from_pairs(schema, [((frozenset({1, 2}), 0), 3)])
        assert r.unary_size == 3


class TestScale:
    def test_astronomical_multiplicities(self):
        ab = Schema(["A", "B"])
        bc = Schema(["B", "C"])
        big = 10**100
        r = Bag.from_pairs(ab, [((1, 2), big), ((3, 2), big)])
        s = Bag.from_pairs(bc, [((2, 5), big), ((2, 6), big)])
        assert are_consistent(r, s)
        w = minimal_pairwise_witness(r, s)
        assert is_witness([r, s], w)
        assert w.unary_size == 2 * big

    def test_hundred_edge_path_witness(self, rng):
        from repro.consistency.global_ import acyclic_global_witness
        from repro.hypergraphs.families import path_hypergraph
        from repro.workloads.generators import random_collection_over

        bags = random_collection_over(path_hypergraph(60), rng, n_tuples=3)
        w = acyclic_global_witness(bags, minimal=False)
        assert is_witness(bags, w)

    def test_wide_schema(self):
        attrs = [f"A{i:02d}" for i in range(20)]
        schema = Schema(attrs)
        row = tuple(range(20))
        r = Bag.from_pairs(schema, [(row, 7)])
        half = Schema(attrs[:10])
        assert r.marginal(half).unary_size == 7


class TestDegenerateSchemas:
    def test_both_empty_schemas(self):
        a = Bag.empty_schema_bag(5)
        b = Bag.empty_schema_bag(5)
        assert are_consistent(a, b)
        w = consistency_witness(a, b)
        assert w == Bag.empty_schema_bag(5)

    def test_empty_schema_vs_nonempty(self):
        a = Bag.empty_schema_bag(3)
        b = Bag.from_pairs(Schema(["A"]), [((0,), 1), ((1,), 2)])
        assert are_consistent(a, b)  # totals match
        w = consistency_witness(a, b)
        assert is_witness([a, b], w)

    def test_single_shared_attribute_many_bags(self):
        bags = [
            Bag.from_mappings([({"X": 7, f"P{i}": i}, 4)])
            for i in range(5)
        ]
        # Star schema: acyclic; all marginals on X equal (7: 4).
        assert decide_global_consistency(bags)

    def test_identical_bags_collection(self):
        r = Bag.from_pairs(Schema(["A", "B"]), [((1, 2), 3)])
        assert decide_global_consistency([r, r, r])

    def test_relation_with_zero_arity_rows(self):
        rel = Relation.from_pairs(Schema([]), [()])
        assert len(rel) == 1
        assert rel.project(Schema([])) == rel

    def test_tup_exotic_equality(self):
        assert Tup(Schema(["A"]), (1,)) != (1,)
        assert Tup(Schema(["A"]), (1,)) != Tup(Schema(["B"]), (1,))
