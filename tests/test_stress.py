"""Stress tests: larger instances, still seconds not minutes.

These guard the implementations' practical complexity (quadratic-ish
blowups in supposedly near-linear code paths show up here first).
"""

import random


from repro.consistency.global_ import acyclic_global_witness
from repro.consistency.pairwise import are_consistent, consistency_witness
from repro.consistency.witness import is_witness
from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.flows.maxflow import max_flow, verify_flow
from repro.flows.network import FlowNetwork
from repro.hypergraphs.acyclicity import (
    is_acyclic,
    join_tree,
    running_intersection_order,
    verify_join_tree,
    verify_running_intersection,
)
from repro.hypergraphs.chordality import is_chordal_graph
from repro.hypergraphs.families import (
    cycle_hypergraph,
    path_hypergraph,
    random_acyclic_hypergraph,
)
from repro.hypergraphs.graphs import Graph
from repro.hypergraphs.obstructions import find_obstruction


class TestFlowScale:
    def test_thousand_node_layered_network(self):
        rng = random.Random(5)
        layers = 10
        width = 100
        net = FlowNetwork("s", "t")
        for i in range(width):
            net.add_edge("s", (0, i), rng.randint(1, 10))
            net.add_edge((layers - 1, i), "t", rng.randint(1, 10))
        for layer in range(layers - 1):
            for i in range(width):
                for _ in range(3):
                    j = rng.randrange(width)
                    net.add_edge(
                        (layer, i), (layer + 1, j), rng.randint(1, 10)
                    )
        result = max_flow(net)
        assert verify_flow(net, result)
        assert result.value > 0

    def test_large_bipartite_consistency(self):
        rng = random.Random(6)
        ab = Schema(["A", "B"])
        bc = Schema(["B", "C"])
        union = Schema(["A", "B", "C"])
        rows = {}
        for _ in range(400):
            rows[(rng.randrange(20), rng.randrange(20), rng.randrange(20))] = (
                rng.randint(1, 100)
            )
        plant = Bag(union, rows)
        r, s = plant.marginal(ab), plant.marginal(bc)
        assert are_consistent(r, s)
        w = consistency_witness(r, s)
        assert is_witness([r, s], w)


class TestHypergraphScale:
    def test_200_edge_path_acyclicity(self):
        h = path_hypergraph(201)
        assert is_acyclic(h)
        tree = join_tree(h)
        assert verify_join_tree(tree)
        rip = running_intersection_order(h)
        assert verify_running_intersection(rip)

    def test_100_edge_random_acyclic(self):
        h = random_acyclic_hypergraph(100, 5, random.Random(7))
        assert is_acyclic(h)

    def test_obstruction_in_40_cycle(self):
        obstruction = find_obstruction(cycle_hypergraph(40))
        assert obstruction.kind == "cycle"
        assert len(obstruction.vertices) == 40

    def test_chordality_on_dense_graph(self):
        rng = random.Random(8)
        n = 120
        edges = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.2
        ]
        g = Graph(range(n), edges)
        # Just exercise it at scale; the answer is cross-checked against
        # networkx on small graphs elsewhere.
        is_chordal_graph(g)


class TestWitnessScale:
    def test_forty_relation_chain_global_witness(self, rng):
        from repro.workloads.generators import random_collection_over

        bags = random_collection_over(path_hypergraph(41), rng, n_tuples=4)
        w = acyclic_global_witness(bags, minimal=False)
        assert is_witness(bags, w)

    def test_wide_multiplicity_chain(self):
        """A 10-edge chain with 2^64 multiplicities end to end."""
        from repro.workloads.generators import example1_instance

        bags, _ = example1_instance(10)
        big = [bag.scale(2**64) for bag in bags]
        w = acyclic_global_witness(big)
        assert is_witness(big, w)
