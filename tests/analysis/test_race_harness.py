"""The seeded multi-thread stress harness.

Engines, live bags, and the persistent store are hammered from 4-8
threads with the sanitizer armed; every verdict is cross-checked
against the serial seed decider
(:func:`repro.consistency.pairwise.are_consistent`), so a lost update,
torn publication, or stale cache shows up as a wrong verdict — the
exact defect class of the PR 6 bugs — and any lock-contract violation
raises :class:`SanitizerError` inside the offending thread.

Ownership contracts are respected by construction: ``VerdictStore`` /
``PersistentVerdictStore`` are shared across threads (that is their
documented job), while each thread owns its ``Engine`` facade and
``LiveEngine`` privately (single-owner by contract) — the shared
surfaces under those are the interners, the fingerprint registry, and
the columnar encodings.
"""

import random
import threading

import pytest

from repro.analysis import sanitizer
from repro.consistency.pairwise import are_consistent as oracle_consistent
from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.engine import fingerprint
from repro.engine.live import LiveEngine
from repro.engine.session import Engine, VerdictStore
from repro.store.persistent import PersistentVerdictStore

N_THREADS = 6
SEED = 0xBA6C0DE


@pytest.fixture
def sanitize():
    was = sanitizer.enabled()
    sanitizer.enable()
    try:
        yield
    finally:
        if not was:
            sanitizer.disable()


def run_threads(worker, n=N_THREADS):
    """Run ``worker(thread_index)`` on n threads; re-raise the first
    failure (sanitizer trips included) in the main thread."""
    errors = []

    def wrapped(i):
        try:
            worker(i)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def make_pairs():
    """Deterministic (r, s, consistent?) pool; sizes past MIN_ROWS so
    the columnar encode/publish paths are exercised."""
    ab, bc = Schema(("A", "B")), Schema(("B", "C"))
    pairs = []
    rng = random.Random(SEED)
    for case in range(6):
        n = 40 + 4 * case
        left = {(i, i % 5): 1 + (i + case) % 3 for i in range(n)}
        r = Bag.from_pairs(ab, left.items())
        # a consistent partner: mirror the B-marginal exactly
        marg = {}
        for (_, b), m in left.items():
            marg[b] = marg.get(b, 0) + m
        right = {}
        for b, m in sorted(marg.items()):
            for j in range(2):
                half = m // 2 if j else m - m // 2
                if half:
                    right[(b, 1000 + 10 * b + j)] = half
        s = Bag.from_pairs(bc, right.items())
        if case % 2:
            # skew one multiplicity: inconsistent on purpose
            row = next(iter(right))
            right[row] += 1 + rng.randrange(3)
            s = Bag.from_pairs(bc, right.items())
        pairs.append((r, s))
    return [(r, s, oracle_consistent(r, s)) for r, s in pairs]


def test_engines_share_store_verdicts_match_oracle(sanitize):
    pairs = make_pairs()
    store = VerdictStore(capacity=64)

    def worker(tid):
        rng = random.Random(SEED + tid)
        engine = Engine(store=store)
        for step in range(40):
            r, s, expected = pairs[rng.randrange(len(pairs))]
            assert engine.are_consistent(r, s) is expected, (
                f"thread {tid} step {step}: wrong verdict"
            )
            roll = rng.random()
            if roll < 0.15:
                engine.pin(r)
                engine.unpin(r)
            elif roll < 0.25:
                engine.invalidate(s)
            elif roll < 0.35 and expected:
                w = engine.witness(r, s)
                assert w.marginal(r.schema) == r
                assert w.marginal(s.schema) == s

    run_threads(worker)
    # the shared store must still satisfy every verdict correctly
    serial = Engine(store=store)
    for r, s, expected in pairs:
        assert serial.are_consistent(r, s) is expected


def test_live_engines_under_shared_registries(sanitize):
    """Private live engines, shared interner/fingerprint/columnar
    machinery: every thread's stream must match its own serial replay."""
    ab, bc = Schema(("A", "B")), Schema(("B", "C"))

    def script(tid):
        rng = random.Random(SEED * 31 + tid)
        return [
            ((rng.randrange(50), rng.randrange(5)), rng.choice([1, 1, 2, -1]))
            for _ in range(60)
        ]

    def replay(tid, updates):
        live = LiveEngine()
        h1 = live.add_bag(
            Bag.from_pairs(ab, {(i, i % 5): 1 for i in range(40)}.items())
        )
        h2 = live.add_bag(
            Bag.from_pairs(bc, {(i % 5, i): 1 for i in range(40)}.items())
        )
        verdicts = []
        for step, (row, delta) in enumerate(updates):
            if h1.multiplicity(row) + delta >= 0:
                live.update(h1, row, delta)
            if step % 10 == 9:
                verdicts.append(
                    (live.are_consistent(h1, h2), h1.fingerprint(),
                     len(h1.bag()))
                )
        return verdicts

    serial = {tid: replay(tid, script(tid)) for tid in range(N_THREADS)}
    results = {}
    lock = threading.Lock()

    def worker(tid):
        out = replay(tid, script(tid))
        with lock:
            results[tid] = out

    run_threads(worker)
    assert results == serial


def test_persistent_store_hammer(sanitize, tmp_path):
    """put/get/pin/unpin/invalidate/flush from every thread against one
    sharded persistent store; values are deterministic functions of the
    key, so any cross-thread corruption is a visible wrong value."""
    store = PersistentVerdictStore(tmp_path / "store", shards=4,
                                   capacity=128)
    fps = [fingerprint.MASK & (0x9E3779B97F4A7C15 * (i + 1))
           for i in range(24)]

    def value_of(key):
        return ("v", key[1] % 7, key[2] % 5)

    def worker(tid):
        rng = random.Random(SEED ^ tid)
        for _ in range(150):
            a, b = rng.sample(range(len(fps)), 2)
            key = ("consistent", fps[a], fps[b])
            roll = rng.random()
            if roll < 0.45:
                store.put(key, value_of(key), (fps[a], fps[b]))
            elif roll < 0.80:
                value = store.get(key)
                assert value is store.MISS or value == value_of(key)
            elif roll < 0.86:
                store.pin_fp(fps[a])
                store.unpin_fp(fps[a])
            elif roll < 0.92:
                store.invalidate_fp(fps[a])
            elif roll < 0.97:
                store.flush()
            else:
                assert store.contains(key) in (True, False)

    run_threads(worker)
    store.flush()
    # everything still stored must read back exactly
    for entry_key, value, _fps in store.export():
        assert value == value_of(entry_key)
    store.close()

    # reopen: the durable tier must replay to the same values
    warm = PersistentVerdictStore(tmp_path / "store")
    for entry_key, value, _fps in warm.export():
        assert value == value_of(entry_key)
    warm.close()
