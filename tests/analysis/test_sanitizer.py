"""The REPRO_SANITIZE runtime half: guarded containers, lock
assertions, snapshot freezing, and the activation contract."""

import threading
from collections import OrderedDict

import pytest

from repro.analysis import sanitizer
from repro.analysis.registry import (
    NAMED_LOCKS,
    SHARED_CLASSES,
    register_lock,
    requires_lock,
    shared_state,
)
from repro.analysis.sanitizer import FrozenRows, SanitizerError

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less CI job
    np = None


@pytest.fixture
def sanitize():
    was = sanitizer.enabled()
    sanitizer.enable()
    try:
        yield
    finally:
        if not was:
            sanitizer.disable()


@pytest.fixture
def desanitize():
    """Force the sanitizer off (REPRO_SANITIZE=1 runs included)."""
    was = sanitizer.enabled()
    sanitizer.disable()
    try:
        yield
    finally:
        if was:
            sanitizer.enable()


@shared_state("_lock", "_cache", "_members", "_order", "count",
              tier="engine")
class _SanProbe:
    def __init__(self):
        self._lock = threading.RLock()
        self._cache = {}
        self._members = set()
        self._order = OrderedDict()
        self.count = 0

    @requires_lock("_lock")
    def helper(self):
        return self.count


class _NeverHeld:
    """A lock-alike that reports itself unheld (the mutation-style
    stand-in for 'someone deleted the with-statement')."""

    def locked(self):
        return False

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def test_registration_is_visible():
    assert "_SanProbe" in SHARED_CLASSES
    spec = SHARED_CLASSES["_SanProbe"]
    assert spec.lock_attr == "_lock"
    assert "count" in spec.fields
    assert _SanProbe.__shared_state__ is spec


def test_containers_guarded_when_active(sanitize):
    probe = _SanProbe()
    assert type(probe._cache).__name__ == "GuardedDict"
    assert type(probe._members).__name__ == "GuardedSet"
    assert type(probe._order).__name__ == "GuardedOrdereddict"
    with probe._lock:
        probe._cache["k"] = 1
        probe._members.add("m")
        probe._order["o"] = 1
        probe._order.move_to_end("o")
        probe.count += 1
    # reads stay lock-free
    assert probe._cache["k"] == 1 and "m" in probe._members


def test_unheld_lock_trips(sanitize):
    probe = _SanProbe()
    object.__setattr__(probe, "_lock", _NeverHeld())
    with pytest.raises(SanitizerError):
        probe._cache["k"] = 1
    with pytest.raises(SanitizerError):
        probe._members.add("m")
    with pytest.raises(SanitizerError):
        probe.count = 5  # rebind goes through the __setattr__ hook
    with pytest.raises(SanitizerError):
        probe.helper()  # @requires_lock asserts at entry


def test_rebind_keeps_the_guard(sanitize):
    probe = _SanProbe()
    with probe._lock:
        probe._cache = {"fresh": 1}
    assert type(probe._cache).__name__ == "GuardedDict"
    object.__setattr__(probe, "_lock", _NeverHeld())
    with pytest.raises(SanitizerError):
        probe._cache["k"] = 2


def test_inactive_instances_stay_plain(desanitize):
    assert not sanitizer.enabled()
    probe = _SanProbe()
    assert type(probe._cache) is dict
    probe.count += 1  # no lock, no guard, no error
    probe._cache["k"] = 1


def test_sanitizer_error_is_assertion_error():
    assert issubclass(SanitizerError, AssertionError)


def test_frozen_rows(sanitize):
    rows = sanitizer.freeze_rows([(1,), (2,)])
    assert isinstance(rows, FrozenRows)
    assert list(rows) == [(1,), (2,)]
    assert rows[0] == (1,)
    for mutate in (
        lambda: rows.append((3,)),
        lambda: rows.extend([(3,)]),
        lambda: rows.__setitem__(0, (9,)),
        lambda: rows.pop(),
        lambda: rows.sort(),
    ):
        with pytest.raises(SanitizerError):
            mutate()
    # the sanctioned rebind idiom still works: + yields a plain list
    widened = rows + [(3,)]
    assert type(widened) is list and len(widened) == 3
    # idempotent
    assert sanitizer.freeze_rows(rows) is rows


def test_freeze_rows_noop_when_inactive(desanitize):
    rows = [1, 2]
    assert sanitizer.freeze_rows(rows) is rows


@pytest.mark.skipif(np is None, reason="numpy unavailable")
def test_freeze_array(sanitize):
    arr = np.arange(4)
    sanitizer.freeze_array(arr)
    with pytest.raises(ValueError):
        arr[0] = 9
    # copy-on-write survives: a copy of a frozen array is writable
    clone = arr.copy()
    clone[0] = 9
    assert clone[0] == 9 and arr[0] == 0


def test_named_lock_registration():
    lock = register_lock("_SAN_TEST_LOCK", threading.Lock(),
                         tier="store")
    try:
        assert NAMED_LOCKS["_SAN_TEST_LOCK"].lock is lock
        assert NAMED_LOCKS["_SAN_TEST_LOCK"].tier == "store"
    finally:
        del NAMED_LOCKS["_SAN_TEST_LOCK"]


def test_register_lock_rejects_unknown_tier():
    with pytest.raises(ValueError):
        register_lock("_SAN_BAD_TIER", threading.Lock(), tier="kernel")


def test_shared_state_rejects_unknown_tier():
    with pytest.raises(ValueError):
        shared_state("_lock", "x", tier="not-a-tier")


def test_columnar_snapshot_is_frozen(sanitize):
    """The PR 6 aliasing bug class, live: a snapshot's rows physically
    refuse in-place mutation while the delta keeps working through
    rebinds."""
    pytest.importorskip("numpy")
    from repro.engine import columnar
    from repro.engine.columnar import ColumnarDelta

    if not columnar.enabled():
        pytest.skip("columnar path disabled")
    delta = ColumnarDelta(("A",), {(i,): 1 for i in range(64)})
    snap = delta.snapshot()
    assert snap is not None
    with pytest.raises(SanitizerError):
        snap.rows.append(("x",))
    with pytest.raises(ValueError):
        snap.mults[0] = 99
    # the delta still takes updates (copy-on-write path) and rebinds
    delta.update((999,), 1)
    delta.update((0,), 0)
    snap2 = delta.snapshot()
    assert snap2 is not None
    assert int(snap2.mults.sum()) == delta.total
