"""The `repro lint` static analyzer: rule coverage, suppression,
baseline handling, CLI exit codes, and the acceptance-criteria seeded
regressions over the real tree."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.baseline import apply_baseline, load_baseline, \
    write_baseline
from repro.analysis.linter import collect_registry, iter_python_files, \
    lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
ENGINE_DIR = REPO_ROOT / "src" / "repro" / "engine"
COLUMNAR = ENGINE_DIR / "columnar.py"

PREAMBLE = """\
import threading
from repro.analysis.registry import shared_state, register_lock, requires_lock
"""


def lint_snippet(tmp_path, source, name="snippet.py"):
    path = tmp_path / name
    path.write_text(PREAMBLE + source, encoding="utf-8")
    return lint_paths([path])


def rules_of(findings):
    return sorted(f.rule for f in findings)


# -- RL01: unguarded shared mutation ------------------------------------


RL01_CLASS = """
@shared_state("_lock", "_cache", "hits", tier="engine")
class Holder:
    def __init__(self):
        self._lock = threading.RLock()
        self._cache = {}
        self.hits = 0

    def unguarded(self):
        self.hits += 1
        self._cache["k"] = 1
        self._cache.pop("k", None)

    def guarded(self):
        with self._lock:
            self.hits += 1
            self._cache["k"] = 1

    @requires_lock("_lock")
    def helper(self):
        del self._cache["k"]
"""


def test_rl01_flags_unguarded_writes_only(tmp_path):
    findings = lint_snippet(tmp_path, RL01_CLASS)
    assert rules_of(findings) == ["RL01", "RL01", "RL01"]
    assert all("unguarded" in f.scope for f in findings)


def test_rl01_init_exempt(tmp_path):
    findings = lint_snippet(tmp_path, """
@shared_state("_lock", "stats")
class WithInit:
    def __init__(self):
        self._lock = threading.RLock()
        self.stats = {}
        self.stats["boot"] = 1
""")
    assert findings == []


def test_rl01_chained_attribute_write(tmp_path):
    findings = lint_snippet(tmp_path, """
@shared_state("_lock", "stats")
class Chained:
    def bump(self):
        self.stats.evictions += 1
""")
    assert rules_of(findings) == ["RL01"]


def test_rl01_named_containers_and_slots(tmp_path):
    findings = lint_snippet(tmp_path, """
_LOCK = register_lock("_LOCK", threading.Lock(), tier="store",
                      slots=("_encoded",), containers=("_TABLE",))
_TABLE = {}

def bad(index):
    _TABLE["k"] = 1
    index._encoded = object()

def good(index):
    with _LOCK:
        _TABLE["k"] = 1
        index._encoded = object()
""")
    assert rules_of(findings) == ["RL01", "RL01"]
    assert all(f.scope == "bad" for f in findings)


def test_rl01_pragma_suppression(tmp_path):
    findings = lint_snippet(tmp_path, """
@shared_state("_lock", "hits")
class Pragmatic:
    def bump(self):
        self.hits += 1  # repro-lint: disable=RL01
""")
    assert findings == []


# -- RL02: identity cache keys ------------------------------------------


def test_rl02_id_keys(tmp_path):
    findings = lint_snippet(tmp_path, """
class Cache:
    def store(self, bag, other):
        self._memo[id(bag)] = 1
        self._memo[("tag", id(bag), id(other))] = 2
        return self._memo.get(("tag", id(bag)))
""")
    assert rules_of(findings) == ["RL02", "RL02", "RL02"]


def test_rl02_local_id_dict_is_fine(tmp_path):
    # the live engine legitimately builds an ephemeral local id-keyed
    # dict inside one call; only attribute-reachable state is flagged
    findings = lint_snippet(tmp_path, """
def resolve(handles):
    by_id = {id(h): h for h in handles}
    return by_id
""")
    assert findings == []


# -- RL03: snapshot mutation --------------------------------------------


RL03_CLASS = """
class Delta:
    FROZEN_FIELDS = ("rows",)

    def __init__(self):
        self.rows = []

    def bad(self, new):
        self.rows.extend(new)

    def worse(self, new):
        self.rows += new

    def good(self, new):
        self.rows = self.rows + new
"""


def test_rl03_inplace_vs_rebind(tmp_path):
    findings = lint_snippet(tmp_path, RL03_CLASS)
    assert rules_of(findings) == ["RL03", "RL03"]
    assert {f.scope.rsplit(".", 1)[-1] for f in findings} == {"bad", "worse"}


def test_rl03_name_based_receiver(tmp_path):
    findings = lint_snippet(tmp_path, RL03_CLASS + """
def mutate(delta):
    delta.rows.append(1)
""")
    assert "RL03" in rules_of(findings)
    assert any(f.scope == "mutate" for f in findings)


# -- RL04: invalidation completeness ------------------------------------


def test_rl04_mults_without_hook(tmp_path):
    findings = lint_snippet(tmp_path, """
def raw(handle, row):
    handle._mults[row] = 2

def maintained(handle, row):
    handle._mults[row] = 2
    handle.shift_content(row, 1, 2)
""")
    assert rules_of(findings) == ["RL04"]
    assert findings[0].scope == "raw"
    assert findings[0].severity == "warning"


# -- RL05: lock order ----------------------------------------------------


def test_rl05_inversion(tmp_path):
    findings = lint_snippet(tmp_path, """
_ENG = register_lock("_ENG", threading.Lock(), tier="engine")
_INT = register_lock("_INT", threading.Lock(), tier="interner")

def inverted():
    with _INT:
        with _ENG:
            pass

def declared_order():
    with _ENG:
        with _INT:
            pass
""")
    assert rules_of(findings) == ["RL05"]
    assert findings[0].scope == "inverted"


# -- registry collection -------------------------------------------------


def test_registry_collected_from_real_tree():
    registry = collect_registry(
        iter_python_files([REPO_ROOT / "src" / "repro"])
    )
    assert "_Interner" in registry.classes
    assert "VerdictStore" in registry.classes
    assert "Shard" in registry.classes
    assert registry.classes["Shard"].tier == "store"
    assert "_ENCODE_LOCK" in registry.named_locks
    assert registry.slot_guards["_columnar"] == "_ENCODE_LOCK"
    assert registry.container_guards["_INTERNERS"] == "_INTERN_LOCK"
    assert "rows" in registry.all_frozen
    assert registry.frozen_by_class["ColumnarDelta"] == frozenset({"rows"})


# -- the real tree is finding-free ---------------------------------------


def test_engine_tree_is_clean():
    assert lint_paths([ENGINE_DIR]) == []


def test_store_and_server_are_clean():
    assert lint_paths([
        REPO_ROOT / "src" / "repro" / "store",
        REPO_ROOT / "src" / "repro" / "server.py",
    ]) == []


def test_committed_baseline_is_empty():
    baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
    assert baseline == set()


# -- seeded regressions (the acceptance criteria) ------------------------


def test_seeded_interner_lock_removal_is_rl01(tmp_path):
    source = COLUMNAR.read_text(encoding="utf-8")
    assert "with self.lock:" in source
    seeded = tmp_path / "columnar_nolock.py"
    seeded.write_text(
        source.replace("with self.lock:", "if True:"), encoding="utf-8"
    )
    findings = lint_paths([seeded])
    assert any(f.rule == "RL01" and "_Interner" in f.detail
               for f in findings)


def test_seeded_materialize_extend_is_rl03(tmp_path):
    source = COLUMNAR.read_text(encoding="utf-8")
    rebind = "self.rows = self.rows + encoded.rows"
    assert rebind in source
    seeded = tmp_path / "columnar_extend.py"
    seeded.write_text(
        source.replace(rebind, "self.rows.extend(encoded.rows)"),
        encoding="utf-8",
    )
    findings = lint_paths([seeded])
    assert any(f.rule == "RL03" and "rows" in f.detail for f in findings)


# -- baseline mechanics --------------------------------------------------


def test_baseline_round_trip(tmp_path):
    findings = lint_snippet(tmp_path, RL03_CLASS)
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, findings)
    baseline = load_baseline(baseline_file)
    fresh, grandfathered, stale = apply_baseline(findings, baseline)
    assert fresh == [] and len(grandfathered) == 2 and stale == []
    # a fixed finding leaves its key stale
    fresh, grandfathered, stale = apply_baseline(findings[:1], baseline)
    assert len(stale) == 1


def test_baseline_keys_are_line_free(tmp_path):
    first = lint_snippet(tmp_path, RL03_CLASS, name="a.py")
    shifted = lint_snippet(
        tmp_path, "\n\n\n" + RL03_CLASS, name="b.py"
    )
    keys_a = {k.replace("a.py", "X") for k in (f.key for f in first)}
    keys_b = {k.replace("b.py", "X") for k in (f.key for f in shifted)}
    assert keys_a == keys_b


# -- CLI ----------------------------------------------------------------


def run_cli(*argv):
    from repro.analysis.cli import main

    return main(list(argv))


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(PREAMBLE + RL03_CLASS, encoding="utf-8")
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")

    assert run_cli(str(clean), "--no-baseline") == 0
    assert run_cli(str(bad), "--no-baseline") == 1
    assert run_cli(str(tmp_path / "missing.py")) == 2
    capsys.readouterr()

    baseline = tmp_path / "baseline.json"
    assert run_cli(str(bad), "--baseline", str(baseline),
                   "--update-baseline") == 0
    assert run_cli(str(bad), "--baseline", str(baseline)) == 0
    out = capsys.readouterr().out
    assert "grandfathered" in out

    # strict mode fails on stale keys once the findings are fixed
    bad.write_text("x = 1\n", encoding="utf-8")
    assert run_cli(str(bad), "--baseline", str(baseline)) == 0
    assert run_cli(str(bad), "--baseline", str(baseline), "--strict") == 1


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(PREAMBLE + RL03_CLASS, encoding="utf-8")
    assert run_cli(str(bad), "--no-baseline", "--format", "json") == 1
    payload = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in payload} == {"RL03"}
    assert all(f["severity"] == "error" for f in payload)


def test_module_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(ENGINE_DIR)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_repro_lint_subcommand():
    from repro.cli import main as repro_main

    assert repro_main(["lint", str(ENGINE_DIR), "--no-baseline"]) == 0


@pytest.mark.parametrize("rule", ["RL01", "RL02", "RL03", "RL04", "RL05"])
def test_severity_table_complete(rule):
    from repro.analysis.rules import SEVERITY

    assert SEVERITY[rule] in ("error", "warning")
