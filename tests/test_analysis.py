"""Witness-space analysis tooling."""

import pytest
from hypothesis import given, settings

from repro.analysis import (
    count_witnesses,
    format_report,
    witness_space_report,
)
from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.errors import InconsistentError
from repro.workloads.generators import witness_family_pair
from tests.conftest import consistent_bag_pairs

AB = Schema(["A", "B"])
BC = Schema(["B", "C"])


class TestReport:
    def test_paper_pair_report(self):
        r, s = witness_family_pair(2)
        report = witness_space_report(r, s)
        assert report.n_join_tuples == 4
        assert report.n_pinned == 0
        assert not report.unique_witness
        assert report.total_slack == 4
        assert report.ambiguity_index() == pytest.approx(4 / 2)

    def test_unique_witness_detected(self):
        r = Bag.from_pairs(AB, [((1, 2), 5)])
        s = Bag.from_pairs(BC, [((2, 9), 5)])
        report = witness_space_report(r, s)
        assert report.unique_witness
        assert report.ambiguity_index() == 0.0

    def test_inconsistent_raises(self):
        r = Bag.from_pairs(AB, [((1, 2), 5)])
        s = Bag.from_pairs(BC, [((2, 9), 4)])
        with pytest.raises(InconsistentError):
            witness_space_report(r, s)

    def test_format_contains_all_tuples(self):
        r, s = witness_family_pair(2)
        report = witness_space_report(r, s)
        text = format_report(report)
        assert "ambiguity index" in text
        assert text.count("range") == 4

    @settings(deadline=None, max_examples=20)
    @given(consistent_bag_pairs())
    def test_ranges_bracket_any_witness(self, data):
        from repro.consistency.pairwise import consistency_witness

        _, r, s = data
        report = witness_space_report(r, s)
        witness = consistency_witness(r, s)
        by_row = {tr.row: tr for tr in report.ranges}
        for row, mult in witness.items():
            assert by_row[row].low <= mult <= by_row[row].high


class TestIterWitnesses:
    def test_streams_all_witnesses(self):
        from repro.analysis import iter_witnesses
        from repro.consistency.witness import is_witness

        r, s = witness_family_pair(3)
        seen = list(iter_witnesses([r, s]))
        assert len(seen) == 4
        assert all(is_witness([r, s], w) for w in seen)
        assert len({frozenset(w.items()) for w in seen}) == 4

    def test_prefix_is_lazy(self):
        """Taking 2 of 2^9 witnesses must stay within a small node
        budget — proof that the stream does not pre-enumerate."""
        from itertools import islice

        from repro.analysis import iter_witnesses

        r, s = witness_family_pair(10)
        first_two = list(islice(iter_witnesses([r, s], node_budget=5000), 2))
        assert len(first_two) == 2

    def test_inconsistent_streams_nothing(self):
        from repro.analysis import iter_witnesses

        r = Bag.from_pairs(AB, [((1, 2), 5)])
        s = Bag.from_pairs(BC, [((2, 9), 4)])
        assert list(iter_witnesses([r, s])) == []


class TestCounting:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_witness_family_counts(self, n):
        r, s = witness_family_pair(n)
        assert count_witnesses([r, s]) == 2 ** (n - 1)

    def test_inconsistent_counts_zero(self):
        r = Bag.from_pairs(AB, [((1, 2), 5)])
        s = Bag.from_pairs(BC, [((2, 9), 4)])
        assert count_witnesses([r, s]) == 0

    def test_limit_caps_enumeration(self):
        r, s = witness_family_pair(5)
        assert count_witnesses([r, s], limit=3) == 3

    def test_unique_witness_counts_one(self):
        r = Bag.from_pairs(AB, [((1, 2), 5)])
        s = Bag.from_pairs(BC, [((2, 9), 5)])
        assert count_witnesses([r, s]) == 1
