"""Unit and property tests for GYO, join trees, RIP orderings.

The structural half of Theorems 1/2: statements (a)-(d) are equivalent.
Every decider here is cross-checked against every other on random
hypergraphs.
"""

import pytest
from hypothesis import given

from repro.errors import CyclicSchemaError
from repro.hypergraphs.acyclicity import (
    gyo_reduction,
    has_running_intersection_property,
    is_acyclic,
    is_acyclic_via_chordal_conformal,
    join_tree,
    running_intersection_order,
    verify_join_tree,
    verify_running_intersection,
)
from repro.hypergraphs.families import (
    chain_of_cliques,
    cycle_hypergraph,
    grid_hypergraph,
    hn_hypergraph,
    path_hypergraph,
    random_acyclic_hypergraph,
    star_hypergraph,
    triangle_hypergraph,
)
from repro.hypergraphs.hypergraph import Hypergraph
from tests.conftest import hypergraphs


class TestPaperFamilies:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_paths_are_acyclic(self, n):
        assert is_acyclic(path_hypergraph(n))

    @pytest.mark.parametrize("n", [3, 4, 5, 7])
    def test_cycles_are_cyclic(self, n):
        assert not is_acyclic(cycle_hypergraph(n))

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_hn_are_cyclic(self, n):
        assert not is_acyclic(hn_hypergraph(n))

    def test_stars_are_acyclic(self):
        assert is_acyclic(star_hypergraph(5))

    def test_chains_of_cliques_are_acyclic(self):
        assert is_acyclic(chain_of_cliques([3, 4, 3, 2]))

    def test_grids_are_cyclic(self):
        assert not is_acyclic(grid_hypergraph(2, 2))

    def test_single_edge_is_acyclic(self):
        assert is_acyclic(Hypergraph(None, [("A", "B", "C")]))

    def test_disconnected_acyclic(self):
        h = Hypergraph(None, [("A", "B"), ("C", "D")])
        assert is_acyclic(h)


class TestGYO:
    def test_gyo_parents_cover_all_but_one(self):
        result = gyo_reduction(path_hypergraph(5))
        assert result.acyclic
        assert len(result.survivors) == 1
        assert len(result.parent) == 3

    def test_gyo_on_cycle_leaves_everything(self):
        result = gyo_reduction(cycle_hypergraph(4))
        assert not result.acyclic
        assert len(result.survivors) == 4


class TestJoinTree:
    @pytest.mark.parametrize(
        "factory", [lambda: path_hypergraph(6), lambda: star_hypergraph(5),
                    lambda: chain_of_cliques([3, 3, 4])]
    )
    def test_join_trees_verify(self, factory):
        tree = join_tree(factory())
        assert verify_join_tree(tree)

    def test_cyclic_raises(self):
        with pytest.raises(CyclicSchemaError):
            join_tree(triangle_hypergraph())

    def test_no_edges_raises(self):
        with pytest.raises(CyclicSchemaError):
            join_tree(Hypergraph(["A"], []))

    def test_join_tree_with_covered_edges(self):
        h = Hypergraph(None, [("A", "B"), ("A",), ("B", "C")])
        tree = join_tree(h)
        assert verify_join_tree(tree)


class TestRIP:
    def test_path_rip_verifies(self):
        rip = running_intersection_order(path_hypergraph(6))
        assert verify_running_intersection(rip)

    def test_rip_first_witness_is_minus_one(self):
        rip = running_intersection_order(star_hypergraph(4))
        assert rip.witness[0] == -1

    def test_cyclic_has_no_rip(self):
        assert not has_running_intersection_property(cycle_hypergraph(5))

    def test_acyclic_has_rip(self):
        assert has_running_intersection_property(path_hypergraph(5))

    def test_verifier_rejects_bad_listing(self):
        from repro.hypergraphs.acyclicity import RIPOrder
        from repro.core.schema import Schema

        bad = RIPOrder(
            order=(Schema(["A", "B"]), Schema(["B", "C"]), Schema(["A", "C"])),
            witness=(-1, 0, 1),
        )
        assert not verify_running_intersection(bad)


class TestRandomAcyclicGenerator:
    @pytest.mark.parametrize("seed", range(5))
    def test_generated_hypergraphs_are_acyclic(self, seed):
        import random

        h = random_acyclic_hypergraph(6, 4, random.Random(seed))
        assert is_acyclic(h)
        assert verify_join_tree(join_tree(h))


@given(hypergraphs(max_edges=5, max_arity=3))
def test_gyo_agrees_with_chordal_conformal(h):
    """Theorem 1 (a) <=> (b): the two independent acyclicity deciders."""
    assert is_acyclic(h) == is_acyclic_via_chordal_conformal(h)


@given(hypergraphs(max_edges=5, max_arity=3))
def test_gyo_agrees_with_rip(h):
    """Theorem 1 (a) <=> (c)."""
    assert is_acyclic(h) == has_running_intersection_property(h)


@given(hypergraphs(max_edges=5, max_arity=3))
def test_join_tree_exists_iff_acyclic_and_verifies(h):
    """Theorem 1 (a) <=> (d), with the coherence property checked."""
    try:
        tree = join_tree(h)
    except CyclicSchemaError:
        assert not is_acyclic(h)
    else:
        assert is_acyclic(h)
        assert verify_join_tree(tree)
