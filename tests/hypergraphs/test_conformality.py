"""Unit and property tests for conformality (Gilmore vs definitional)."""

from hypothesis import given

from repro.hypergraphs.conformality import (
    find_uncovered_clique,
    is_conformal,
    is_conformal_by_cliques,
    verify_uncovered_clique,
)
from repro.hypergraphs.families import (
    cycle_hypergraph,
    hn_hypergraph,
    path_hypergraph,
    triangle_hypergraph,
)
from repro.hypergraphs.hypergraph import Hypergraph
from tests.conftest import hypergraphs


class TestPaperFamilies:
    """Section 4's classification: P_n conformal+chordal; C_3 chordal but
    not conformal; C_n (n>=4) conformal but not chordal; H_n not
    conformal."""

    def test_paths_are_conformal(self):
        for n in (2, 3, 5):
            assert is_conformal(path_hypergraph(n))

    def test_triangle_is_not_conformal(self):
        assert not is_conformal(triangle_hypergraph())

    def test_long_cycles_are_conformal(self):
        for n in (4, 5, 6):
            assert is_conformal(cycle_hypergraph(n))

    def test_hn_is_not_conformal(self):
        for n in (3, 4, 5):
            assert not is_conformal(hn_hypergraph(n))

    def test_single_wide_edge_is_conformal(self):
        assert is_conformal(Hypergraph(None, [("A", "B", "C", "D")]))


class TestWitnessExtraction:
    def test_triangle_witness_is_all_three_vertices(self):
        clique = find_uncovered_clique(triangle_hypergraph())
        assert clique == frozenset({"A1", "A2", "A3"})
        assert verify_uncovered_clique(triangle_hypergraph(), clique)

    def test_hn_witness(self):
        h = hn_hypergraph(4)
        clique = find_uncovered_clique(h)
        assert clique is not None
        assert verify_uncovered_clique(h, clique)

    def test_conformal_gives_none(self):
        assert find_uncovered_clique(path_hypergraph(4)) is None

    def test_verifier_rejects_covered_cliques(self):
        h = Hypergraph(None, [("A", "B", "C")])
        assert not verify_uncovered_clique(h, frozenset({"A", "B"}))


@given(hypergraphs(max_edges=4, max_arity=3))
def test_gilmore_agrees_with_definition(h):
    """Gilmore's O(m^3) criterion equals the maximal-clique definition."""
    assert is_conformal(h) == is_conformal_by_cliques(h)


@given(hypergraphs(max_edges=4, max_arity=3))
def test_uncovered_cliques_verify(h):
    clique = find_uncovered_clique(h)
    if clique is None:
        assert is_conformal(h)
    else:
        assert verify_uncovered_clique(h, clique)
