"""Unit and property tests for chordality (Lex-BFS + PEO)."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hypergraphs.chordality import (
    find_chordless_cycle,
    is_chordal_graph,
    lex_bfs,
    verify_chordless_cycle,
)
from repro.hypergraphs.graphs import Graph


def cycle_graph(n: int) -> Graph:
    vs = list(range(n))
    return Graph(vs, [(i, (i + 1) % n) for i in range(n)])


def complete_graph(n: int) -> Graph:
    vs = list(range(n))
    return Graph(vs, [(i, j) for i in vs for j in vs if i < j])


class TestChordality:
    def test_triangle_is_chordal(self):
        assert is_chordal_graph(cycle_graph(3))

    @pytest.mark.parametrize("n", [4, 5, 6, 8])
    def test_long_cycles_are_not_chordal(self, n):
        assert not is_chordal_graph(cycle_graph(n))

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_complete_graphs_are_chordal(self, n):
        assert is_chordal_graph(complete_graph(n))

    def test_path_is_chordal(self):
        g = Graph(range(5), [(i, i + 1) for i in range(4)])
        assert is_chordal_graph(g)

    def test_cycle_with_chord_is_chordal(self):
        g = Graph(range(4), [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        assert is_chordal_graph(g)

    def test_empty_graph_is_chordal(self):
        assert is_chordal_graph(Graph([]))

    def test_disconnected_cycles(self):
        g = Graph(
            range(8),
            [(0, 1), (1, 2), (2, 3), (3, 0)]  # C4
            + [(4, 5), (5, 6), (6, 7), (7, 4), (4, 6)],  # chordal part
        )
        assert not is_chordal_graph(g)


class TestLexBFS:
    def test_lex_bfs_is_a_permutation(self):
        g = cycle_graph(6)
        order = lex_bfs(g)
        assert sorted(order) == sorted(g.vertices)

    def test_lex_bfs_empty(self):
        assert lex_bfs(Graph([])) == []


class TestChordlessCycleExtraction:
    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_finds_the_cycle_in_pure_cycles(self, n):
        g = cycle_graph(n)
        cycle = find_chordless_cycle(g)
        assert cycle is not None
        assert verify_chordless_cycle(g, cycle)
        assert len(cycle) == n

    def test_none_for_chordal(self):
        assert find_chordless_cycle(complete_graph(5)) is None

    def test_finds_embedded_chordless_cycle(self):
        # C4 {0,1,2,3} plus a pendant triangle on vertex 0.
        g = Graph(
            range(6),
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 5), (5, 0)],
        )
        cycle = find_chordless_cycle(g)
        assert cycle is not None
        assert verify_chordless_cycle(g, cycle)

    def test_verifier_rejects_cycles_with_chords(self):
        g = Graph(range(4), [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        assert not verify_chordless_cycle(g, [0, 1, 2, 3])

    def test_verifier_rejects_non_cycles(self):
        g = cycle_graph(5)
        assert not verify_chordless_cycle(g, [0, 1, 2])  # too short
        assert not verify_chordless_cycle(g, [0, 1, 3, 2])  # not a cycle


@given(
    st.integers(4, 8),
    st.sets(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=14),
)
def test_agreement_with_networkx(n, extra_edges):
    """Cross-check the chordality decision against networkx on random
    graphs."""
    edges = [(u % n, v % n) for u, v in extra_edges if u % n != v % n]
    ours = Graph(range(n), edges)
    theirs = nx.Graph()
    theirs.add_nodes_from(range(n))
    theirs.add_edges_from(edges)
    assert is_chordal_graph(ours) == nx.is_chordal(theirs)


@given(
    st.integers(4, 8),
    st.sets(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=14),
)
def test_extracted_cycles_verify(n, extra_edges):
    edges = [(u % n, v % n) for u, v in extra_edges if u % n != v % n]
    g = Graph(range(n), edges)
    cycle = find_chordless_cycle(g)
    if cycle is None:
        assert is_chordal_graph(g)
    else:
        assert verify_chordless_cycle(g, cycle)
