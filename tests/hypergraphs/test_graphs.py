"""Unit tests for the undirected-graph substrate."""

import pytest

from repro.hypergraphs.graphs import Graph


def cycle_graph(n: int) -> Graph:
    vs = list(range(n))
    return Graph(vs, [(i, (i + 1) % n) for i in range(n)])


def complete_graph(n: int) -> Graph:
    vs = list(range(n))
    return Graph(vs, [(i, j) for i in vs for j in vs if i < j])


class TestBasics:
    def test_self_loops_dropped(self):
        g = Graph([1, 2], [(1, 1), (1, 2)])
        assert g.edge_count() == 1

    def test_unknown_vertex_rejected(self):
        with pytest.raises(ValueError):
            Graph([1], [(1, 2)])

    def test_neighbors_and_degree(self):
        g = cycle_graph(4)
        assert g.neighbors(0) == {1, 3}
        assert g.degree(0) == 2

    def test_edges_iterated_once(self):
        g = cycle_graph(5)
        assert len(list(g.edges())) == 5

    def test_subgraph(self):
        g = complete_graph(4)
        sub = g.subgraph([0, 1, 2])
        assert sub.vertices == {0, 1, 2}
        assert sub.edge_count() == 3

    def test_is_clique(self):
        g = complete_graph(4)
        assert g.is_clique([0, 1, 2, 3])
        assert cycle_graph(4).is_clique([0, 1])
        assert not cycle_graph(4).is_clique([0, 1, 2])


class TestConnectivity:
    def test_connected(self):
        assert cycle_graph(5).is_connected()

    def test_disconnected(self):
        g = Graph([1, 2, 3, 4], [(1, 2), (3, 4)])
        assert not g.is_connected()
        comps = {frozenset(c) for c in g.connected_components()}
        assert comps == {frozenset({1, 2}), frozenset({3, 4})}

    def test_empty_graph_is_connected(self):
        assert Graph([]).is_connected()


class TestCliques:
    def test_maximal_cliques_of_complete_graph(self):
        cliques = list(complete_graph(4).maximal_cliques())
        assert cliques == [frozenset({0, 1, 2, 3})]

    def test_maximal_cliques_of_cycle(self):
        cliques = {frozenset(c) for c in cycle_graph(5).maximal_cliques()}
        assert all(len(c) == 2 for c in cliques)
        assert len(cliques) == 5

    def test_maximal_cliques_of_triangle_plus_pendant(self):
        g = Graph([0, 1, 2, 3], [(0, 1), (1, 2), (0, 2), (2, 3)])
        cliques = {frozenset(c) for c in g.maximal_cliques()}
        assert frozenset({0, 1, 2}) in cliques
        assert frozenset({2, 3}) in cliques


class TestShapes:
    def test_cycle_graph_recognizer(self):
        assert cycle_graph(4).is_cycle_graph()
        assert cycle_graph(3).is_cycle_graph()
        assert not complete_graph(4).is_cycle_graph()
        path = Graph([0, 1, 2], [(0, 1), (1, 2)])
        assert not path.is_cycle_graph()

    def test_two_triangles_not_a_cycle(self):
        g = Graph(
            range(6),
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
        assert not g.is_cycle_graph()

    def test_complement(self):
        g = cycle_graph(4)
        comp = g.complement()
        assert comp.edge_count() == 2  # the two diagonals
        assert comp.has_edge(0, 2) and comp.has_edge(1, 3)
