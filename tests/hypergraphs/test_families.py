"""Unit tests for the named hypergraph families and random generators."""

import random

import pytest

from repro.hypergraphs.families import (
    chain_of_cliques,
    cycle_hypergraph,
    grid_hypergraph,
    hn_hypergraph,
    path_hypergraph,
    random_acyclic_hypergraph,
    random_hypergraph,
    star_hypergraph,
    triangle_hypergraph,
)


class TestNamedFamilies:
    def test_path_edge_count(self):
        assert len(path_hypergraph(5).edges) == 4

    def test_cycle_edge_count(self):
        assert len(cycle_hypergraph(5).edges) == 5

    def test_hn_edge_count(self):
        assert len(hn_hypergraph(5).edges) == 5

    def test_triangle_equals_c3_and_h3(self):
        assert triangle_hypergraph() == cycle_hypergraph(3)
        assert triangle_hypergraph() == hn_hypergraph(3)

    def test_h3_equals_c3(self):
        assert hn_hypergraph(3) == cycle_hypergraph(3)

    def test_star_edges_share_hub(self):
        h = star_hypergraph(4)
        assert all("A0" in e for e in h.edges)

    def test_chain_of_cliques_overlap(self):
        h = chain_of_cliques([3, 3])
        (e1, e2) = h.edges
        assert len(e1.as_frozenset() & e2.as_frozenset()) == 1

    def test_grid_edge_count(self):
        # 2x3 grid: 2 rows x 2 horizontal + 3 columns x 1 vertical = 7.
        assert len(grid_hypergraph(2, 3).edges) == 7

    @pytest.mark.parametrize(
        "factory, arg",
        [(path_hypergraph, 1), (cycle_hypergraph, 2), (hn_hypergraph, 2),
         (star_hypergraph, 0)],
    )
    def test_too_small_parameters_rejected(self, factory, arg):
        with pytest.raises(ValueError):
            factory(arg)

    def test_prefix_control(self):
        h = path_hypergraph(3, prefix="X")
        assert all(str(v).startswith("X") for v in h.vertices)


class TestRandomGenerators:
    def test_random_hypergraph_respects_bounds(self):
        rng = random.Random(1)
        h = random_hypergraph(6, 5, 3, rng)
        assert len(h.vertices) <= 6
        assert all(1 <= len(e) <= 3 for e in h.edges)

    def test_random_hypergraph_deterministic_under_seed(self):
        h1 = random_hypergraph(5, 4, 3, random.Random(7))
        h2 = random_hypergraph(5, 4, 3, random.Random(7))
        assert h1 == h2

    def test_random_acyclic_edge_count(self):
        rng = random.Random(3)
        h = random_acyclic_hypergraph(5, 3, rng)
        # Duplicates may collapse, but at least one edge survives.
        assert 1 <= len(h.edges) <= 5

    def test_invalid_parameters_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            random_hypergraph(0, 1, 1, rng)
        with pytest.raises(ValueError):
            random_acyclic_hypergraph(0, 3, rng)
        with pytest.raises(ValueError):
            chain_of_cliques([1])
        with pytest.raises(ValueError):
            grid_hypergraph(0, 3)
