"""Unit and property tests for the Lemma 3 obstruction machinery."""

import pytest
from hypothesis import given

from repro.errors import AcyclicSchemaError
from repro.hypergraphs.acyclicity import is_acyclic
from repro.hypergraphs.families import (
    cycle_hypergraph,
    grid_hypergraph,
    hn_hypergraph,
    path_hypergraph,
    triangle_hypergraph,
)
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.obstructions import (
    find_nonchordal_witness,
    find_nonconformal_witness,
    find_obstruction,
)
from tests.conftest import hypergraphs


class TestNonChordalWitness:
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_cycle_is_its_own_witness(self, n):
        w = find_nonchordal_witness(cycle_hypergraph(n))
        assert w == cycle_hypergraph(n).vertices

    def test_chordal_gives_none(self):
        assert find_nonchordal_witness(path_hypergraph(5)) is None
        assert find_nonchordal_witness(triangle_hypergraph()) is None

    def test_embedded_cycle_found(self):
        # C4 on A1..A4 plus a pendant edge.
        h = Hypergraph(
            None,
            [("A1", "A2"), ("A2", "A3"), ("A3", "A4"), ("A4", "A1"),
             ("A4", "B")],
        )
        w = find_nonchordal_witness(h)
        assert w == {"A1", "A2", "A3", "A4"}


class TestNonConformalWitness:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_hn_is_its_own_witness(self, n):
        w = find_nonconformal_witness(hn_hypergraph(n))
        assert w == hn_hypergraph(n).vertices

    def test_conformal_gives_none(self):
        assert find_nonconformal_witness(cycle_hypergraph(5)) is None

    def test_triangle_witness(self):
        w = find_nonconformal_witness(triangle_hypergraph())
        assert w == {"A1", "A2", "A3"}


class TestFindObstruction:
    def test_acyclic_raises(self):
        with pytest.raises(AcyclicSchemaError):
            find_obstruction(path_hypergraph(4))

    def test_triangle_reports_hn(self):
        obs = find_obstruction(triangle_hypergraph())
        assert obs.kind == "hn"
        assert len(obs.vertices) == 3
        assert obs.reduced_induced.is_hn_shape()

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_long_cycle_reports_cycle(self, n):
        obs = find_obstruction(cycle_hypergraph(n))
        assert obs.kind == "cycle"
        assert len(obs.vertices) == n
        assert obs.reduced_induced.is_cycle_shape()

    @pytest.mark.parametrize("n", [4, 5])
    def test_hn_reports_hn(self, n):
        obs = find_obstruction(hn_hypergraph(n))
        assert obs.kind == "hn"
        assert obs.reduced_induced.is_hn_shape()

    def test_grid_obstruction(self):
        obs = find_obstruction(grid_hypergraph(2, 2))
        assert obs.kind in ("cycle", "hn")
        reduced = obs.reduced_induced
        assert reduced.is_cycle_shape() or reduced.is_hn_shape()

    def test_uniform_regular_outputs(self):
        """Both obstruction shapes are k-uniform and d-regular with d >= 2
        — the precondition of the Tseitin construction."""
        for h in (cycle_hypergraph(5), hn_hypergraph(4), grid_hypergraph(2, 3)):
            obs = find_obstruction(h)
            reduced = obs.reduced_induced
            assert reduced.uniformity() is not None
            assert (reduced.regularity() or 0) >= 2


@given(hypergraphs(max_edges=5, max_arity=3))
def test_obstruction_exists_iff_cyclic(h):
    """Lemma 3 + Theorem 1(b): cyclic iff an obstruction is found, and
    the certificate always has the claimed shape (shape checks are
    asserted inside find_obstruction)."""
    if is_acyclic(h):
        with pytest.raises(AcyclicSchemaError):
            find_obstruction(h)
    else:
        obs = find_obstruction(h)
        reduced = obs.reduced_induced
        if obs.kind == "cycle":
            assert reduced.is_cycle_shape() and len(obs.vertices) >= 4
        else:
            assert reduced.is_hn_shape() and len(obs.vertices) >= 3
