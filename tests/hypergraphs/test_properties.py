"""Hypergraph structure utilities: connectivity, duals, incidence."""

from hypothesis import given

from repro.hypergraphs.families import (
    cycle_hypergraph,
    hn_hypergraph,
    path_hypergraph,
    star_hypergraph,
)
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.properties import (
    acyclicity_is_componentwise,
    component_hypergraphs,
    connected_components,
    dual_hypergraph,
    edge_sizes,
    incidence_matrix,
    is_connected,
    is_simple,
    vertex_degrees,
)
from tests.conftest import hypergraphs


class TestConnectivity:
    def test_path_is_connected(self):
        assert is_connected(path_hypergraph(5))

    def test_disjoint_edges_disconnected(self):
        h = Hypergraph(None, [("A", "B"), ("C", "D")])
        assert not is_connected(h)
        comps = connected_components(h)
        assert {frozenset(c) for c in comps} == {
            frozenset({"A", "B"}),
            frozenset({"C", "D"}),
        }

    def test_isolated_vertex_is_own_component(self):
        h = Hypergraph(["A", "B", "Z"], [("A", "B")])
        assert len(connected_components(h)) == 2

    def test_empty_hypergraph_connected(self):
        assert is_connected(Hypergraph([], []))

    def test_component_hypergraphs_partition_edges(self):
        h = Hypergraph(None, [("A", "B"), ("B", "C"), ("X", "Y")])
        parts = component_hypergraphs(h)
        total_edges = sum(len(p.edges) for p in parts)
        assert total_edges == 3


class TestDual:
    def test_dual_of_triangle(self):
        """C3 is self-dual up to renaming: 3 vertices of degree 2, 3
        binary edges."""
        dual = dual_hypergraph(cycle_hypergraph(3))
        assert len(dual.edges) == 3
        assert dual.uniformity() == 2
        assert dual.regularity() == 2

    def test_dual_of_star(self):
        """Star with hub: the hub's dual edge contains all n edges."""
        dual = dual_hypergraph(star_hypergraph(4))
        sizes = sorted(len(e) for e in dual.edges)
        assert sizes == [1, 1, 1, 1, 4]

    def test_dual_vertex_count(self):
        h = hn_hypergraph(4)
        dual = dual_hypergraph(h)
        assert len(dual.vertices) == len(h.edges)


class TestIncidence:
    def test_shape(self):
        h = path_hypergraph(4)
        m = incidence_matrix(h)
        assert len(m) == 4  # vertices
        assert all(len(row) == 3 for row in m)  # edges

    def test_column_sums_are_edge_sizes(self):
        h = hn_hypergraph(4)
        m = incidence_matrix(h)
        col_sums = [sum(row[j] for row in m) for j in range(len(h.edges))]
        assert col_sums == edge_sizes(h)

    def test_row_sums_are_degrees(self):
        h = cycle_hypergraph(5)
        m = incidence_matrix(h)
        degrees = vertex_degrees(h)
        ordered = [degrees[v] for v in sorted(h.vertices, key=repr)]
        assert [sum(row) for row in m] == ordered

    def test_graph_incidence_matrix_is_tu_for_even_cycle(self):
        """The Section 3 connection: incidence matrices of bipartite
        graphs are TU; C4's primal graph is bipartite."""
        from repro.lp.unimodular import is_totally_unimodular_bruteforce

        m = incidence_matrix(cycle_hypergraph(4))
        assert is_totally_unimodular_bruteforce(m, max_order=4)

    def test_odd_cycle_incidence_not_tu(self):
        from repro.lp.unimodular import is_totally_unimodular_bruteforce

        m = incidence_matrix(cycle_hypergraph(3))
        assert not is_totally_unimodular_bruteforce(m)


class TestDegreesAndSimplicity:
    def test_degrees_of_hn(self):
        degrees = vertex_degrees(hn_hypergraph(5))
        assert set(degrees.values()) == {4}

    def test_named_families_are_simple(self):
        for h in (path_hypergraph(4), cycle_hypergraph(5), hn_hypergraph(4)):
            assert is_simple(h)

    def test_covered_edge_not_simple(self):
        assert not is_simple(Hypergraph(None, [("A",), ("A", "B")]))


@given(hypergraphs(max_edges=5, max_arity=3))
def test_acyclicity_is_componentwise(h):
    assert acyclicity_is_componentwise(h)


@given(hypergraphs(max_edges=5, max_arity=3))
def test_dual_degree_counts_distinct_signatures(h):
    """The dual collapses vertices with identical incidence signatures
    (Hypergraph edges are sets), so the dual degree of original edge i
    is the number of *distinct* signatures among its vertices — and
    equals the edge size exactly when signatures are pairwise
    distinct."""
    dual = dual_hypergraph(h)
    dual_degrees = vertex_degrees(dual)

    def signature(v):
        return tuple(i for i, edge in enumerate(h.edges) if v in edge)

    for i, edge in enumerate(h.edges):
        signatures = {signature(v) for v in edge.attrs}
        assert dual_degrees[i] == len(signatures)
        assert dual_degrees[i] <= len(edge)
