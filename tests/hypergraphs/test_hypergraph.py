"""Unit tests for Hypergraph: primal graph, induced, reduction, deletions."""

import pytest

from repro.core.schema import Schema
from repro.errors import SchemaError
from repro.hypergraphs.families import (
    cycle_hypergraph,
    hn_hypergraph,
    path_hypergraph,
    triangle_hypergraph,
)
from repro.hypergraphs.hypergraph import Hypergraph, hypergraph_of_bags


class TestConstruction:
    def test_duplicate_edges_collapse(self):
        h = Hypergraph(None, [("A", "B"), ("B", "A")])
        assert len(h.edges) == 1

    def test_empty_edge_rejected(self):
        with pytest.raises(SchemaError):
            Hypergraph(None, [()])

    def test_vertices_inferred_from_edges(self):
        h = Hypergraph(None, [("A", "B"), ("B", "C")])
        assert h.vertices == {"A", "B", "C"}

    def test_isolated_vertices_allowed(self):
        h = Hypergraph(["A", "B", "Z"], [("A", "B")])
        assert "Z" in h.vertices

    def test_edge_outside_vertices_rejected(self):
        with pytest.raises(SchemaError):
            Hypergraph(["A"], [("A", "B")])

    def test_from_schemas(self):
        h = Hypergraph.from_schemas([Schema(["A", "B"]), Schema(["B", "C"])])
        assert len(h.edges) == 2

    def test_equality_ignores_edge_order(self):
        h1 = Hypergraph(None, [("A", "B"), ("B", "C")])
        h2 = Hypergraph(None, [("B", "C"), ("A", "B")])
        assert h1 == h2 and hash(h1) == hash(h2)


class TestPrimalGraph:
    def test_path_primal(self):
        g = path_hypergraph(4).primal_graph()
        assert g.edge_count() == 3

    def test_wide_edge_makes_clique(self):
        h = Hypergraph(None, [("A", "B", "C")])
        g = h.primal_graph()
        assert g.is_clique(["A", "B", "C"])

    def test_hn_primal_is_complete(self):
        g = hn_hypergraph(4).primal_graph()
        assert g.edge_count() == 6


class TestInducedAndReduction:
    def test_induced_drops_empty_traces(self):
        h = Hypergraph(None, [("A", "B"), ("C", "D")])
        induced = h.induced({"A", "B"})
        assert len(induced.edges) == 1

    def test_induced_traces(self):
        h = Hypergraph(None, [("A", "B", "C")])
        induced = h.induced({"A", "B"})
        assert induced.edges[0] == Schema(["A", "B"])

    def test_reduction_removes_covered(self):
        h = Hypergraph(None, [("A",), ("A", "B"), ("A", "B", "C")])
        assert h.reduction().edges == (Schema(["A", "B", "C"]),)

    def test_reduced_detection(self):
        assert triangle_hypergraph().is_reduced()
        h = Hypergraph(None, [("A",), ("A", "B")])
        assert not h.is_reduced()

    def test_induced_then_reduced_on_cycle(self):
        c5 = cycle_hypergraph(5)
        sub = c5.induced({"A1", "A2", "A3"}).reduction()
        # Traces: {A1,A2},{A2,A3},{A3},{A1} -> reduced to the two pairs.
        assert set(sub.edges) == {Schema(["A1", "A2"]), Schema(["A2", "A3"])}


class TestDeletions:
    def test_vertex_deletion(self):
        h = triangle_hypergraph()
        smaller = h.delete_vertex("A1")
        assert "A1" not in smaller.vertices
        assert all("A1" not in e for e in smaller.edges)

    def test_vertex_deletion_missing_raises(self):
        with pytest.raises(SchemaError):
            triangle_hypergraph().delete_vertex("Z")

    def test_covered_edges(self):
        h = Hypergraph(None, [("A", "B"), ("A",)])
        assert h.covered_edges() == [Schema(["A"])]

    def test_delete_covered_edge(self):
        h = Hypergraph(None, [("A", "B"), ("A",)])
        smaller = h.delete_covered_edge(Schema(["A"]))
        assert smaller.edges == (Schema(["A", "B"]),)

    def test_delete_uncovered_edge_is_unsafe(self):
        h = triangle_hypergraph()
        with pytest.raises(SchemaError):
            h.delete_covered_edge(h.edges[0])


class TestUniformityRegularity:
    def test_cycle_is_2_uniform_2_regular(self):
        c = cycle_hypergraph(5)
        assert c.uniformity() == 2
        assert c.regularity() == 2
        assert c.is_k_uniform(2) and c.is_d_regular(2)

    def test_hn_is_uniform_regular(self):
        h = hn_hypergraph(5)
        assert h.uniformity() == 4
        assert h.regularity() == 4

    def test_path_is_not_regular(self):
        p = path_hypergraph(4)
        assert p.uniformity() == 2
        assert p.regularity() is None

    def test_mixed_arity_not_uniform(self):
        h = Hypergraph(None, [("A", "B"), ("A", "B", "C")])
        assert h.uniformity() is None


class TestShapeRecognizers:
    def test_cycle_shapes(self):
        assert cycle_hypergraph(3).is_cycle_shape()
        assert cycle_hypergraph(6).is_cycle_shape()
        assert not path_hypergraph(4).is_cycle_shape()
        assert not hn_hypergraph(4).is_cycle_shape()

    def test_hn_shapes(self):
        assert hn_hypergraph(3).is_hn_shape()
        assert hn_hypergraph(5).is_hn_shape()
        assert not cycle_hypergraph(5).is_hn_shape()

    def test_triangle_is_both(self):
        t = triangle_hypergraph()
        assert t.is_cycle_shape() and t.is_hn_shape()


def test_hypergraph_of_bags():
    from repro.core.bags import Bag

    bags = [
        Bag.empty(Schema(["A", "B"])),
        Bag.empty(Schema(["B", "C"])),
        Bag.empty(Schema(["A", "B"])),  # duplicate schema collapses
    ]
    h = hypergraph_of_bags(bags)
    assert len(h.edges) == 2
