"""The exception hierarchy: every library error is catchable as
ReproError, and each failure mode raises its advertised class."""

import pytest

from repro.errors import (
    AcyclicSchemaError,
    CyclicSchemaError,
    InconsistentError,
    MultiplicityError,
    NotRegularError,
    ReductionError,
    ReproError,
    SchemaError,
    SearchLimitExceeded,
    SolverError,
)

ALL_ERRORS = [
    AcyclicSchemaError,
    CyclicSchemaError,
    InconsistentError,
    MultiplicityError,
    NotRegularError,
    ReductionError,
    SchemaError,
    SearchLimitExceeded,
    SolverError,
]


@pytest.mark.parametrize("error", ALL_ERRORS)
def test_all_derive_from_repro_error(error):
    assert issubclass(error, ReproError)
    assert issubclass(error, Exception)


def test_single_catch_covers_library_failures():
    """A caller wrapping the library in `except ReproError` catches
    every advertised failure mode."""
    from repro.core.bags import Bag
    from repro.core.schema import Schema
    from repro.consistency.pairwise import consistency_witness
    from repro.hypergraphs.acyclicity import join_tree
    from repro.hypergraphs.families import triangle_hypergraph
    from repro.hypergraphs.obstructions import find_obstruction
    from repro.hypergraphs.families import path_hypergraph

    failures = [
        lambda: Schema(["A", "A"]),
        lambda: Bag(Schema(["A"]), {(1,): -1}),
        lambda: consistency_witness(
            Bag.from_pairs(Schema(["A"]), [((0,), 1)]),
            Bag.from_pairs(Schema(["B"]), [((0,), 2)]),
        ),
        lambda: join_tree(triangle_hypergraph()),
        lambda: find_obstruction(path_hypergraph(3)),
    ]
    for fail in failures:
        with pytest.raises(ReproError):
            fail()


def test_specific_types_are_distinguishable():
    """Cyclic-schema and inconsistency failures are separately
    catchable (callers branch on them)."""
    from repro.consistency.global_ import acyclic_global_witness
    from repro.consistency.local_global import tseitin_collection
    from repro.core.bags import Bag
    from repro.core.schema import Schema
    from repro.hypergraphs.families import cycle_hypergraph

    r = Bag.from_pairs(Schema(["A", "B"]), [((1, 2), 3)])
    s = Bag.from_pairs(Schema(["B", "C"]), [((2, 1), 1)])
    with pytest.raises(InconsistentError):
        acyclic_global_witness([r, s])

    bags = tseitin_collection(list(cycle_hypergraph(4).edges))
    # Pairwise consistent, cyclic schema: the cyclic error wins.
    with pytest.raises(CyclicSchemaError):
        acyclic_global_witness(bags)


def test_search_limit_carries_budget_info():
    from repro.lp.integer_feasibility import ZeroOneSystem, count_solutions

    system = ZeroOneSystem(
        8, tuple((0,) for _ in range(8)), (40,)
    )
    with pytest.raises(SearchLimitExceeded, match="50"):
        count_solutions(system, node_budget=50)
