"""CLI tests: every subcommand, through main()."""

import json

import pytest

from repro.cli import main
from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.hypergraphs.families import path_hypergraph, triangle_hypergraph
from repro.io import (
    bag_from_json,
    bag_to_json,
    collection_from_json,
    collection_to_json,
    hypergraph_to_json,
)

AB = Schema(["A", "B"])
BC = Schema(["B", "C"])


@pytest.fixture
def pair_files(tmp_path):
    r = Bag.from_pairs(AB, [((1, 2), 1), ((2, 2), 1)])
    s = Bag.from_pairs(BC, [((2, 1), 1), ((2, 2), 1)])
    rp = tmp_path / "r.json"
    sp = tmp_path / "s.json"
    rp.write_text(bag_to_json(r))
    sp.write_text(bag_to_json(s))
    return rp, sp, r, s


class TestCheckPair:
    def test_consistent_exit_zero(self, pair_files, capsys):
        rp, sp, _, _ = pair_files
        assert main(["check-pair", str(rp), str(sp)]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_inconsistent_exit_one(self, tmp_path, pair_files, capsys):
        rp, _, _, s = pair_files
        bad = tmp_path / "bad.json"
        bad.write_text(bag_to_json(s + s))
        assert main(["check-pair", str(rp), str(bad)]) == 1

    def test_missing_file_exit_two(self, pair_files):
        rp, _, _, _ = pair_files
        assert main(["check-pair", str(rp), "/nonexistent.json"]) == 2


class TestWitness:
    def test_witness_to_stdout(self, pair_files, capsys):
        rp, sp, r, s = pair_files
        assert main(["witness", str(rp), str(sp)]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # table header

    def test_witness_to_file(self, tmp_path, pair_files):
        rp, sp, r, s = pair_files
        out = tmp_path / "w.json"
        assert main(["witness", str(rp), str(sp), "-o", str(out)]) == 0
        witness = bag_from_json(out.read_text())
        from repro.consistency.witness import is_witness

        assert is_witness([r, s], witness)

    def test_minimal_flag(self, tmp_path, pair_files):
        rp, sp, r, s = pair_files
        out = tmp_path / "w.json"
        assert main(
            ["witness", str(rp), str(sp), "--minimal", "-o", str(out)]
        ) == 0
        witness = bag_from_json(out.read_text())
        assert witness.support_size <= r.support_size + s.support_size

    def test_inconsistent_exit_one(self, tmp_path, pair_files):
        rp, _, _, s = pair_files
        bad = tmp_path / "bad.json"
        bad.write_text(bag_to_json(s + s))
        assert main(["witness", str(rp), str(bad)]) == 1


class TestGlobalCheck:
    def test_acyclic_collection(self, tmp_path, rng, capsys):
        from repro.workloads.generators import planted_collection

        _, bags = planted_collection([AB, BC], rng, n_tuples=3)
        path = tmp_path / "coll.json"
        path.write_text(collection_to_json(bags))
        assert main(["global-check", str(path)]) == 0
        out = capsys.readouterr().out
        assert "globally consistent" in out
        assert "method: acyclic" in out

    def test_tseitin_collection_fails(self, tmp_path, capsys):
        from repro.consistency.local_global import tseitin_collection

        bags = tseitin_collection(list(triangle_hypergraph().edges))
        path = tmp_path / "coll.json"
        path.write_text(collection_to_json(bags))
        assert main(["global-check", str(path)]) == 1
        assert "globally inconsistent" in capsys.readouterr().out

    def test_witness_output_file(self, tmp_path, rng):
        from repro.consistency.witness import is_witness
        from repro.workloads.generators import planted_collection

        _, bags = planted_collection([AB, BC], rng, n_tuples=3)
        coll = tmp_path / "coll.json"
        out = tmp_path / "w.json"
        coll.write_text(collection_to_json(bags))
        assert main(["global-check", str(coll), "-o", str(out)]) == 0
        assert is_witness(bags, bag_from_json(out.read_text()))


class TestAuditSchema:
    def test_acyclic_schema(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        path.write_text(hypergraph_to_json(path_hypergraph(4)))
        assert main(["audit-schema", str(path)]) == 0
        assert "acyclic" in capsys.readouterr().out

    def test_cyclic_schema_with_counterexample(self, tmp_path, capsys):
        from repro.consistency.local_global import verify_counterexample

        path = tmp_path / "h.json"
        out = tmp_path / "cex.json"
        path.write_text(hypergraph_to_json(triangle_hypergraph()))
        assert main(
            ["audit-schema", str(path), "--counterexample", str(out)]
        ) == 1
        assert "cyclic" in capsys.readouterr().out
        bags = collection_from_json(out.read_text())
        assert verify_counterexample(bags)


class TestShow:
    def test_show_renders_table(self, pair_files, capsys):
        rp, _, _, _ = pair_files
        assert main(["show", str(rp)]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].split() == ["A", "B", "#"]

    def test_malformed_json_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": ["A"]}))
        assert main(["show", str(bad)]) == 2


class TestBatch:
    def jobs_file(self, tmp_path, r, s, bad):
        from repro.io import bag_to_dict

        jobs = {
            "pairs": [
                [bag_to_dict(r), bag_to_dict(s)],
                [bag_to_dict(r), bag_to_dict(bad)],
                [bag_to_dict(r), bag_to_dict(s)],
            ],
            "collections": [{"bags": [bag_to_dict(r), bag_to_dict(s)]}],
            "suites": [["planted-path", 3, 0], ["perturbed-path", 3, 0]],
        }
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(jobs))
        return path

    def test_batch_report(self, tmp_path, pair_files, capsys):
        _, _, r, s = pair_files
        bad = s + s
        path = self.jobs_file(tmp_path, r, s, bad)
        assert main(["batch", str(path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert [entry["consistent"] for entry in report["pairs"]] == [
            True,
            False,
            True,
        ]
        assert report["collections"][0] == {
            "consistent": True,
            "method": "acyclic",
        }
        assert [entry["ok"] for entry in report["suites"]] == [True, True]
        # The duplicate pair job must be served from the engine cache.
        assert report["stats"]["consistency_hits"] >= 1

    def test_batch_witnesses(self, tmp_path, pair_files, capsys):
        from repro.consistency.witness import is_witness
        from repro.io import bag_from_dict

        _, _, r, s = pair_files
        bad = s + s
        path = self.jobs_file(tmp_path, r, s, bad)
        assert main(["batch", str(path), "--witnesses"]) == 0
        report = json.loads(capsys.readouterr().out)
        witness = bag_from_dict(report["pairs"][0]["witness"])
        assert is_witness([r, s], witness)
        assert "witness" not in report["pairs"][1]

    def test_batch_output_file(self, tmp_path, pair_files, capsys):
        _, _, r, s = pair_files
        path = self.jobs_file(tmp_path, r, s, s + s)
        out = tmp_path / "report.json"
        assert main(["batch", str(path), "-o", str(out)]) == 0
        report = json.loads(out.read_text())
        assert "stats" in report

    def test_batch_rejects_unknown_keys(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({"nonsense": []}))
        assert main(["batch", str(path)]) == 2

    def test_batch_rejects_unknown_suite(self, tmp_path, capsys):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({"suites": [["no-such-suite", 3, 0]]}))
        assert main(["batch", str(path)]) == 2
        assert "bad suite spec" in capsys.readouterr().err

    def test_batch_rejects_malformed_suite_spec(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({"suites": [["planted-path"]]}))
        assert main(["batch", str(path)]) == 2

    def test_batch_rejects_malformed_pair_entry(self, tmp_path, capsys):
        from repro.io import bag_to_dict

        path = tmp_path / "jobs.json"
        r = Bag.from_pairs(AB, [((1, 2), 1)])
        path.write_text(json.dumps({"pairs": [[bag_to_dict(r)]]}))
        assert main(["batch", str(path)]) == 2
        assert "bad pair entry" in capsys.readouterr().err

    def test_batch_rejects_malformed_collection_entry(self, tmp_path, capsys):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({"collections": [{}]}))
        assert main(["batch", str(path)]) == 2
        assert "bad collection entry" in capsys.readouterr().err

    def test_batch_parallelism_matches_serial(self, tmp_path, pair_files,
                                              capsys):
        _, _, r, s = pair_files
        path = self.jobs_file(tmp_path, r, s, s + s)
        assert main(["batch", str(path)]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["batch", str(path), "--parallelism", "4"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["pairs"] == serial["pairs"]
        assert parallel["collections"] == serial["collections"]
        assert parallel["suites"] == serial["suites"]

    def test_batch_capacity_bounds_the_engine_cache(self, tmp_path,
                                                    pair_files, capsys):
        _, _, r, s = pair_files
        path = self.jobs_file(tmp_path, r, s, s + s)
        assert main(["batch", str(path), "--capacity", "2"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["stats"]["evictions"] >= 1

    def test_batch_rejects_bad_parallelism(self, tmp_path, pair_files,
                                           capsys):
        _, _, r, s = pair_files
        path = self.jobs_file(tmp_path, r, s, s + s)
        assert main(["batch", str(path), "--parallelism", "0"]) == 2
        assert "parallelism" in capsys.readouterr().err

    def test_batch_method_reaches_suites(self, tmp_path, capsys):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({"suites": [["planted-path", 3, 0]]}))
        assert main(["batch", str(path), "--method", "search"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["suites"][0]["method"] == "search"
        assert report["suites"][0]["ok"] is True

    def test_batch_missing_file_exit_two(self):
        assert main(["batch", "/nonexistent-jobs.json"]) == 2

    def test_batch_invalid_json_exit_two(self, tmp_path, capsys):
        path = tmp_path / "jobs.json"
        path.write_text("{definitely not json")
        assert main(["batch", str(path)]) == 2
        err = capsys.readouterr().err
        assert "invalid JSON" in err
        assert len(err.strip().splitlines()) == 1  # one structured line

    def test_batch_backend_matches_serial(self, tmp_path, pair_files,
                                          capsys):
        _, _, r, s = pair_files
        path = self.jobs_file(tmp_path, r, s, s + s)
        assert main(["batch", str(path)]) == 0
        serial = json.loads(capsys.readouterr().out)
        for backend in ("serial", "thread", "process"):
            assert main(
                ["batch", str(path), "--backend", backend,
                 "--parallelism", "2"]
            ) == 0
            report = json.loads(capsys.readouterr().out)
            assert report["pairs"] == serial["pairs"]
            assert report["collections"] == serial["collections"]
            assert report["suites"] == serial["suites"]

    def test_batch_report_includes_store_stats(self, tmp_path, pair_files,
                                               capsys):
        _, _, r, s = pair_files
        path = self.jobs_file(tmp_path, r, s, s + s)
        assert main(["batch", str(path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["store"]["entries"] >= 1
        assert 0.0 <= report["store"]["hit_rate"] <= 1.0


class TestServe:
    def test_serve_requires_exactly_one_bind(self, capsys):
        assert main(["serve"]) == 2
        assert "--socket or --port" in capsys.readouterr().err
        assert main(
            ["serve", "--socket", "/tmp/x.sock", "--port", "1"]
        ) == 2

    def test_serve_rejects_bad_knobs(self, capsys):
        assert main(["serve", "--port", "0", "--parallelism", "0"]) == 2
        assert "parallelism" in capsys.readouterr().err
        assert main(["serve", "--port", "0", "--capacity", "0"]) == 2
        assert "capacity" in capsys.readouterr().err
