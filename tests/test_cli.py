"""CLI tests: every subcommand, through main()."""

import json

import pytest

from repro.cli import main
from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.hypergraphs.families import path_hypergraph, triangle_hypergraph
from repro.io import (
    bag_from_json,
    bag_to_json,
    collection_from_json,
    collection_to_json,
    hypergraph_to_json,
)

AB = Schema(["A", "B"])
BC = Schema(["B", "C"])


@pytest.fixture
def pair_files(tmp_path):
    r = Bag.from_pairs(AB, [((1, 2), 1), ((2, 2), 1)])
    s = Bag.from_pairs(BC, [((2, 1), 1), ((2, 2), 1)])
    rp = tmp_path / "r.json"
    sp = tmp_path / "s.json"
    rp.write_text(bag_to_json(r))
    sp.write_text(bag_to_json(s))
    return rp, sp, r, s


class TestCheckPair:
    def test_consistent_exit_zero(self, pair_files, capsys):
        rp, sp, _, _ = pair_files
        assert main(["check-pair", str(rp), str(sp)]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_inconsistent_exit_one(self, tmp_path, pair_files, capsys):
        rp, _, _, s = pair_files
        bad = tmp_path / "bad.json"
        bad.write_text(bag_to_json(s + s))
        assert main(["check-pair", str(rp), str(bad)]) == 1

    def test_missing_file_exit_two(self, pair_files):
        rp, _, _, _ = pair_files
        assert main(["check-pair", str(rp), "/nonexistent.json"]) == 2


class TestWitness:
    def test_witness_to_stdout(self, pair_files, capsys):
        rp, sp, r, s = pair_files
        assert main(["witness", str(rp), str(sp)]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # table header

    def test_witness_to_file(self, tmp_path, pair_files):
        rp, sp, r, s = pair_files
        out = tmp_path / "w.json"
        assert main(["witness", str(rp), str(sp), "-o", str(out)]) == 0
        witness = bag_from_json(out.read_text())
        from repro.consistency.witness import is_witness

        assert is_witness([r, s], witness)

    def test_minimal_flag(self, tmp_path, pair_files):
        rp, sp, r, s = pair_files
        out = tmp_path / "w.json"
        assert main(
            ["witness", str(rp), str(sp), "--minimal", "-o", str(out)]
        ) == 0
        witness = bag_from_json(out.read_text())
        assert witness.support_size <= r.support_size + s.support_size

    def test_inconsistent_exit_one(self, tmp_path, pair_files):
        rp, _, _, s = pair_files
        bad = tmp_path / "bad.json"
        bad.write_text(bag_to_json(s + s))
        assert main(["witness", str(rp), str(bad)]) == 1


class TestGlobalCheck:
    def test_acyclic_collection(self, tmp_path, rng, capsys):
        from repro.workloads.generators import planted_collection

        _, bags = planted_collection([AB, BC], rng, n_tuples=3)
        path = tmp_path / "coll.json"
        path.write_text(collection_to_json(bags))
        assert main(["global-check", str(path)]) == 0
        out = capsys.readouterr().out
        assert "globally consistent" in out
        assert "method: acyclic" in out

    def test_tseitin_collection_fails(self, tmp_path, capsys):
        from repro.consistency.local_global import tseitin_collection

        bags = tseitin_collection(list(triangle_hypergraph().edges))
        path = tmp_path / "coll.json"
        path.write_text(collection_to_json(bags))
        assert main(["global-check", str(path)]) == 1
        assert "globally inconsistent" in capsys.readouterr().out

    def test_witness_output_file(self, tmp_path, rng):
        from repro.consistency.witness import is_witness
        from repro.workloads.generators import planted_collection

        _, bags = planted_collection([AB, BC], rng, n_tuples=3)
        coll = tmp_path / "coll.json"
        out = tmp_path / "w.json"
        coll.write_text(collection_to_json(bags))
        assert main(["global-check", str(coll), "-o", str(out)]) == 0
        assert is_witness(bags, bag_from_json(out.read_text()))


class TestAuditSchema:
    def test_acyclic_schema(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        path.write_text(hypergraph_to_json(path_hypergraph(4)))
        assert main(["audit-schema", str(path)]) == 0
        assert "acyclic" in capsys.readouterr().out

    def test_cyclic_schema_with_counterexample(self, tmp_path, capsys):
        from repro.consistency.local_global import verify_counterexample

        path = tmp_path / "h.json"
        out = tmp_path / "cex.json"
        path.write_text(hypergraph_to_json(triangle_hypergraph()))
        assert main(
            ["audit-schema", str(path), "--counterexample", str(out)]
        ) == 1
        assert "cyclic" in capsys.readouterr().out
        bags = collection_from_json(out.read_text())
        assert verify_counterexample(bags)


class TestShow:
    def test_show_renders_table(self, pair_files, capsys):
        rp, _, _, _ = pair_files
        assert main(["show", str(rp)]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].split() == ["A", "B", "#"]

    def test_malformed_json_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": ["A"]}))
        assert main(["show", str(bad)]) == 2
