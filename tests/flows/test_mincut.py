"""Min-cut extraction and max-flow/min-cut duality."""

import networkx as nx
from hypothesis import given
from hypothesis import strategies as st

from repro.flows.maxflow import max_flow, min_cut, verify_cut
from repro.flows.network import FlowNetwork


def diamond() -> FlowNetwork:
    net = FlowNetwork("s", "t")
    net.add_edge("s", "a", 3)
    net.add_edge("s", "b", 2)
    net.add_edge("a", "t", 2)
    net.add_edge("b", "t", 3)
    net.add_edge("a", "b", 10)
    return net


class TestMinCut:
    def test_cut_equals_flow_on_diamond(self):
        net = diamond()
        cut = min_cut(net)
        assert cut.capacity == max_flow(net).value == 5
        assert verify_cut(net, cut)

    def test_bottleneck_cut_edges(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 100)
        net.add_edge("a", "b", 1)
        net.add_edge("b", "t", 100)
        cut = min_cut(net)
        assert cut.cut_edges == (("a", "b"),)
        assert cut.capacity == 1

    def test_source_only_cut(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "t", 4)
        cut = min_cut(net)
        assert cut.source_side == frozenset({"s"})

    def test_disconnected_zero_cut(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 5)
        cut = min_cut(net)
        assert cut.capacity == 0
        assert cut.cut_edges == ()

    def test_verifier_rejects_bad_sets(self):
        from repro.flows.maxflow import CutResult

        net = diamond()
        bad = CutResult(frozenset({"t"}), (), 0)
        assert not verify_cut(net, bad)
        missing_edges = CutResult(frozenset({"s"}), (), 0)
        assert not verify_cut(net, missing_edges)


@st.composite
def random_networks(draw):
    n = draw(st.integers(2, 6))
    nodes = list(range(n))
    edges = draw(
        st.dictionaries(
            st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)).filter(
                lambda e: e[0] != e[1]
            ),
            st.integers(0, 15),
            max_size=12,
        )
    )
    net = FlowNetwork(0, n - 1)
    for (u, v), c in edges.items():
        net.add_edge(u, v, c)
    return net


@given(random_networks())
def test_duality_and_agreement_with_networkx(net):
    cut = min_cut(net)
    assert verify_cut(net, cut)
    g = nx.DiGraph()
    g.add_nodes_from(net.nodes)
    for u, v, c in net.edges():
        g.add_edge(u, v, capacity=c)
    expected, _ = nx.minimum_cut(g, net.source, net.sink)
    assert cut.capacity == expected
    assert cut.capacity == max_flow(net).value
