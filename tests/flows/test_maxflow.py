"""Unit and property tests for Dinic's max-flow (cross-checked against
networkx)."""

import networkx as nx
from hypothesis import given
from hypothesis import strategies as st

from repro.flows.maxflow import max_flow, saturated_flow, verify_flow
from repro.flows.network import FlowNetwork


def diamond() -> FlowNetwork:
    net = FlowNetwork("s", "t")
    net.add_edge("s", "a", 3)
    net.add_edge("s", "b", 2)
    net.add_edge("a", "t", 2)
    net.add_edge("b", "t", 3)
    net.add_edge("a", "b", 10)
    return net


class TestMaxFlow:
    def test_diamond_value(self):
        assert max_flow(diamond()).value == 5

    def test_flows_verify(self):
        net = diamond()
        result = max_flow(net)
        assert verify_flow(net, result)

    def test_disconnected_is_zero(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 5)
        net.add_edge("b", "t", 5)
        assert max_flow(net).value == 0

    def test_single_edge(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "t", 7)
        result = max_flow(net)
        assert result.value == 7
        assert result.on("s", "t") == 7

    def test_bottleneck(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 100)
        net.add_edge("a", "b", 1)
        net.add_edge("b", "t", 100)
        assert max_flow(net).value == 1

    def test_big_integer_capacities(self):
        net = FlowNetwork("s", "t")
        big = 2**100
        net.add_edge("s", "a", big)
        net.add_edge("a", "t", big)
        assert max_flow(net).value == big

    def test_flow_values_are_integers(self):
        result = max_flow(diamond())
        assert all(isinstance(v, int) for v in result.flow.values())


class TestSaturatedFlow:
    def test_saturated_when_totals_match(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 2)
        net.add_edge("s", "b", 3)
        net.add_edge("a", "x", 10)
        net.add_edge("b", "x", 10)
        net.add_edge("x", "t", 5)
        result = saturated_flow(net)
        assert result is not None
        assert result.value == 5

    def test_not_saturated_on_mismatch(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 5)
        net.add_edge("a", "t", 3)
        assert saturated_flow(net) is None

    def test_not_saturated_when_capacity_blocks(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 3)
        net.add_edge("a", "b", 1)  # bottleneck below source total
        net.add_edge("b", "t", 3)
        assert saturated_flow(net) is None

    def test_empty_network_trivially_saturated(self):
        net = FlowNetwork("s", "t")
        result = saturated_flow(net)
        assert result is not None and result.value == 0


class TestVerifier:
    def test_rejects_over_capacity(self):
        from repro.flows.maxflow import FlowResult

        net = FlowNetwork("s", "t")
        net.add_edge("s", "t", 1)
        assert not verify_flow(net, FlowResult(2, {("s", "t"): 2}))

    def test_rejects_conservation_violation(self):
        from repro.flows.maxflow import FlowResult

        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 2)
        net.add_edge("a", "t", 2)
        assert not verify_flow(
            net, FlowResult(2, {("s", "a"): 2, ("a", "t"): 1})
        )


@st.composite
def random_networks(draw):
    n = draw(st.integers(2, 6))
    nodes = list(range(n))
    edges = draw(
        st.dictionaries(
            st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)).filter(
                lambda e: e[0] != e[1]
            ),
            st.integers(0, 20),
            max_size=12,
        )
    )
    net = FlowNetwork(0, n - 1)
    for (u, v), c in edges.items():
        net.add_edge(u, v, c)
    return net


@given(random_networks())
def test_agreement_with_networkx(net):
    """Max-flow values agree with networkx on random integer networks."""
    g = nx.DiGraph()
    g.add_nodes_from(net.nodes)
    for u, v, c in net.edges():
        g.add_edge(u, v, capacity=c)
    expected = nx.maximum_flow_value(g, net.source, net.sink)
    result = max_flow(net)
    assert result.value == expected
    assert verify_flow(net, result)
