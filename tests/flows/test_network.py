"""Unit tests for FlowNetwork."""

import pytest

from repro.flows.network import FlowNetwork


class TestConstruction:
    def test_source_equals_sink_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork("s", "s")

    def test_self_loop_rejected(self):
        net = FlowNetwork("s", "t")
        with pytest.raises(ValueError):
            net.add_edge("a", "a", 1)

    def test_negative_capacity_rejected(self):
        net = FlowNetwork("s", "t")
        with pytest.raises(ValueError):
            net.add_edge("s", "t", -1)

    def test_non_integer_capacity_rejected(self):
        net = FlowNetwork("s", "t")
        with pytest.raises(ValueError):
            net.add_edge("s", "t", 1.5)

    def test_parallel_edges_merge(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "t", 2)
        net.add_edge("s", "t", 3)
        assert net.capacity("s", "t") == 5
        assert net.edge_count() == 1


class TestQueries:
    def build(self) -> FlowNetwork:
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 3)
        net.add_edge("s", "b", 4)
        net.add_edge("a", "t", 5)
        net.add_edge("b", "t", 1)
        return net

    def test_source_and_sink_capacity(self):
        net = self.build()
        assert net.source_capacity() == 7
        assert net.sink_capacity() == 6

    def test_missing_edge_capacity_zero(self):
        assert self.build().capacity("a", "b") == 0

    def test_copy_is_independent(self):
        net = self.build()
        clone = net.copy()
        clone.remove_edge("s", "a")
        assert net.capacity("s", "a") == 3
        assert clone.capacity("s", "a") == 0

    def test_remove_missing_edge_raises(self):
        with pytest.raises(KeyError):
            self.build().remove_edge("x", "y")

    def test_nodes(self):
        assert self.build().nodes == {"s", "t", "a", "b"}
