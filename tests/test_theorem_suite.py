"""The heavy theorem suite: the paper's central claims at higher
hypothesis example counts.

These are the properties whose failure would falsify the reproduction;
they run with more examples than the per-module tests, on instance sizes
where all oracles are still fast.
"""


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consistency import (
    are_consistent,
    consistency_witness,
    decide_global_consistency,
    is_witness,
    minimal_pairwise_witness,
    pairwise_consistent,
)
from repro.consistency.pairwise import (
    consistent_via_flow,
    consistent_via_integer_search,
    consistent_via_lp,
)
from repro.hypergraphs import is_acyclic, is_acyclic_via_chordal_conformal
from repro.hypergraphs.hypergraph import hypergraph_of_bags
from tests.conftest import (
    bags_over,
    consistent_bag_pairs,
    hypergraphs,
    planted_collections,
    schema_pairs,
)

HEAVY = settings(
    deadline=None,
    max_examples=150,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def arbitrary_pairs(draw):
    """Pairs with NO planted witness — consistent and inconsistent mixed."""
    left, right = draw(schema_pairs())
    r = draw(bags_over(left, max_tuples=4, max_multiplicity=3))
    s = draw(bags_over(right, max_tuples=4, max_multiplicity=3))
    return r, s


@HEAVY
@given(arbitrary_pairs())
def test_lemma2_four_deciders_agree_on_arbitrary_pairs(pair):
    """Lemma 2 on arbitrary pairs: the four polynomial/exact deciders
    give one answer (the marginal test is the reference)."""
    r, s = pair
    expected = are_consistent(r, s)
    assert consistent_via_flow(r, s) == expected
    assert consistent_via_integer_search(r, s) == expected
    assert consistent_via_lp(r, s) == expected


@HEAVY
@given(consistent_bag_pairs())
def test_corollary1_and_4_on_consistent_pairs(data):
    """Witness and minimal witness always verify; Theorem 5 bound always
    holds.

    Note: minimality is *inclusion*-minimality of the support, not
    minimum cardinality — a different witness may have fewer tuples on
    an incomparable support, so no cross-witness size comparison is
    asserted."""
    _, r, s = data
    w = consistency_witness(r, s)
    assert is_witness([r, s], w)
    mw = minimal_pairwise_witness(r, s)
    assert is_witness([r, s], mw)
    assert mw.support_size <= r.support_size + s.support_size


@HEAVY
@given(planted_collections(min_bags=2, max_bags=4))
def test_theorem2_acyclic_direction(data):
    """Pairwise consistent + acyclic => globally consistent, on every
    planted collection whose schema happens to be acyclic."""
    _, bags = data
    assert pairwise_consistent(bags)
    if is_acyclic(hypergraph_of_bags(bags)):
        assert decide_global_consistency(bags)


@HEAVY
@given(hypergraphs(max_edges=6, max_arity=3))
def test_theorem1_structural_equivalence(h):
    """(a) <=> (b) at high example count."""
    assert is_acyclic(h) == is_acyclic_via_chordal_conformal(h)


@HEAVY
@given(arbitrary_pairs())
def test_consistency_is_symmetric(pair):
    r, s = pair
    assert are_consistent(r, s) == are_consistent(s, r)


@HEAVY
@given(consistent_bag_pairs(), st.integers(1, 4))
def test_consistency_is_scale_invariant(data, factor):
    """Scaling both bags by the same factor preserves consistency and
    scales the witness."""
    _, r, s = data
    rs, ss = r.scale(factor), s.scale(factor)
    assert are_consistent(rs, ss)
    w = consistency_witness(r, s)
    assert is_witness([rs, ss], w.scale(factor))


@HEAVY
@given(arbitrary_pairs())
def test_certificates_complete_and_sound(pair):
    """A pairwise certificate exists iff the pair is inconsistent, and
    always verifies."""
    from repro.consistency import pairwise_certificate, verify_certificate

    r, s = pair
    cert = pairwise_certificate(r, s)
    if are_consistent(r, s):
        assert cert is None
    else:
        assert cert is not None
        assert verify_certificate([r, s], cert)


@HEAVY
@given(consistent_bag_pairs())
def test_witness_marginal_roundtrip(data):
    """Any witness marginalizes exactly onto its generators — no drift
    through schema canonicalization."""
    plant, r, s = data
    assert plant.marginal(r.schema) == r
    assert plant.marginal(s.schema) == s
    w = consistency_witness(r, s)
    assert w.marginal(r.schema) == r
    assert w.marginal(s.schema) == s
