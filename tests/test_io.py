"""Unit and property tests for serialization (repro.io)."""

import json

import pytest
from hypothesis import given

from repro.core.bags import Bag
from repro.core.relations import Relation
from repro.core.schema import Schema
from repro.errors import SchemaError
from repro.hypergraphs.families import cycle_hypergraph, path_hypergraph
from repro.io import (
    bag_from_dict,
    bag_from_json,
    bag_from_table,
    bag_to_json,
    collection_from_json,
    collection_to_json,
    hypergraph_from_json,
    hypergraph_to_json,
    relation_from_json,
    relation_to_json,
)
from tests.conftest import bags, relations_over, schemas

AB = Schema(["A", "B"])


class TestBagJson:
    def test_roundtrip(self):
        bag = Bag.from_pairs(AB, [((1, 2), 3), (("x", "y"), 1)])
        assert bag_from_json(bag_to_json(bag)) == bag

    def test_empty_bag_roundtrip(self):
        assert bag_from_json(bag_to_json(Bag.empty(AB))) == Bag.empty(AB)

    def test_empty_schema_bag_roundtrip(self):
        bag = Bag.empty_schema_bag(7)
        assert bag_from_json(bag_to_json(bag)) == bag

    def test_big_multiplicities_are_exact(self):
        bag = Bag.from_pairs(AB, [((1, 2), 2**200)])
        assert bag_from_json(bag_to_json(bag)) == bag

    def test_output_is_valid_json(self):
        bag = Bag.from_pairs(AB, [((1, 2), 3)])
        data = json.loads(bag_to_json(bag))
        assert data["schema"] == ["A", "B"]

    def test_malformed_rejected(self):
        with pytest.raises(SchemaError):
            bag_from_dict({"schema": ["A"]})
        with pytest.raises(SchemaError):
            bag_from_dict({"schema": ["A"], "tuples": [[1, 2]]})

    @given(bags())
    def test_random_roundtrip(self, bag):
        assert bag_from_json(bag_to_json(bag)) == bag


class TestRelationJson:
    def test_roundtrip(self):
        rel = Relation.from_pairs(AB, [(1, 2), (3, 4)])
        assert relation_from_json(relation_to_json(rel)) == rel

    @given(schemas(1, 3).flatmap(lambda s: relations_over(s)))
    def test_random_roundtrip(self, rel):
        assert relation_from_json(relation_to_json(rel)) == rel


class TestCollectionJson:
    def test_roundtrip(self):
        bags_list = [
            Bag.from_pairs(AB, [((1, 2), 3)]),
            Bag.from_pairs(Schema(["B", "C"]), [((2, 1), 1)]),
        ]
        assert collection_from_json(collection_to_json(bags_list)) == bags_list

    def test_malformed_rejected(self):
        with pytest.raises(SchemaError):
            collection_from_json("{}")


class TestHypergraphJson:
    @pytest.mark.parametrize(
        "factory", [lambda: path_hypergraph(4), lambda: cycle_hypergraph(5)]
    )
    def test_roundtrip(self, factory):
        h = factory()
        assert hypergraph_from_json(hypergraph_to_json(h)) == h

    def test_isolated_vertices_survive(self):
        from repro.hypergraphs.hypergraph import Hypergraph

        h = Hypergraph(["A", "B", "Z"], [("A", "B")])
        assert hypergraph_from_json(hypergraph_to_json(h)) == h


class TestTableParsing:
    def test_parse_paper_table(self):
        text = "A  B  #\na1  b1  : 2\na2  b2  : 1\na3  b3  : 5"
        bag = bag_from_table(text)
        assert bag.multiplicity(("a3", "b3")) == 5
        assert bag.unary_size == 8

    def test_roundtrip_with_display(self):
        from repro.display import bag_table

        bag = Bag.from_pairs(AB, [((1, 2), 3), ((4, 5), 1)])
        assert bag_from_table(bag_table(bag)) == bag

    def test_integers_parsed(self):
        bag = bag_from_table("A  #\n42  : 1")
        assert bag.multiplicity((42,)) == 1

    def test_empty_marker(self):
        bag = bag_from_table("A  B  #\n(empty)")
        assert not bag

    def test_malformed_rejected(self):
        with pytest.raises(SchemaError):
            bag_from_table("")
        with pytest.raises(SchemaError):
            bag_from_table("A B\n1 2 : 3")  # header missing '#'
        with pytest.raises(SchemaError):
            bag_from_table("A B #\n1 2 3")  # row missing ':'
        with pytest.raises(SchemaError):
            bag_from_table("A B #\n1 : 3")  # arity mismatch
