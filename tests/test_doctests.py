"""Every doctest in every module of the package must pass.

Docstring examples are documentation the type checker cannot see; this
keeps them from rotting.
"""

import doctest
import importlib
import pkgutil

import repro


def iter_module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # executing the CLI entry point calls SystemExit
        yield info.name


def test_all_doctests_pass():
    total_attempted = 0
    failures = []
    for name in iter_module_names():
        module = importlib.import_module(name)
        result = doctest.testmod(module, verbose=False)
        total_attempted += result.attempted
        if result.failed:
            failures.append((name, result.failed))
    assert not failures, f"doctest failures: {failures}"
    # The package does carry doctests; a zero count would mean the
    # walker broke.
    assert total_attempted >= 5


def test_walker_sees_all_subpackages():
    names = set(iter_module_names())
    for expected in (
        "repro.core.bags",
        "repro.consistency.pairwise",
        "repro.hypergraphs.acyclicity",
        "repro.lp.simplex",
        "repro.flows.maxflow",
        "repro.reductions.three_dct",
        "repro.workloads.suites",
        "repro.analysis",
        "repro.io",
        "repro.cli",
    ):
        assert expected in names
