"""Theorem-by-theorem integration tests — every numbered claim in the
paper, run end to end on its own examples.

This file is the reproduction's spine: each test class carries the
paper's statement in its docstring and exercises the exact construction
the paper uses.
"""

import pytest

from repro.consistency import (
    ConsistencyProgram,
    acyclic_global_witness,
    are_consistent,
    bfmy_counterexample,
    check_theorem3_bounds,
    check_theorem5_bound,
    consistency_witness,
    counterexample_for_cyclic,
    decide_global_consistency,
    is_witness,
    minimal_pairwise_witness,
    minimize_witness,
    pairwise_consistent,
    relations_globally_consistent,
    relations_pairwise_consistent,
    tseitin_collection,
    verify_counterexample,
)
from repro.core import Schema
from repro.hypergraphs import (
    cycle_hypergraph,
    hn_hypergraph,
    is_acyclic,
    path_hypergraph,
    triangle_hypergraph,
)
from repro.lp import enumerate_solutions
from repro.workloads import example1_instance, witness_family_pair

AB = Schema(["A", "B"])
BC = Schema(["B", "C"])


class TestLemma1:
    """Every witness's support lies in the join of the supports."""

    def test_on_the_section3_pair(self):
        r, s = witness_family_pair(2)
        w = consistency_witness(r, s)
        join_support = r.support().join(s.support())
        assert w.support() <= join_support


class TestSection3WitnessFamily:
    """For n >= 2 the bags R_{n-1}, S_{n-1} are consistent with exactly
    2^(n-1) witnesses; the witnesses are pairwise incomparable under
    bag containment and their supports are proper subsets of the join
    support."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_witness_count_is_2_to_n_minus_1(self, n):
        r, s = witness_family_pair(n)
        program = ConsistencyProgram.build([r, s])
        solutions = enumerate_solutions(program.system)
        assert len(solutions) == 2 ** (n - 1)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_witnesses_pairwise_incomparable(self, n):
        r, s = witness_family_pair(n)
        program = ConsistencyProgram.build([r, s])
        witnesses = [
            program.witness_from_solution(sol)
            for sol in enumerate_solutions(program.system)
        ]
        for i in range(len(witnesses)):
            for j in range(len(witnesses)):
                if i != j:
                    assert not witnesses[i].bag_contained_in(witnesses[j])

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_witness_supports_properly_inside_join(self, n):
        r, s = witness_family_pair(n)
        join_support = r.support().join(s.support())
        program = ConsistencyProgram.build([r, s])
        for sol in enumerate_solutions(program.system):
            w = program.witness_from_solution(sol)
            assert w.support().rows < join_support.rows

    def test_n2_witnesses_are_T1_and_T2(self):
        """The two witnesses named in the paper."""
        r, s = witness_family_pair(2)
        program = ConsistencyProgram.build([r, s])
        witnesses = {
            frozenset(program.witness_from_solution(sol).items())
            for sol in enumerate_solutions(program.system)
        }
        t1 = frozenset({((1, 2, 2), 1), ((2, 2, 1), 1)})
        t2 = frozenset({((1, 2, 1), 1), ((2, 2, 2), 1)})
        assert witnesses == {t1, t2}

    def test_bag_join_is_not_a_witness(self):
        r, s = witness_family_pair(2)
        assert not is_witness([r, s], r.bag_join(s))


class TestLemma2:
    """Five equivalent statements for two-bag consistency (covered in
    depth in tests/consistency/test_pairwise.py; this is the paper-pair
    smoke version)."""

    def test_equivalence_on_paper_pair(self):
        from repro.consistency import (
            consistent_via_flow,
            consistent_via_integer_search,
            consistent_via_lp,
        )

        r, s = witness_family_pair(2)
        answers = {
            are_consistent(r, s),
            consistent_via_lp(r, s),
            consistent_via_integer_search(r, s),
            consistent_via_flow(r, s),
        }
        assert answers == {True}


class TestTheorem1And2Structure:
    """P_n acyclic; C_n, H_n cyclic (n >= 3); the four structural
    statements agree (deep version in tests/hypergraphs)."""

    def test_classification(self):
        assert is_acyclic(path_hypergraph(6))
        assert not is_acyclic(cycle_hypergraph(6))
        assert not is_acyclic(hn_hypergraph(4))


class TestTheorem2Semantics:
    """Local-to-global consistency for bags holds iff acyclic."""

    def test_acyclic_direction_on_path(self, rng):
        from repro.workloads import planted_collection

        schemas = list(path_hypergraph(4).edges)
        _, bags = planted_collection(schemas, rng)
        assert pairwise_consistent(bags)
        w = acyclic_global_witness(bags)
        assert is_witness(bags, w)

    @pytest.mark.parametrize(
        "factory", [triangle_hypergraph, lambda: cycle_hypergraph(4),
                    lambda: hn_hypergraph(4)],
        ids=["C3", "C4", "H4"],
    )
    def test_cyclic_direction(self, factory):
        bags = counterexample_for_cyclic(factory())
        assert verify_counterexample(bags)


class TestSection4RelationsCounterexample:
    """R(AB)={00,11}, S(BC)={01,10}, T(AC)={00,11}: pairwise consistent,
    not globally consistent (relations)."""

    def test_bfmy_example(self):
        rels = bfmy_counterexample()
        assert relations_pairwise_consistent(rels)
        assert not relations_globally_consistent(rels)


class TestTheorem3:
    """Witness size bounds; Corollary 3 (NP membership) via the small
    certificate."""

    def test_bounds_on_a_cyclic_witness(self, rng):
        from repro.consistency import global_witness
        from repro.workloads import random_collection_over

        bags = random_collection_over(triangle_hypergraph(), rng, n_tuples=3)
        result = global_witness(bags, method="search")
        assert result.consistent
        report = check_theorem3_bounds(bags, result.witness)
        assert report.multiplicity_ok and report.support_unary_ok

    def test_minimal_witness_binary_bound(self, rng):
        from repro.consistency import global_witness
        from repro.workloads import random_collection_over

        bags = random_collection_over(triangle_hypergraph(), rng, n_tuples=2)
        result = global_witness(bags, method="search")
        slim = minimize_witness(bags, result.witness)
        report = check_theorem3_bounds(bags, slim, minimal=True)
        assert report.all_ok


class TestExample1:
    """Binary multiplicities force the third statement of Theorem 3: the
    join-shaped witness has support 2^n while the input has size
    O(n^2)."""

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_join_witness_is_exponential(self, n):
        bags, witness = example1_instance(n)
        assert is_witness(bags, witness)
        assert witness.support_size == 2**n
        input_support = sum(b.support_size for b in bags)
        assert input_support == 4 * (n - 1)


class TestTheorem4Dichotomy:
    """GCPB(H): polynomial for acyclic H, NP-complete for cyclic H.  The
    complexity claim itself is asymptotic; here we check the algorithmic
    split: the acyclic decider never searches, the cyclic one does."""

    def test_acyclic_path_answered_by_pairwise(self, rng):
        from repro.consistency import global_witness
        from repro.workloads import planted_collection

        schemas = list(path_hypergraph(5).edges)
        _, bags = planted_collection(schemas, rng)
        result = global_witness(bags)
        assert result.method == "acyclic"

    def test_cyclic_triangle_goes_to_search(self, rng):
        from repro.consistency import global_witness
        from repro.workloads import random_collection_over

        bags = random_collection_over(triangle_hypergraph(), rng, n_tuples=2)
        result = global_witness(bags)
        assert result.method == "search"

    def test_gcpb_c3_equals_3dct(self):
        """Lemma 6's observation: GCPB(C3) generalizes 3DCT."""
        from repro.reductions import ThreeDCT, decide_3dct

        yes = ThreeDCT(2, {(1, 1): 1}, {(1, 1): 1}, {(1, 1): 1})
        no = ThreeDCT(2, {(1, 1): 2}, {(1, 1): 1}, {(1, 1): 1})
        assert decide_3dct(yes)
        assert not decide_3dct(no)


class TestTheorem5AndCorollary4:
    """Minimal two-bag witnesses have support at most
    ||R||supp + ||S||supp and are computable in strongly polynomial
    time."""

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_on_witness_family(self, n):
        r, s = witness_family_pair(n)
        w = minimal_pairwise_witness(r, s)
        assert is_witness([r, s], w)
        assert check_theorem5_bound(r, s, w)


class TestTheorem6:
    """Acyclic global witness in polynomial time, support bounded by the
    sum of input support sizes."""

    def test_on_chain(self, rng):
        from repro.workloads import planted_collection

        schemas = [Schema(["A", "B"]), Schema(["B", "C"]), Schema(["C", "D"]),
                   Schema(["D", "E"])]
        _, bags = planted_collection(schemas, rng, n_tuples=4)
        w = acyclic_global_witness(bags)
        assert is_witness(bags, w)
        assert w.support_size <= sum(b.support_size for b in bags)

    def test_multiplicities_respect_theorem3(self, rng):
        from repro.workloads import planted_collection

        schemas = [Schema(["A", "B"]), Schema(["B", "C"])]
        _, bags = planted_collection(schemas, rng)
        w = acyclic_global_witness(bags)
        assert w.multiplicity_bound <= max(
            b.multiplicity_bound for b in bags
        )


class TestTseitinCounterexampleInternals:
    """Step 2 of Theorem 2: the modular argument in executable form."""

    def test_no_support_tuple_satisfies_all_congruences(self):
        h = cycle_hypergraph(4)
        bags = tseitin_collection(list(h.edges))
        # Any global witness tuple t would need sum over each edge == 0
        # (mod regularity d) except the charged one == 1; summing gives
        # 0 == 1 mod d.
        joined = bags[0].support()
        for bag in bags[1:]:
            joined = joined.join(bag.support())
        assert len(joined) == 0 or not decide_global_consistency(bags)
