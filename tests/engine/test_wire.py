"""The v2 wire format: frame codec, serve negotiation, shm spill."""

import io
import json
import random
import socket
import socketserver
import threading

import pytest

from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.engine import columnar, executors, fingerprint, wire
from repro.engine.index import BagIndex
from repro.engine.jobs import parse_jobs, run_jobs
from repro.engine.session import Engine
from repro.errors import ReproError
from repro.io import bag_to_dict
from repro.server import ReproServer, ServeClient
from repro.workloads.generators import wide_planted_pair

AB = Schema(["A", "B"])
BC = Schema(["B", "C"])

_UNIQ = [0]


def wide_pair(n_rows=64):
    """A fresh consistent wide-schema pair with a disjoint value pool
    (the per-test seed keeps index sharing from hiding decode work)."""
    _UNIQ[0] += 1
    rng = random.Random(900_000 + _UNIQ[0])
    _, r, s = wide_planted_pair(rng, n_rows=n_rows)
    return r, s


def small_pair(mult=2):
    r = Bag.from_pairs(AB, [((1, 2), mult), ((2, 2), 1)])
    s = Bag.from_pairs(BC, [((2, 3), mult + 1)])
    return r, s


def round_trip(payload):
    frame = wire.encode_jobs_frame(payload)
    header, blob = wire.read_frame(io.BytesIO(frame))
    return wire.decode_jobs_frame(header, blob)


@pytest.fixture(autouse=True)
def no_leaked_segments():
    yield
    assert executors.active_shm_segments() == ()


@pytest.fixture
def tcp_server():
    server = ReproServer()
    address = server.bind_tcp()
    server.serve_in_background()
    yield server, address
    server.shutdown()


class TestFrameCodec:
    def test_round_trip_preserves_bags_and_seeds_fingerprints(self):
        r, s = wide_pair()
        decoded = round_trip({"pairs": [[r, s]]})
        l2, r2 = decoded["pairs"][0]
        assert l2 == r and r2 == s
        assert fingerprint.of_bag(l2) == fingerprint.of_bag(r)
        assert fingerprint.of_bag(r2) == fingerprint.of_bag(s)

    @pytest.mark.skipif(not columnar.AVAILABLE, reason="numpy required")
    def test_decode_adopts_encoding_without_reencoding(self):
        r, s = wide_pair()
        # prime the sender-side encodings before measuring
        frame = wire.encode_jobs_frame({"pairs": [[r, s]]})
        header, blob = wire.read_frame(io.BytesIO(frame))
        before = columnar.kernel_stats()["encodings"]
        decoded = wire.decode_jobs_frame(header, blob)
        assert columnar.kernel_stats()["encodings"] == before
        l2 = decoded["pairs"][0][0]
        encoded = BagIndex.of(l2)._columnar
        assert isinstance(encoded, columnar.ColumnarBag)
        # the adopted encoding answers marginals directly
        assert l2.marginal(Schema([l2.schema.attrs[0]])) == r.marginal(
            Schema([r.schema.attrs[0]])
        )

    def test_shared_bags_ship_once(self):
        r, s = wide_pair()
        frame = wire.encode_jobs_frame(
            {"pairs": [[r, s], [r, s], [r, r]]}
        )
        header, _ = wire.read_frame(io.BytesIO(frame))
        assert len(header["bags"]) == 2
        decoded = wire.decode_jobs_frame(
            *wire.read_frame(io.BytesIO(frame))
        )
        assert decoded["pairs"][0][0] is decoded["pairs"][2][1]

    def test_small_bags_ride_inline_json(self):
        r, s = small_pair()
        frame = wire.encode_jobs_frame({"pairs": [[r, s]]})
        header, blob = wire.read_frame(io.BytesIO(frame))
        assert all("json" in desc for desc in header["bags"])
        decoded = wire.decode_jobs_frame(header, blob)
        l2 = decoded["pairs"][0][0]
        assert l2 == r
        assert fingerprint.of_bag(l2) == fingerprint.of_bag(r)

    def test_dict_payloads_and_ops_pass_through(self):
        r, s = small_pair()
        payload = {
            "op": "batch",
            "pairs": [[bag_to_dict(r), bag_to_dict(s)]],
            "suites": [["planted-path", 4, 0]],
        }
        decoded = round_trip(payload)
        assert decoded["op"] == "batch"
        assert decoded["suites"] == [["planted-path", 4, 0]]
        assert decoded["pairs"][0][0] == r
        assert round_trip({"op": "stats"}) == {"op": "stats"}

    def test_report_identical_across_formats(self):
        r, s = wide_pair()
        framed = run_jobs(parse_jobs(round_trip({"pairs": [[r, s]]})), Engine())
        json_payload = json.loads(
            json.dumps(wire.jsonify_payload({"pairs": [[r, s]]}))
        )
        rowed = run_jobs(parse_jobs(json_payload), Engine())
        assert framed["pairs"] == rowed["pairs"]

    @pytest.mark.skipif(not columnar.AVAILABLE, reason="numpy required")
    def test_pure_python_decode_is_bit_identical(self):
        r, s = wide_pair()
        frame = wire.encode_jobs_frame({"pairs": [[r, s]]})
        header, blob = wire.read_frame(io.BytesIO(frame))
        with columnar.disabled():
            decoded = wire.decode_jobs_frame(header, blob)
        l2, r2 = decoded["pairs"][0]
        assert l2 == r and r2 == s

    @pytest.mark.skipif(not columnar.AVAILABLE, reason="numpy required")
    def test_remap_is_independent_of_sender_dictionary_order(self):
        # simulate a foreign client whose interner disagrees with ours:
        # permute every column's local dictionary and rewrite the codes
        r, _ = wide_pair()
        port = columnar.export_encoding(
            columnar.of_index(BagIndex.of(r))
        )
        np = pytest.importorskip("numpy")
        writer = wire._BlobWriter()
        cols = []
        for codes_bytes, values in port.columns:
            codes = np.frombuffer(codes_bytes, dtype="<i8")
            k = len(values)
            cols.append({
                "codes": writer.add(
                    (k - 1 - codes).astype("<i8").tobytes()
                ),
                "values": list(reversed(values)),
            })
        desc = {
            "schema": list(port.attrs),
            "n": port.n,
            "total": port.total,
            "fp": fingerprint.of_bag(r),
            "mults": writer.add(port.mults),
            "cols": cols,
        }
        frame = wire.pack_frame(
            {"v": wire.VERSION, "payload": {"pairs": [[{"$bag": 0},
             {"$bag": 0}]]}, "bags": [desc]},
            writer,
        )
        decoded = wire.decode_jobs_frame(*wire.read_frame(io.BytesIO(frame)))
        assert decoded["pairs"][0][0] == r

    def test_truncated_frame_raises(self):
        r, s = small_pair()
        frame = wire.encode_jobs_frame({"pairs": [[r, s]]})
        for cut in (2, 10, len(frame) - 1):
            with pytest.raises(wire.WireError, match="truncated"):
                wire.read_frame(io.BytesIO(frame[:cut]))

    def test_oversized_lengths_rejected(self, monkeypatch):
        r, s = small_pair()
        frame = wire.encode_jobs_frame({"pairs": [[r, s]]})
        monkeypatch.setattr(wire, "MAX_HEADER_BYTES", 8)
        with pytest.raises(wire.WireError, match="exceeds"):
            wire.read_frame(io.BytesIO(frame))

    def test_bad_magic_rejected(self):
        with pytest.raises(wire.WireError, match="magic"):
            wire.read_frame(io.BytesIO(b"NOPE" + b"\x00" * 64))

    @pytest.mark.skipif(
        not columnar.AVAILABLE,
        reason="columnar descriptors require numpy (inline JSON otherwise)",
    )
    def test_malformed_descriptors_rejected(self):
        def tampered(mutate):
            r, _ = wide_pair()
            frame = wire.encode_jobs_frame({"pairs": [[r, r]]})
            header, blob = wire.read_frame(io.BytesIO(frame))
            mutate(header["bags"][0])
            return header, blob

        header, blob = tampered(lambda d: d.update(total=d["total"] + 1))
        with pytest.raises(wire.WireError, match="total mismatch"):
            wire.decode_jobs_frame(header, blob)
        header, blob = tampered(lambda d: d.update(fp="nope"))
        with pytest.raises(wire.WireError, match="fingerprint"):
            wire.decode_jobs_frame(header, blob)
        header, blob = tampered(lambda d: d["cols"][0].update(values=[]))
        with pytest.raises(wire.WireError):
            wire.decode_jobs_frame(header, blob)
        header, blob = tampered(lambda d: d.update(mults=[1 << 40, 8]))
        with pytest.raises(wire.WireError, match="blob reference"):
            wire.decode_jobs_frame(header, blob)

    def test_bad_bag_reference_rejected(self):
        frame = wire.pack_frame({
            "v": wire.VERSION,
            "payload": {"pairs": [[{"$bag": 5}, {"$bag": 5}]]},
            "bags": [],
        })
        header, blob = wire.read_frame(io.BytesIO(frame))
        with pytest.raises(wire.WireError, match="bag reference"):
            wire.decode_jobs_frame(header, blob)


class TestServeNegotiation:
    def test_columnar_and_json_clients_agree(self, tcp_server):
        _, address = tcp_server
        r, s = wide_pair()
        with ServeClient(address, wire_format="columnar") as client:
            framed = client.request({"pairs": [[r, s]]})
            assert client.wire_version == wire.VERSION
            stats = client.request({"op": "stats"})
        with ServeClient(address, wire_format="json") as client:
            rowed = client.request({"pairs": [[r, s]]})
            assert client.wire_version == 1
        assert framed["ok"] and rowed["ok"]
        assert framed["report"]["pairs"] == rowed["report"]["pairs"]
        assert stats["wire_format"] == "columnar"
        assert stats["kernels"]["wire_frames_decoded"] >= 1

    def test_auto_negotiates_only_for_bag_payloads(self, tcp_server):
        _, address = tcp_server
        r, s = small_pair()
        with ServeClient(address) as client:
            dict_jobs = {"pairs": [[bag_to_dict(r), bag_to_dict(s)]]}
            assert client.request(dict_jobs)["ok"]
            assert client.wire_version is None  # still pure v1 traffic
            assert client.request({"pairs": [[r, s]]})["ok"]
            assert client.wire_version == wire.VERSION

    def test_v2_client_degrades_against_v1_only_server(self):
        server = ReproServer(wire_format="json")
        address = server.bind_tcp()
        server.serve_in_background()
        try:
            r, s = wide_pair()
            with ServeClient(address, wire_format="columnar") as client:
                report = client.request({"pairs": [[r, s]]})
                assert client.wire_version == 1
                assert report["ok"]
                assert report["report"]["pairs"] == [{"consistent": True}]
                stats = client.request({"op": "stats"})
                assert stats["ok"] and stats["wire_format"] == "json"
                assert client.request({"op": "ping"})["ok"]
                assert client.request({"op": "shutdown"})["ok"]
        finally:
            server.shutdown()

    def test_v1_client_against_v2_server_runs_every_op(self, tcp_server):
        _, address = tcp_server
        r, s = small_pair()
        with ServeClient(address, wire_format="json") as client:
            jobs = {"pairs": [[bag_to_dict(r), bag_to_dict(s)]]}
            assert client.request(jobs)["ok"]
            assert client.request({"op": "ping"})["ok"]
            assert client.request({"op": "stats"})["ok"]

    def test_shutdown_over_frames(self):
        server = ReproServer()
        address = server.bind_tcp()
        server.serve_in_background()
        r, s = wide_pair()
        with ServeClient(address, wire_format="columnar") as client:
            assert client.request({"pairs": [[r, s]]})["ok"]
            bye = client.request({"op": "shutdown"})
            assert bye["ok"] and bye["bye"]
        server.shutdown()


class TestServeFailurePaths:
    def test_truncated_request_frame_leaves_server_alive(self, tcp_server):
        _, address = tcp_server
        raw = socket.create_connection(address, timeout=5)
        try:
            raw.sendall(wire.MAGIC + b"\x02\xff\xff")  # prefix cut short
        finally:
            raw.close()
        with ServeClient(address) as client:
            assert client.request({"op": "ping"})["ok"]

    def test_malformed_frame_gets_error_response(self, tcp_server):
        _, address = tcp_server
        frame = wire.pack_frame({"v": wire.VERSION})  # no payload object
        raw = socket.create_connection(address, timeout=5)
        try:
            raw.sendall(frame)
            rfile = raw.makefile("rb")
            header, _ = wire.read_frame(rfile)
            response = wire.response_from_frame(header)
            assert not response["ok"]
            assert "payload" in response["error"]
            # the stream is still synchronized: JSON lines keep working
            raw.sendall(b'{"op": "ping"}\n')
            assert json.loads(rfile.readline())["ok"]
        finally:
            raw.close()

    def test_oversized_line_refused_and_connection_closed(
        self, tcp_server, monkeypatch
    ):
        _, address = tcp_server
        monkeypatch.setattr(wire, "MAX_LINE", 1024)
        raw = socket.create_connection(address, timeout=5)
        try:
            raw.sendall(b"[" + b"1," * 2048 + b"1]")  # no newline, > cap
            rfile = raw.makefile("rb")
            response = json.loads(rfile.readline())
            assert not response["ok"]
            assert "exceeds" in response["error"]
            assert rfile.readline() == b""  # server closed the stream
        finally:
            raw.close()
        with ServeClient(address) as client:
            assert client.request({"op": "ping"})["ok"]

    def test_frames_refused_when_wire_format_json(self):
        server = ReproServer(wire_format="json")
        address = server.bind_tcp()
        server.serve_in_background()
        try:
            r, s = small_pair()
            frame = wire.encode_jobs_frame({"pairs": [[r, s]]})
            raw = socket.create_connection(address, timeout=5)
            try:
                raw.sendall(frame)
                rfile = raw.makefile("rb")
                header, _ = wire.read_frame(rfile)
                response = wire.response_from_frame(header)
                assert not response["ok"]
                assert "disabled" in response["error"]
            finally:
                raw.close()
        finally:
            server.shutdown()

    def test_server_closing_before_response_raises(self):
        class _Closer(socketserver.BaseRequestHandler):
            def handle(self):
                self.request.recv(64)
                self.request.close()

        listener = socketserver.ThreadingTCPServer(
            ("127.0.0.1", 0), _Closer
        )
        listener.daemon_threads = True
        threading.Thread(
            target=listener.serve_forever, daemon=True
        ).start()
        try:
            client = ServeClient(listener.server_address[:2])
            with pytest.raises(ReproError, match="closed"):
                client.request({"op": "ping"})
            client.close()
        finally:
            listener.shutdown()
            listener.server_close()

    def test_truncated_response_frame_raises(self):
        class _Partial(socketserver.BaseRequestHandler):
            def handle(self):
                self.request.recv(4096)
                self.request.sendall(wire.MAGIC + b"\x02\x01")
                self.request.close()

        listener = socketserver.ThreadingTCPServer(
            ("127.0.0.1", 0), _Partial
        )
        listener.daemon_threads = True
        threading.Thread(
            target=listener.serve_forever, daemon=True
        ).start()
        try:
            client = ServeClient(listener.server_address[:2])
            with pytest.raises(wire.WireError, match="truncated"):
                client.request({"op": "ping"})
            client.close()
        finally:
            listener.shutdown()
            listener.server_close()


@pytest.mark.skipif(not columnar.AVAILABLE, reason="numpy required")
class TestExecutorSpill:
    def test_spill_round_trip_matches_serial(self, monkeypatch):
        monkeypatch.setattr(executors, "SHM_MIN_BYTES", 1)
        pairs = [wide_pair() for _ in range(3)]
        pairs.append((pairs[0][0], pairs[1][1]))  # cross pair: False
        before = wire.wire_stats()["shm_segments_created"]
        engine = Engine()
        verdicts = engine.are_consistent_many(
            pairs, parallelism=2, backend="process"
        )
        assert wire.wire_stats()["shm_segments_created"] == before + 1
        assert executors.active_shm_segments() == ()
        serial = Engine().are_consistent_many(pairs)
        assert verdicts == serial == [True, True, True, False]

    def test_shared_bag_ships_once_per_batch(self, monkeypatch):
        monkeypatch.setattr(executors, "SHM_MIN_BYTES", 1)
        shared, _ = wide_pair()
        partners = [wide_pair()[0] for _ in range(4)]
        pairs = [(shared, partner) for partner in partners]
        shipped = []
        real = wire.encode_bag_table

        def spy(entries):
            entries = list(entries)
            shipped.append(len(entries))
            return real(entries)

        monkeypatch.setattr(wire, "encode_bag_table", spy)
        Engine().are_consistent_many(pairs, parallelism=2, backend="process")
        # 4 pairs x 2 bags, but only 5 distinct fingerprints travel
        assert shipped == [5]

    def test_wire_format_json_disables_spill(self, monkeypatch):
        monkeypatch.setattr(executors, "SHM_MIN_BYTES", 1)
        executors.set_wire_format("json")
        try:
            before = wire.wire_stats()["shm_segments_created"]
            pairs = [wide_pair() for _ in range(2)]
            verdicts = Engine().are_consistent_many(
                pairs, parallelism=2, backend="process"
            )
            assert verdicts == [True, True]
            assert wire.wire_stats()["shm_segments_created"] == before
        finally:
            executors.set_wire_format("columnar")

    def test_small_payloads_stay_on_pickle(self):
        before = wire.wire_stats()["shm_segments_created"]
        pairs = [small_pair(mult=m) for m in (2, 3)]
        verdicts = Engine().are_consistent_many(
            pairs, parallelism=2, backend="process"
        )
        assert verdicts == [True, True]
        assert wire.wire_stats()["shm_segments_created"] == before

    def test_set_wire_format_validates(self):
        with pytest.raises(ValueError, match="wire_format"):
            executors.set_wire_format("msgpack")


class TestObservability:
    def test_kernel_stats_carries_wire_counters(self):
        stats = columnar.kernel_stats()
        for key in (
            "wire_frames_encoded", "wire_frames_decoded",
            "wire_json_requests", "shm_segments_created",
            "shm_segments_adopted", "shm_bytes_spilled",
        ):
            assert key in stats

    def test_batch_report_surfaces_wire_counters(self):
        r, s = small_pair()
        report = run_jobs(
            parse_jobs({"pairs": [[bag_to_dict(r), bag_to_dict(s)]]}),
            Engine(),
        )
        assert "wire_frames_encoded" in report["kernels"]
