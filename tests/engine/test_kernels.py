"""Kernel primitives against the seed's per-row loops."""

import random

import pytest

from repro.core.bags import Bag
from repro.core.relations import Relation
from repro.core.schema import Schema, projection_plan
from repro.engine import kernels
from repro.engine.reference import (
    _seed_relation_join,
    seed_bag_join,
    seed_marginal,
)
from repro.errors import SchemaError
from repro.workloads.generators import random_bag

AB = Schema(["A", "B"])
BC = Schema(["B", "C"])
ABC = Schema(["A", "B", "C"])
EMPTY = Schema()


class TestProjectionPlan:
    def test_multi_attribute_projection(self):
        plan = projection_plan(ABC.attrs, AB.attrs)
        assert plan((1, 2, 3)) == (1, 2)

    def test_single_attribute_projection_returns_tuple(self):
        plan = projection_plan(ABC.attrs, Schema(["B"]).attrs)
        assert plan((1, 2, 3)) == (2,)

    def test_empty_target_projects_to_empty_tuple(self):
        plan = projection_plan(ABC.attrs, EMPTY.attrs)
        assert plan((1, 2, 3)) == ()

    def test_plans_are_cached(self):
        assert projection_plan(ABC.attrs, AB.attrs) is projection_plan(
            ABC.attrs, AB.attrs
        )

    def test_non_subset_target_raises(self):
        with pytest.raises(SchemaError):
            projection_plan(AB.attrs, BC.attrs)


class TestJoinPlan:
    def test_plan_schemas(self):
        plan = kernels.join_plan(AB.attrs, BC.attrs)
        assert plan.common == Schema(["B"])
        assert plan.union == ABC

    def test_plan_cached(self):
        assert kernels.join_plan(AB.attrs, BC.attrs) is kernels.join_plan(
            AB.attrs, BC.attrs
        )

    def test_emit_resolves_duplicate_common_positions(self):
        plan = kernels.join_plan(AB.attrs, BC.attrs)
        # lrow = (a=1, b=2), rrow = (b=2, c=3) -> (a, b, c)
        assert plan.emit((1, 2) + (2, 3)) == (1, 2, 3)

    def test_disjoint_schemas_have_empty_common(self):
        plan = kernels.join_plan(AB.attrs, Schema(["C", "D"]).attrs)
        assert plan.common == EMPTY
        assert plan.left_key((1, 2)) == ()


class TestMarginalTable:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_seed_marginal(self, seed):
        rng = random.Random(seed)
        bag = random_bag(ABC, rng, n_tuples=8)
        for target in (AB, BC, Schema(["B"]), EMPTY, ABC):
            table = kernels.marginal_table(
                bag.items(), ABC.attrs, target.attrs
            )
            assert Bag(target, table) == seed_marginal(bag, target)

    def test_empty_bag_marginal_is_empty(self):
        assert kernels.marginal_table(iter(()), ABC.attrs, AB.attrs) == {}


class TestHashJoin:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_seed_bag_join(self, seed):
        rng = random.Random(seed)
        left = random_bag(AB, rng, n_tuples=6)
        right = random_bag(BC, rng, n_tuples=6)
        plan = kernels.join_plan(AB.attrs, BC.attrs)
        buckets = kernels.group_items(right.items(), plan.right_key)
        table = kernels.hash_join_mults(left.items(), plan, buckets)
        assert Bag(plan.union, table) == seed_bag_join(left, right)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_seed_relation_join(self, seed):
        rng = random.Random(seed)
        left = random_bag(AB, rng, n_tuples=6).support()
        right = random_bag(BC, rng, n_tuples=6).support()
        plan = kernels.join_plan(AB.attrs, BC.attrs)
        buckets = kernels.group_rows(right.rows, plan.right_key)
        rows = kernels.hash_join_rows(left.rows, plan, buckets)
        assert Relation(plan.union, rows) == _seed_relation_join(left, right)

    def test_iter_join_pairs_streams_every_match(self):
        left = Bag.from_pairs(AB, [((1, 2), 1), ((2, 9), 1)])
        right = Bag.from_pairs(BC, [((2, 1), 1), ((2, 2), 1), ((9, 9), 1)])
        plan = kernels.join_plan(AB.attrs, BC.attrs)
        buckets = kernels.group_items(right.items(), plan.right_key)
        pairs = sorted(
            (lrow, rrow)
            for lrow, (rrow, _) in kernels.iter_join_pairs(
                left.support_rows(), plan, buckets
            )
        )
        assert pairs == [((1, 2), (2, 1)), ((1, 2), (2, 2)), ((2, 9), (9, 9))]


class TestSemiJoin:
    def test_semi_join_rows_filters_by_key(self):
        key = projection_plan(AB.attrs, Schema(["B"]).attrs)
        rows = [(1, 2), (3, 4), (5, 2)]
        assert kernels.semi_join_rows(rows, key, {(2,)}) == [(1, 2), (5, 2)]

    def test_project_key_set(self):
        key = projection_plan(AB.attrs, Schema(["B"]).attrs)
        assert kernels.project_key_set([(1, 2), (3, 2)], key) == {(2,)}


class TestAggregateTable:
    def test_semiring_generic_aggregation(self):
        from fractions import Fraction

        items = [((1, 2), Fraction(1, 2)), ((1, 3), Fraction(1, 3))]
        table = kernels.aggregate_table(
            items, AB.attrs, Schema(["A"]).attrs, lambda a, b: a + b
        )
        assert table == {(1,): Fraction(5, 6)}
