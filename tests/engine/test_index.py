"""Per-instance index caches: memoization identity and correctness."""

import random

import pytest

from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.engine.index import BagIndex, RelationIndex
from repro.errors import SchemaError
from repro.workloads.generators import random_bag

AB = Schema(["A", "B"])
ABC = Schema(["A", "B", "C"])
B = Schema(["B"])


class TestBagIndex:
    def test_index_is_memoized_per_bag(self):
        bag = Bag.from_pairs(AB, [((1, 2), 1)])
        assert BagIndex.of(bag) is BagIndex.of(bag)

    def test_distinct_equal_bags_have_distinct_indexes(self):
        a = Bag.from_pairs(AB, [((1, 2), 1)])
        b = Bag.from_pairs(AB, [((1, 2), 1)])
        assert a == b
        assert BagIndex.of(a) is not BagIndex.of(b)

    def test_marginal_is_cached(self):
        bag = random_bag(ABC, random.Random(0), n_tuples=6)
        first = bag.marginal(AB)
        assert bag.marginal(AB) is first

    def test_marginal_on_own_schema_returns_the_bag(self):
        bag = random_bag(ABC, random.Random(0), n_tuples=6)
        assert bag.marginal(ABC) is bag

    def test_marginal_values(self):
        bag = Bag.from_pairs(AB, [((1, 2), 2), ((2, 2), 1)])
        assert bag.marginal(B).multiplicity((2,)) == 3

    def test_buckets_partition_the_items(self):
        bag = random_bag(ABC, random.Random(1), n_tuples=8)
        buckets = BagIndex.of(bag).buckets(B)
        flattened = {
            row: mult
            for bucket in buckets.values()
            for row, mult in bucket
        }
        assert flattened == dict(bag.items())
        for key, bucket in buckets.items():
            for row, _ in bucket:
                assert (row[ABC.index_of("B")],) == key

    def test_key_set_matches_support_projection(self):
        bag = random_bag(ABC, random.Random(2), n_tuples=8)
        assert BagIndex.of(bag).key_set(AB) == set(
            bag.support().project(AB).rows
        )

    def test_sorted_rows_cached_and_deterministic(self):
        bag = random_bag(ABC, random.Random(3), n_tuples=8)
        index = BagIndex.of(bag)
        first = index.sorted_rows()
        assert index.sorted_rows() is first
        assert first == sorted(bag.support_rows(), key=repr)
        assert [tup.values for tup, _ in bag.tuples()] == first

    def test_marginal_validates_target(self):
        bag = Bag.from_pairs(AB, [((1, 2), 1)])
        with pytest.raises(SchemaError):
            bag.marginal(Schema(["Z"]))


class TestRelationIndex:
    def test_projection_cached(self):
        relation = random_bag(ABC, random.Random(4), n_tuples=8).support()
        first = relation.project(AB)
        assert relation.project(AB) is first

    def test_projection_on_own_schema_returns_the_relation(self):
        relation = random_bag(ABC, random.Random(4), n_tuples=8).support()
        assert relation.project(ABC) is relation

    def test_key_set_matches_projection_rows(self):
        relation = random_bag(ABC, random.Random(5), n_tuples=8).support()
        assert RelationIndex.of(relation).key_set(B) == set(
            relation.project(B).rows
        )

    def test_buckets_partition_the_rows(self):
        relation = random_bag(ABC, random.Random(6), n_tuples=8).support()
        buckets = RelationIndex.of(relation).buckets(B)
        flattened = {row for bucket in buckets.values() for row in bucket}
        assert flattened == set(relation.rows)


class TestSchemaPositionMap:
    def test_index_of_matches_canonical_order(self):
        schema = Schema(["C", "A", "B"])
        for i, attr in enumerate(schema.attrs):
            assert schema.index_of(attr) == i

    def test_index_of_missing_attribute_raises(self):
        with pytest.raises(SchemaError):
            AB.index_of("Z")
