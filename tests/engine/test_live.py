"""LiveEngine: incremental invalidation semantics and stream cross-checks."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.global_ import decide_global_consistency
from repro.consistency.pairwise import are_consistent
from repro.consistency.witness import is_witness
from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.engine.live import LiveBag, LiveEngine
from repro.errors import InconsistentError, MultiplicityError, SchemaError
from repro.workloads.generators import planted_collection

AB = Schema(["A", "B"])
BC = Schema(["B", "C"])
CD = Schema(["C", "D"])
EF = Schema(["E", "F"])  # disjoint from the others: empty common schema


def planted_live(schemas, seed=0, n_tuples=4):
    _, bags = planted_collection(schemas, random.Random(seed),
                                 n_tuples=n_tuples)
    live = LiveEngine(bags)
    return live, live.handles


class TestHandles:
    def test_add_bag_returns_live_handle(self):
        live = LiveEngine()
        bag = Bag.from_pairs(AB, [((1, 2), 3)])
        handle = live.add_bag(bag, name="ledger")
        assert isinstance(handle, LiveBag)
        assert handle.name == "ledger"
        assert handle.bag() is bag  # the given bag is the first snapshot
        assert handle.multiplicity((1, 2)) == 3

    def test_snapshot_stable_until_update_then_fresh(self):
        live = LiveEngine([Bag.from_pairs(AB, [((1, 2), 1)])])
        handle = live.handles[0]
        snapshot = handle.bag()
        assert handle.bag() is snapshot
        live.update(handle, (1, 2), 1)
        assert handle.bag() is not snapshot
        assert handle.bag() == Bag.from_pairs(AB, [((1, 2), 2)])

    def test_update_validates_arity(self):
        live = LiveEngine([Bag.empty(AB)])
        with pytest.raises(SchemaError):
            live.update(live.handles[0], (1,), 1)
        assert not live.handles[0].bag()  # state untouched

    def test_update_rejects_negative_multiplicity(self):
        live = LiveEngine([Bag.empty(AB)])
        with pytest.raises(MultiplicityError):
            live.update(live.handles[0], (1, 2), -1)

    def test_zero_amount_is_a_noop(self):
        live = LiveEngine([Bag.from_pairs(AB, [((1, 2), 1)])])
        handle = live.handles[0]
        snapshot = handle.bag()
        live.update(handle, (1, 2), 0)
        assert handle.bag() is snapshot
        assert live.updates == 0

    def test_update_accepts_integer_index(self):
        live = LiveEngine([Bag.empty(AB)])
        live.update(0, (1, 2), 2)
        assert live.handles[0].multiplicity((1, 2)) == 2

    def test_foreign_handle_rejected(self):
        live = LiveEngine([Bag.empty(AB)])
        other = LiveEngine([Bag.empty(AB)])
        with pytest.raises(KeyError):
            live.update(other.handles[0], (1, 2), 1)


class TestIncrementalConsistency:
    def test_insert_breaks_then_repair(self):
        live = LiveEngine([
            Bag.from_pairs(AB, [((1, 2), 1)]),
            Bag.from_pairs(BC, [((2, 9), 1)]),
        ])
        r, s = live.handles
        assert live.are_consistent(r, s)
        live.update(r, (3, 2), 1)
        assert not live.are_consistent(r, s)
        live.update(s, (2, 0), 1)
        assert live.are_consistent(r, s)

    def test_self_pair_is_consistent(self):
        live = LiveEngine([Bag.from_pairs(AB, [((1, 2), 1)])])
        assert live.are_consistent(live.handles[0], live.handles[0])

    def test_empty_common_schema_tracks_totals(self):
        live = LiveEngine([
            Bag.from_pairs(AB, [((1, 2), 2)]),
            Bag.from_pairs(EF, [((5, 6), 2)]),
        ])
        r, t = live.handles
        assert live.are_consistent(r, t)
        live.update(t, (7, 8), 1)  # totals 2 vs 3
        assert not live.are_consistent(r, t)
        live.update(r, (1, 2), 1)
        assert live.are_consistent(r, t)

    def test_disagreeing_cells_orientation(self):
        live = LiveEngine([
            Bag.from_pairs(AB, [((1, 2), 3)]),
            Bag.from_pairs(BC, [((2, 9), 1)]),
        ])
        r, s = live.handles
        assert live.disagreeing_cells(r, s) == {(2,): 2}
        assert live.disagreeing_cells(s, r) == {(2,): -2}

    def test_inconsistent_pairs_reported(self):
        live = LiveEngine([
            Bag.from_pairs(AB, [((1, 2), 1)]),
            Bag.from_pairs(BC, [((2, 9), 1)]),
            Bag.from_pairs(CD, [((9, 0), 2)]),
        ])
        assert live.inconsistent_pairs() == [(0, 2), (1, 2)]
        live.update(2, (9, 0), -1)
        assert live.inconsistent_pairs() == []


class TestInvalidation:
    def test_untouched_pair_keeps_memoized_witness(self):
        live, (h0, h1, h2) = planted_live([AB, BC, CD], seed=1)
        w01 = live.witness(h0, h1)
        live.update(h2, (7, 7), 1)
        assert live.witness(h0, h1) is w01

    def test_touched_pair_recomputes_witness(self):
        live, (h0, h1, h2) = planted_live([AB, BC, CD], seed=2)
        w12 = live.witness(h1, h2)
        live.update(h2, (0, 0), 1)
        live.update(h1, (0, 0), 1)
        assert live.stats.invalidations > 0
        new = live.witness(h1, h2)
        assert new is not w12
        assert is_witness([h1.bag(), h2.bag()], new)

    def test_witness_raises_after_breaking_update(self):
        live, (h0, h1) = planted_live([AB, BC], seed=3)
        live.witness(h0, h1)
        live.update(h0, (8, 9), 1)  # bump one side only: totals disagree
        with pytest.raises(InconsistentError):
            live.witness(h0, h1)

    def test_global_result_invalidated_per_participant(self):
        live, (h0, h1, h2) = planted_live([AB, BC, CD], seed=4)
        first = live.global_check()
        assert live.global_check() is first  # snapshot-keyed memo
        live.update(h1, (0, 0), 1)
        assert live.global_check() is not first

    def test_join_and_marginal_route_through_cache(self):
        live, (h0, h1) = planted_live([AB, BC], seed=5)
        joined = live.join(h0, h1)
        assert joined == h0.bag().bag_join(h1.bag())
        assert live.join(h0, h1) is joined
        marg = live.marginal(h0, Schema(["B"]))
        assert live.marginal(h0, Schema(["B"])) is marg
        live.update(h0, (4, 4), 1)
        assert live.join(h0, h1) is not joined


class TestGlobal:
    def test_acyclic_theorem2_matches_solver(self):
        live, handles = planted_live([AB, BC, CD], seed=6)
        assert live.schema_acyclic()
        assert live.globally_consistent() == decide_global_consistency(
            [h.bag() for h in handles]
        )

    def test_cyclic_falls_back_to_exact_solver(self):
        from repro.consistency.local_global import tseitin_collection
        from repro.hypergraphs.families import cycle_hypergraph

        bags = tseitin_collection(list(cycle_hypergraph(3).edges))
        live = LiveEngine(bags)
        assert not live.schema_acyclic()
        assert live.pairwise_consistent()  # Tseitin: pairwise ok...
        assert not live.globally_consistent()  # ...globally broken

    def test_capacity_forwarded_to_inner_engine(self):
        live = LiveEngine(capacity=2)
        assert live.engine.capacity == 2


class TestStreamCrossCheck:
    """The acceptance cross-check: after every update, the live verdicts
    equal from-scratch recomputation on the current snapshots."""

    SCHEMAS = [AB, BC, CD, EF]  # EF gives an empty-common-schema pair

    def _random_update(self, rng, live, handles):
        handle = handles[rng.randrange(len(handles))]
        rows = sorted(handle.items(), key=repr)
        if rows and rng.random() < 0.45:
            row, mult = rows[rng.randrange(len(rows))]
            # deletes, including delete-to-zero
            amount = -mult if rng.random() < 0.5 else -1
        else:
            row = tuple(rng.randrange(3) for _ in handle.schema.attrs)
            amount = rng.randint(1, 2)
        live.update(handle, row, amount)

    def test_matches_from_scratch_oracles(self):
        rng = random.Random(20210620)
        live, handles = planted_live(self.SCHEMAS, seed=7, n_tuples=3)
        for _ in range(60):
            self._random_update(rng, live, handles)
            bags = [h.bag() for h in handles]
            for i in range(len(handles)):
                for j in range(i + 1, len(handles)):
                    assert live.are_consistent(
                        handles[i], handles[j]
                    ) == are_consistent(bags[i], bags[j])
            assert live.globally_consistent() == decide_global_consistency(
                bags
            )

    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2),
                st.tuples(st.integers(0, 1), st.integers(0, 1)),
                st.integers(1, 2),
            ),
            max_size=10,
        )
    )
    def test_hypothesis_stream_matches_oracle(self, updates):
        live = LiveEngine([Bag.empty(AB), Bag.empty(BC), Bag.empty(EF)])
        handles = live.handles
        for index, row, amount in updates:
            live.update(handles[index], row, amount)
            bags = [h.bag() for h in handles]
            for i in range(3):
                for j in range(i + 1, 3):
                    assert live.are_consistent(
                        handles[i], handles[j]
                    ) == are_consistent(bags[i], bags[j])
