"""Content-fingerprint semantics: order-insensitivity, multiplicity
awareness, cross-engine sharing, and incremental maintenance."""

import random

from repro.core.bags import Bag
from repro.core.krelations import KRelation
from repro.core.relations import Relation
from repro.core.schema import Schema
from repro.engine import fingerprint
from repro.engine.live import LiveEngine
from repro.engine.session import Engine, VerdictStore

AB = Schema(["A", "B"])
BC = Schema(["B", "C"])


def consistent_pair(seed=0, n=6):
    from repro.workloads.generators import planted_pair

    _, r, s = planted_pair(AB, BC, random.Random(seed), n_tuples=n)
    return r, s


def rebuild(bag: Bag, shuffle_seed: int = 0) -> Bag:
    """A value-equal bag constructed independently, rows in a different
    order (never the same object, never the same dict order)."""
    items = list(bag.items())
    random.Random(shuffle_seed).shuffle(items)
    return Bag.from_pairs(bag.schema, items)


class TestFingerprintValue:
    def test_row_order_is_irrelevant(self):
        r = Bag.from_pairs(AB, [((1, 2), 2), ((2, 2), 1), ((3, 1), 5)])
        assert fingerprint.of_bag(r) == fingerprint.of_bag(rebuild(r, 7))

    def test_schema_attr_order_is_irrelevant(self):
        assert fingerprint.of_schema(Schema(["A", "B"])) == \
            fingerprint.of_schema(Schema(["B", "A"]))

    def test_unequal_multiplicities_never_collide(self):
        base = Bag.from_pairs(AB, [((1, 2), 2), ((2, 2), 1)])
        seen = {fingerprint.of_bag(base)}
        for bump in (1, 2, 100, 2**40):
            other = Bag.from_pairs(AB, [((1, 2), 2 + bump), ((2, 2), 1)])
            fp = fingerprint.of_bag(other)
            assert fp not in seen
            seen.add(fp)

    def test_support_vs_multiplicity_no_collision(self):
        # same total multiplicity, different distribution
        a = Bag.from_pairs(AB, [((1, 2), 3)])
        b = Bag.from_pairs(AB, [((1, 2), 2), ((2, 2), 1)])
        assert fingerprint.of_bag(a) != fingerprint.of_bag(b)

    def test_type_distinguished_values(self):
        a = Bag.from_pairs(AB, [((1, 2), 1)])
        b = Bag.from_pairs(AB, [(("1", 2), 1)])
        assert fingerprint.of_bag(a) != fingerprint.of_bag(b)

    def test_schema_reaches_the_bag_fingerprint(self):
        a = Bag.from_pairs(AB, [((1, 2), 1)])
        b = Bag.from_pairs(Schema(["A", "C"]), [((1, 2), 1)])
        assert fingerprint.of_bag(a) != fingerprint.of_bag(b)

    def test_relation_fingerprint_shares_semantics(self):
        r = Relation.from_pairs(AB, [(1, 2), (2, 2)])
        s = Relation.from_pairs(AB, [(2, 2), (1, 2)])
        assert fingerprint.of_relation(r) == fingerprint.of_relation(s)
        assert fingerprint.of_relation(r) != fingerprint.of_relation(
            Relation.from_pairs(AB, [(1, 2)])
        )

    def test_deterministic_across_instances(self):
        # the digest must be a pure function of the value, not of the
        # interpreter's salted hash()
        r = Bag.from_pairs(AB, [((1, "x"), 2)])
        assert fingerprint.of_bag(r) == fingerprint.of_bag(rebuild(r))


class TestCacheSharing:
    def test_value_equal_bags_share_entries_one_engine(self):
        engine = Engine()
        r, s = consistent_pair(seed=1)
        engine.are_consistent(r, s)
        assert engine.stats.consistency_hits == 0
        engine.are_consistent(rebuild(r, 1), rebuild(s, 2))
        assert engine.stats.consistency_hits == 1

    def test_krelation_round_trip_shares_entries(self):
        engine = Engine()
        r, s = consistent_pair(seed=2)
        engine.witness(r, s)
        r2 = KRelation.from_bag(r).to_bag()
        s2 = KRelation.from_bag(s).to_bag()
        assert r2 is not r
        w = engine.witness(r2, s2)
        assert engine.stats.witness_hits == 1
        assert w is engine.witness(r, s)

    def test_two_engines_share_a_store(self):
        """The acceptance criterion: two distinct Engine instances
        given value-equal but separately-constructed collections show
        cache hits on the second evaluation."""
        store = VerdictStore()
        first, second = Engine(store=store), Engine(store=store)
        r, s = consistent_pair(seed=3)
        first.global_check([r, s])
        assert first.stats.global_hits == 0
        second.global_check([rebuild(r, 3), rebuild(s, 4)])
        assert second.stats.global_hits == 1
        # per-engine stats stay separate
        assert first.stats.global_hits == 0

    def test_live_update_keeps_shared_store_entries(self):
        """A LiveEngine over a *shared* store must not invalidate
        entries other engines may still be serving — content-addressed
        results never go stale, and the content may come back."""
        store = VerdictStore()
        serving = Engine(store=store)
        r, s = consistent_pair(seed=5)
        serving.are_consistent(r, s)
        live = LiveEngine([rebuild(r, 1), rebuild(s, 2)], store=store)
        h0, _ = live.handles
        live.update(h0, (7, 7), 1)
        serving.are_consistent(r, s)
        assert serving.stats.consistency_hits == 1  # entry survived
        live.update(h0, (7, 7), -1)  # back to the shared content
        assert live.are_consistent(*live.handles)  # checker still exact

    def test_live_update_still_invalidates_private_store(self):
        live = LiveEngine([Bag.from_pairs(AB, [((1, 2), 1)]),
                           Bag.from_pairs(BC, [((2, 3), 1)])])
        h0, h1 = live.handles
        live.witness(h0, h1)
        assert len(live.engine) >= 1
        live.update(h0, (1, 2), 1)
        assert live.stats.invalidations >= 1

    def test_value_equal_bags_share_one_index(self):
        r = Bag.from_pairs(AB, [((1, 2), 2), ((2, 2), 1)])
        r2 = rebuild(r, 9)
        fingerprint.of_bag(r)
        fingerprint.of_bag(r2)
        assert r._index is r2._index

    def test_fingerprint_cached_on_the_index(self):
        r, _ = consistent_pair(seed=4)
        assert fingerprint.of_bag(r) == fingerprint.of_bag(r)
        assert r._index._fingerprint is not None


class TestIncrementalMaintenance:
    SCHEMAS = [AB, BC, Schema(["C", "D"]), AB]  # two handles share AB

    def _random_update(self, rng, live, handles):
        handle = handles[rng.randrange(len(handles))]
        rows = sorted(handle.items(), key=repr)
        if rows and rng.random() < 0.45:
            row, mult = rows[rng.randrange(len(rows))]
            amount = -mult if rng.random() < 0.5 else -1  # incl. to-zero
        else:
            row = tuple(rng.randrange(3) for _ in handle.schema.attrs)
            amount = rng.randint(1, 2)
        live.update(handle, row, amount)

    def test_stream_fingerprints_match_from_scratch(self):
        """After every update (inserts, deletes, delete-to-zero), the
        incrementally maintained fingerprint equals one recomputed from
        a freshly built value-equal bag."""
        rng = random.Random(20260729)
        live = LiveEngine([Bag.empty(schema) for schema in self.SCHEMAS])
        handles = live.handles
        for step in range(80):
            self._random_update(rng, live, handles)
            for handle in handles:
                fresh = Bag.from_pairs(handle.schema, list(handle.items()))
                assert handle.fingerprint() == fingerprint.of_bag(fresh), (
                    f"step {step}: incremental fingerprint diverged"
                )

    def test_stream_verdicts_match_identity_free_recompute(self):
        """Fingerprint-keyed verdicts along an update stream equal the
        verdicts a fresh identity-style engine computes from scratch on
        value-equal copies — content addressing changes the keys, never
        the answers."""
        from repro.consistency.global_ import decide_global_consistency
        from repro.consistency.pairwise import are_consistent

        rng = random.Random(20260730)
        live = LiveEngine([Bag.empty(schema) for schema in self.SCHEMAS])
        handles = live.handles
        for _ in range(40):
            self._random_update(rng, live, handles)
            bags = [h.bag() for h in handles]
            copies = [rebuild(bag) for bag in bags]
            for i in range(len(handles)):
                for j in range(i + 1, len(handles)):
                    assert live.are_consistent(handles[i], handles[j]) == \
                        are_consistent(copies[i], copies[j])
            assert live.globally_consistent() == decide_global_consistency(
                copies
            )

    def test_return_to_previous_content_restores_fingerprint(self):
        live = LiveEngine([Bag.from_pairs(AB, [((1, 2), 2)])])
        handle = live.handles[0]
        before = handle.fingerprint()
        live.update(handle, (5, 5), 3)
        assert handle.fingerprint() != before
        live.update(handle, (5, 5), -3)  # delete-to-zero
        assert handle.fingerprint() == before

    def test_snapshot_fingerprint_is_seeded(self):
        live = LiveEngine([Bag.from_pairs(AB, [((1, 2), 2)])])
        handle = live.handles[0]
        live.update(handle, (3, 3), 1)
        snapshot = handle.bag()
        assert snapshot._index._fingerprint == handle.fingerprint()
