"""Batch job parsing/validation (`repro.engine.jobs`), shared by the
`batch` CLI and the serve daemon."""

import json

import pytest

from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.engine.jobs import JobError, parse_jobs, parse_jobs_text, run_jobs
from repro.engine.session import Engine
from repro.io import bag_to_dict

AB = Schema(["A", "B"])
BC = Schema(["B", "C"])

R = Bag.from_pairs(AB, [((1, 2), 2)])
S = Bag.from_pairs(BC, [((2, 3), 2)])


def payload():
    return {
        "pairs": [[bag_to_dict(R), bag_to_dict(S)]],
        "collections": [{"bags": [bag_to_dict(R), bag_to_dict(S)]}],
        "suites": [["planted-path", 3, 0]],
    }


class TestParsing:
    def test_round_trip(self):
        jobs = parse_jobs(payload())
        assert jobs.n_jobs == 3
        assert jobs.pairs[0][0] == R
        assert jobs.suites == [("planted-path", 3, 0)]

    def test_interning_collapses_value_equal_bags(self):
        jobs = parse_jobs(payload())
        assert jobs.pairs[0][0] is jobs.collections[0][0]

    def test_text_entry_point_rejects_invalid_json(self):
        with pytest.raises(JobError, match="invalid JSON"):
            parse_jobs_text("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(JobError, match="JSON object"):
            parse_jobs([1, 2, 3])

    def test_unknown_keys_rejected(self):
        with pytest.raises(JobError, match="unknown batch job keys"):
            parse_jobs({"nonsense": []})

    def test_bad_pair_entry_names_the_index(self):
        bad = payload()
        bad["pairs"].append([bag_to_dict(R)])  # only one side
        with pytest.raises(JobError, match=r"bad pair entry: #1"):
            parse_jobs(bad)

    def test_bad_collection_entry(self):
        with pytest.raises(JobError, match=r"bad collection entry: #0"):
            parse_jobs({"collections": [{}]})

    def test_bad_bag_encoding(self):
        with pytest.raises(JobError, match="bad pair entry"):
            parse_jobs({"pairs": [[{"schema": ["A"]}, bag_to_dict(S)]]})

    def test_bad_suite_spec_shape(self):
        with pytest.raises(JobError, match=r"bad suite spec: #0"):
            parse_jobs({"suites": [["planted-path"]]})

    def test_bad_suite_spec_types(self):
        with pytest.raises(JobError, match="bad suite spec"):
            parse_jobs({"suites": [["planted-path", "three", 0]]})

    def test_error_messages_are_one_line(self):
        for bad in (
            "{not json",
            json.dumps({"pairs": [[{"schema": ["A"]}, {"schema": ["A"]}]]}),
            json.dumps({"suites": [[1, 2, 3]]}),
        ):
            with pytest.raises(JobError) as excinfo:
                parse_jobs_text(bad)
            assert "\n" not in str(excinfo.value)


class TestRunning:
    def test_report_shape(self):
        engine = Engine()
        report = run_jobs(parse_jobs(payload()), engine)
        assert report["pairs"] == [{"consistent": True}]
        assert report["collections"][0]["consistent"] is True
        assert report["suites"][0]["ok"] is True
        assert "consistency_queries" in report["stats"]
        assert report["store"]["entries"] == len(engine)

    def test_sections_absent_when_not_requested(self):
        report = run_jobs(parse_jobs({"pairs": []}), Engine())
        assert "pairs" not in report
        assert "collections" not in report

    def test_witnesses_included_on_request(self):
        report = run_jobs(
            parse_jobs({"pairs": payload()["pairs"]}),
            Engine(),
            witnesses=True,
        )
        assert "witness" in report["pairs"][0]

    def test_unknown_suite_surfaces_as_job_error(self):
        jobs = parse_jobs({"suites": [["no-such-suite", 3, 0]]})
        with pytest.raises(JobError, match="bad suite spec"):
            run_jobs(jobs, Engine())
