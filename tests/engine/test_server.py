"""The serve daemon: wire protocol, cross-connection sharing, shutdown."""

import json

import pytest

from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.io import bag_to_dict
from repro.server import ReproServer, ServeClient

AB = Schema(["A", "B"])
BC = Schema(["B", "C"])


def pair_jobs(mult=2):
    r = Bag.from_pairs(AB, [((1, 2), mult), ((2, 2), 1)])
    s = Bag.from_pairs(BC, [((2, 3), mult + 1)])
    return {"pairs": [[bag_to_dict(r), bag_to_dict(s)]]}


@pytest.fixture
def tcp_server():
    server = ReproServer()
    address = server.bind_tcp()
    server.serve_in_background()
    yield server, address
    server.shutdown()


class TestProtocol:
    def test_ping(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            assert client.request({"op": "ping"}) == {"ok": True, "op": "ping"}

    def test_batch_report_matches_cli_shape(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            response = client.request(pair_jobs())
            assert response["ok"]
            report = response["report"]
            assert report["pairs"] == [{"consistent": True}]
            assert "stats" in report and "store" in report

    def test_explicit_batch_op_accepted(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            response = client.request({"op": "batch", **pair_jobs()})
            assert response["ok"]

    def test_multiple_requests_per_connection(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            responses = client.request_many([pair_jobs(), pair_jobs(5)])
            assert all(r["ok"] for r in responses)

    def test_malformed_jobs_do_not_kill_the_connection(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            bad = client.request({"bogus": []})
            assert bad["ok"] is False
            assert "unknown batch job keys" in bad["error"]
            assert "\n" not in bad["error"]
            assert client.request({"op": "ping"})["ok"]

    def test_invalid_json_line_reported(self, tcp_server):
        import socket as socket_module

        _, address = tcp_server
        raw = socket_module.create_connection(address, timeout=10)
        with raw:
            raw.sendall(b"{this is not json}\n")
            response = json.loads(raw.makefile("rb").readline())
        assert response["ok"] is False
        assert "invalid JSON" in response["error"]

    def test_unknown_op_rejected(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            response = client.request({"op": "fly"})
            assert response["ok"] is False and "unknown op" in response["error"]


class TestSharedEngine:
    def test_second_connection_hits_the_first_connections_verdicts(
        self, tcp_server
    ):
        """The acceptance criterion: two serve connections posting
        value-equal but separately-encoded jobs share the store."""
        server, address = tcp_server
        with ServeClient(address) as first:
            first.request(pair_jobs())
        with ServeClient(address) as second:
            report = second.request(pair_jobs())["report"]
        assert report["stats"]["consistency_hits"] >= 1
        assert server.engine.store.hits >= 1

    def test_stats_endpoint_exposes_hit_rate_and_size(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            client.request(pair_jobs())
            client.request(pair_jobs())
            stats = client.request({"op": "stats"})
        assert stats["ok"]
        assert stats["store"]["entries"] >= 1
        assert 0.0 < stats["store"]["hit_rate"] <= 1.0
        assert stats["requests"] >= 3
        assert stats["batches"] == 2
        assert stats["uptime_seconds"] >= 0.0


class TestLifecycle:
    def test_shutdown_op_stops_the_server(self):
        server = ReproServer()
        address = server.bind_tcp()
        server.serve_in_background()
        with ServeClient(address) as client:
            response = client.request({"op": "shutdown"})
            assert response["ok"] and response["bye"]
        server.shutdown()  # idempotent
        with pytest.raises(OSError):
            ServeClient(address, timeout=0.5).request({"op": "ping"})

    def test_unix_socket_round_trip(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        server = ReproServer()
        assert server.bind_unix(path) == path
        server.serve_in_background()
        try:
            with ServeClient(path) as client:
                assert client.request(pair_jobs())["ok"]
                stats = client.request({"op": "stats"})
                assert stats["ok"] and stats["batches"] == 1
        finally:
            server.shutdown()

    def test_stale_socket_file_is_reclaimed(self, tmp_path):
        import socket as socket_module

        path = str(tmp_path / "stale.sock")
        # a killed daemon's leftover: a bound socket file nobody accepts on
        leftover = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        leftover.bind(path)
        leftover.close()
        server = ReproServer()
        assert server.bind_unix(path) == path
        server.serve_in_background()
        try:
            with ServeClient(path) as client:
                assert client.request({"op": "ping"})["ok"]
        finally:
            server.shutdown()

    def test_live_socket_is_not_stolen(self, tmp_path):
        path = str(tmp_path / "live.sock")
        first = ReproServer()
        first.bind_unix(path)
        first.serve_in_background()
        try:
            with pytest.raises(OSError):
                ReproServer().bind_unix(path)
            with ServeClient(path) as client:  # first daemon untouched
                assert client.request({"op": "ping"})["ok"]
        finally:
            first.shutdown()

    def test_cli_bind_failure_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "held.sock")
        holder = ReproServer()
        holder.bind_unix(path)
        holder.serve_in_background()
        try:
            assert main(["serve", "--socket", path]) == 2
            assert "cannot bind" in capsys.readouterr().err
        finally:
            holder.shutdown()

    def test_concurrent_connections_count_every_request(self):
        import threading

        server = ReproServer()
        address = server.bind_tcp()
        server.serve_in_background()
        per_thread, n_threads = 20, 4
        try:
            def hammer():
                with ServeClient(address) as client:
                    for _ in range(per_thread):
                        assert client.request({"op": "ping"})["ok"]

            threads = [
                threading.Thread(target=hammer) for _ in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServeClient(address) as client:
                stats = client.request({"op": "stats"})
        finally:
            server.shutdown()
        assert stats["requests"] == per_thread * n_threads + 1

    def test_serve_defaults_apply_to_every_batch(self):
        server = ReproServer(witnesses=True, method="auto")
        address = server.bind_tcp()
        server.serve_in_background()
        try:
            with ServeClient(address) as client:
                report = client.request(pair_jobs())["report"]
                assert "witness" in report["pairs"][0]
        finally:
            server.shutdown()
