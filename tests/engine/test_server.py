"""The serve daemon: wire protocol, cross-connection sharing, shutdown."""

import json

import pytest

from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.io import bag_to_dict
from repro.server import ReproServer, ServeClient

AB = Schema(["A", "B"])
BC = Schema(["B", "C"])


def pair_jobs(mult=2):
    r = Bag.from_pairs(AB, [((1, 2), mult), ((2, 2), 1)])
    s = Bag.from_pairs(BC, [((2, 3), mult + 1)])
    return {"pairs": [[bag_to_dict(r), bag_to_dict(s)]]}


@pytest.fixture
def tcp_server():
    server = ReproServer()
    address = server.bind_tcp()
    server.serve_in_background()
    yield server, address
    server.shutdown()


class TestProtocol:
    def test_ping(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            # the default daemon advertises v2 frames in its ping
            assert client.request({"op": "ping"}) == {
                "ok": True, "op": "ping", "wire": 2,
            }

    def test_batch_report_matches_cli_shape(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            response = client.request(pair_jobs())
            assert response["ok"]
            report = response["report"]
            assert report["pairs"] == [{"consistent": True}]
            assert "stats" in report and "store" in report

    def test_explicit_batch_op_accepted(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            response = client.request({"op": "batch", **pair_jobs()})
            assert response["ok"]

    def test_multiple_requests_per_connection(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            responses = client.request_many([pair_jobs(), pair_jobs(5)])
            assert all(r["ok"] for r in responses)

    def test_malformed_jobs_do_not_kill_the_connection(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            bad = client.request({"bogus": []})
            assert bad["ok"] is False
            assert "unknown batch job keys" in bad["error"]
            assert "\n" not in bad["error"]
            assert client.request({"op": "ping"})["ok"]

    def test_invalid_json_line_reported(self, tcp_server):
        import socket as socket_module

        _, address = tcp_server
        raw = socket_module.create_connection(address, timeout=10)
        with raw:
            raw.sendall(b"{this is not json}\n")
            response = json.loads(raw.makefile("rb").readline())
        assert response["ok"] is False
        assert "invalid JSON" in response["error"]

    def test_unknown_op_rejected(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            response = client.request({"op": "fly"})
            assert response["ok"] is False and "unknown op" in response["error"]


class TestSharedEngine:
    def test_second_connection_hits_the_first_connections_verdicts(
        self, tcp_server
    ):
        """The acceptance criterion: two serve connections posting
        value-equal but separately-encoded jobs share the store."""
        server, address = tcp_server
        with ServeClient(address) as first:
            first.request(pair_jobs())
        with ServeClient(address) as second:
            report = second.request(pair_jobs())["report"]
        assert report["stats"]["consistency_hits"] >= 1
        assert server.engine.store.hits >= 1

    def test_stats_endpoint_exposes_hit_rate_and_size(self, tcp_server):
        _, address = tcp_server
        with ServeClient(address) as client:
            client.request(pair_jobs())
            client.request(pair_jobs())
            stats = client.request({"op": "stats"})
        assert stats["ok"]
        assert stats["store"]["entries"] >= 1
        assert 0.0 < stats["store"]["hit_rate"] <= 1.0
        assert stats["requests"] >= 3
        assert stats["batches"] == 2
        assert stats["uptime_seconds"] >= 0.0


class TestLifecycle:
    def test_shutdown_op_stops_the_server(self):
        server = ReproServer()
        address = server.bind_tcp()
        server.serve_in_background()
        with ServeClient(address) as client:
            response = client.request({"op": "shutdown"})
            assert response["ok"] and response["bye"]
        server.shutdown()  # idempotent
        with pytest.raises(OSError):
            ServeClient(address, timeout=0.5).request({"op": "ping"})

    def test_unix_socket_round_trip(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        server = ReproServer()
        assert server.bind_unix(path) == path
        server.serve_in_background()
        try:
            with ServeClient(path) as client:
                assert client.request(pair_jobs())["ok"]
                stats = client.request({"op": "stats"})
                assert stats["ok"] and stats["batches"] == 1
        finally:
            server.shutdown()

    def test_stale_socket_file_is_reclaimed(self, tmp_path):
        import socket as socket_module

        path = str(tmp_path / "stale.sock")
        # a killed daemon's leftover: a bound socket file nobody accepts on
        leftover = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        leftover.bind(path)
        leftover.close()
        server = ReproServer()
        assert server.bind_unix(path) == path
        server.serve_in_background()
        try:
            with ServeClient(path) as client:
                assert client.request({"op": "ping"})["ok"]
        finally:
            server.shutdown()

    def test_live_socket_is_not_stolen(self, tmp_path):
        path = str(tmp_path / "live.sock")
        first = ReproServer()
        first.bind_unix(path)
        first.serve_in_background()
        try:
            with pytest.raises(OSError):
                ReproServer().bind_unix(path)
            with ServeClient(path) as client:  # first daemon untouched
                assert client.request({"op": "ping"})["ok"]
        finally:
            first.shutdown()

    def test_cli_bind_failure_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "held.sock")
        holder = ReproServer()
        holder.bind_unix(path)
        holder.serve_in_background()
        try:
            assert main(["serve", "--socket", path]) == 2
            assert "cannot bind" in capsys.readouterr().err
        finally:
            holder.shutdown()

    def test_concurrent_connections_count_every_request(self):
        import threading

        server = ReproServer()
        address = server.bind_tcp()
        server.serve_in_background()
        per_thread, n_threads = 20, 4
        try:
            def hammer():
                with ServeClient(address) as client:
                    for _ in range(per_thread):
                        assert client.request({"op": "ping"})["ok"]

            threads = [
                threading.Thread(target=hammer) for _ in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServeClient(address) as client:
                stats = client.request({"op": "stats"})
        finally:
            server.shutdown()
        assert stats["requests"] == per_thread * n_threads + 1

    def test_serve_defaults_apply_to_every_batch(self):
        server = ReproServer(witnesses=True, method="auto")
        address = server.bind_tcp()
        server.serve_in_background()
        try:
            with ServeClient(address) as client:
                report = client.request(pair_jobs())["report"]
                assert "witness" in report["pairs"][0]
        finally:
            server.shutdown()


class TestMultiClient:
    def test_overlapping_connections_all_answer(self):
        """True concurrency: N clients hold connections open and fire
        batches at the same time; every batch succeeds and the daemon
        counts every one."""
        import threading

        server = ReproServer()
        address = server.bind_tcp()
        server.serve_in_background()
        n_clients, per_client = 4, 5
        results: list[bool] = []
        lock = threading.Lock()
        try:
            barrier = threading.Barrier(n_clients)

            def hammer(mult):
                with ServeClient(address) as client:
                    barrier.wait()
                    for i in range(per_client):
                        ok = client.request(pair_jobs(mult + i))["ok"]
                        with lock:
                            results.append(ok)

            threads = [
                threading.Thread(target=hammer, args=(3 * k,))
                for k in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.stats()
        finally:
            server.shutdown()
        assert len(results) == n_clients * per_client and all(results)
        assert stats["batches"] == n_clients * per_client
        assert stats["connections"] == n_clients

    def test_connection_stats_fold_into_daemon_totals(self, tcp_server):
        """Each connection runs its own engine; the daemon's stats op
        aggregates live and closed connections."""
        server, address = tcp_server
        with ServeClient(address) as first:
            first.request(pair_jobs())
        with ServeClient(address) as second:
            second.request(pair_jobs())
            stats = second.request({"op": "stats"})
        assert stats["stats"]["consistency_queries"] >= 2
        assert stats["stats"]["consistency_hits"] >= 1  # cross-connection
        assert stats["connections"] >= 2
        # after both connections closed, nothing is lost (the handler
        # notices EOF asynchronously — wait for the fold)
        import time as time_module

        deadline = time_module.monotonic() + 5
        while time_module.monotonic() < deadline:
            final = server.stats()
            if final["active_connections"] == 0:
                break
            time_module.sleep(0.01)
        assert final["stats"]["consistency_queries"] >= 2
        assert final["active_connections"] == 0

    def test_per_connection_reports_describe_that_client(self, tcp_server):
        """The second client's first query is a *store* hit but its own
        engine's first query — hit ratios describe the client."""
        _, address = tcp_server
        with ServeClient(address) as first:
            warm = first.request(pair_jobs())["report"]
        assert warm["stats"]["consistency_hits"] == 0
        with ServeClient(address) as second:
            served = second.request(pair_jobs())["report"]
        assert served["stats"]["consistency_queries"] == 1
        assert served["stats"]["consistency_hits"] == 1

    def test_admission_cap_serializes_but_serves_everyone(self):
        import threading

        server = ReproServer(max_inflight=1)
        address = server.bind_tcp()
        server.serve_in_background()
        results = []
        lock = threading.Lock()
        try:
            def hit(mult):
                with ServeClient(address) as client:
                    ok = client.request(pair_jobs(mult))["ok"]
                    with lock:
                        results.append(ok)

            threads = [
                threading.Thread(target=hit, args=(k,)) for k in range(5)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.stats()
        finally:
            server.shutdown()
        assert all(results) and len(results) == 5
        assert stats["peak_inflight"] == 1
        assert stats["admission_refusals"] == 0

    def test_admission_timeout_refuses_with_one_line_error(self):
        """A batch that cannot be admitted within the timeout gets a
        structured refusal, not an unbounded queue slot."""
        import threading
        import time as time_module

        server = ReproServer(max_inflight=1, admission_timeout=0.05)
        # occupy the only slot directly
        assert server._admission.acquire(timeout=1)
        address = server.bind_tcp()
        server.serve_in_background()
        try:
            with ServeClient(address) as client:
                start = time_module.monotonic()
                response = client.request(pair_jobs())
                assert time_module.monotonic() - start < 5
            assert response["ok"] is False
            assert "server at capacity" in response["error"]
            assert server.stats()["admission_refusals"] == 1
            server._admission.release()
            with ServeClient(address) as client:
                assert client.request(pair_jobs())["ok"]
        finally:
            server._admission = threading.BoundedSemaphore(1)
            server.shutdown()

    def test_max_inflight_validated(self):
        import pytest as pytest_module

        from repro.errors import ReproError

        with pytest_module.raises(ReproError, match="max_inflight"):
            ReproServer(max_inflight=0)


class TestPersistentServe:
    def test_restarted_daemon_reopens_its_shards_warm(self, tmp_path):
        """The tentpole acceptance path: serve → shutdown → serve with
        the same --store-dir → repeat traffic answered from disk."""
        store_dir = str(tmp_path / "vstore")
        jobs = {"suites": [["planted-path", 4, 0], ["planted-triangle", 3, 1]]}

        first = ReproServer(store_dir=store_dir, shards=4)
        address = first.bind_tcp()
        first.serve_in_background()
        try:
            with ServeClient(address) as client:
                assert client.request(jobs)["ok"]
                cold = client.request({"op": "stats"})
        finally:
            first.shutdown()
        assert cold["store"]["persistent"]["shards"] == 4
        assert cold["store"]["persistent"]["disk_hits"] == 0

        second = ReproServer(store_dir=store_dir)
        address = second.bind_tcp()
        second.serve_in_background()
        try:
            with ServeClient(address) as client:
                report = client.request(jobs)["report"]
                warm = client.request({"op": "stats"})
        finally:
            second.shutdown()
        assert report["stats"]["global_hits"] == 2  # zero recomputes
        assert warm["store"]["persistent"]["disk_hits"] >= 2
        assert warm["store"]["persistent"]["records"] > 0

    def test_stats_op_reports_the_persistent_tier(self, tmp_path):
        server = ReproServer(store_dir=str(tmp_path / "vstore"))
        address = server.bind_tcp()
        server.serve_in_background()
        try:
            with ServeClient(address) as client:
                client.request(pair_jobs())
                client.request(pair_jobs())
                stats = client.request({"op": "stats"})
        finally:
            server.shutdown()
        persisted = stats["store"]["persistent"]
        assert persisted["shards"] >= 1
        assert persisted["records"] >= 1
        assert persisted["hot_hits"] >= 1  # second batch: hot, not disk
        assert "disk_bytes" in persisted and "disk_hits" in persisted

    def test_shutdown_flushes_the_write_behind_tail(self, tmp_path):
        """Verdicts buffered below flush_every must still be on disk
        after a clean shutdown."""
        from repro.store import PersistentVerdictStore

        store_dir = str(tmp_path / "vstore")
        server = ReproServer(store_dir=store_dir)
        address = server.bind_tcp()
        server.serve_in_background()
        try:
            with ServeClient(address) as client:
                assert client.request(pair_jobs())["ok"]
        finally:
            server.shutdown()
        store = PersistentVerdictStore(store_dir)
        try:
            persisted = store.stats_dict()["persistent"]
            assert persisted["records"] >= 1
            assert persisted["pending"] == 0
        finally:
            store.close()

    def test_cli_serve_announces_the_persistent_store(self, tmp_path, capsys):
        """`repro serve --store-dir` on a fresh dir prints the warm
        record count before binding (cheap smoke of the CLI path
        without running a daemon: bind failure path)."""
        from repro.cli import main

        store_dir = str(tmp_path / "vstore")
        held = ReproServer()
        path = str(tmp_path / "held.sock")
        held.bind_unix(path)
        held.serve_in_background()
        try:
            code = main([
                "serve", "--socket", path, "--store-dir", store_dir,
            ])
        finally:
            held.shutdown()
        captured = capsys.readouterr()
        assert code == 2  # socket already held -> usage error
        assert "persistent store at" in captured.out
        assert "0 records warm" in captured.out
