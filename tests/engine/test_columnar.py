"""Randomized cross-checks: columnar kernels vs the seed oracle.

The acceptance tests for the columnar backend: with ``MIN_ROWS`` forced
to 1 (so every bag takes the vectorized path), randomized sweeps over
schema shapes — including empty bags, empty and single-attribute
schemas, and multiplicities past int32 — must agree bit for bit with
the preserved seed paths (:mod:`repro.engine.reference`) and with every
Lemma 2 decider, and delete-to-zero live streams must keep snapshot
encodings exact.  Attribute names here are module-unique (``CA``,
``CB``, ...) so no index built by another test module — possibly with
an ineligibility verdict cached under the default ``MIN_ROWS`` — is
value-equal to ours.
"""

import random

import pytest

from repro.consistency.pairwise import (
    ALL_DECIDERS,
    are_consistent,
    consistency_witness,
)
from repro.consistency.witness import is_witness
from repro.core.bags import Bag
from repro.core.schema import Schema
from repro.engine import columnar
from repro.engine.fingerprint import MASK, content_sum, row_term
from repro.engine.live import LiveEngine
from repro.engine.reference import (
    seed_are_consistent,
    seed_bag_join,
    seed_consistency_witness,
    seed_marginal,
)
from repro.engine.session import Engine
from repro.errors import InconsistentError
from repro.workloads.generators import planted_stream, random_bag

needs_numpy = pytest.mark.skipif(
    not columnar.AVAILABLE, reason="columnar kernels need numpy"
)

SCHEMA_SHAPES = [
    (Schema(["CA", "CB"]), Schema(["CB", "CC"])),   # overlap on one attr
    (Schema(["CA", "CB"]), Schema(["CA", "CB"])),   # identical schemas
    (Schema(["CA", "CB", "CC"]), Schema(["CB"])),   # nested
    (Schema(["CA", "CB"]), Schema(["CC", "CD"])),   # disjoint (cartesian)
    (Schema(["CA"]), Schema(["CA"])),               # single attribute
    (Schema(["CA"]), Schema()),                     # one empty schema
    (Schema(), Schema()),                           # both empty
]


@pytest.fixture
def forced(monkeypatch):
    """Force the columnar path onto arbitrarily small bags."""
    monkeypatch.setattr(columnar, "MIN_ROWS", 1)


def random_pair(rng: random.Random) -> tuple[Bag, Bag]:
    left_schema, right_schema = SCHEMA_SHAPES[
        rng.randrange(len(SCHEMA_SHAPES))
    ]
    bags = []
    for schema in (left_schema, right_schema):
        if rng.random() < 0.15:
            bags.append(Bag.empty(schema))
        else:
            bags.append(
                random_bag(
                    schema,
                    rng,
                    domain_size=3,
                    n_tuples=rng.randint(1, 5),
                    max_multiplicity=4,
                )
            )
    return bags[0], bags[1]


@needs_numpy
class TestForcedSweep:
    """Every public operation on randomized shapes vs the seed oracle."""

    @pytest.mark.parametrize("seed", range(30))
    def test_deciders_marginals_joins_and_witnesses(self, forced, seed):
        rng = random.Random(9000 + seed)
        r, s = random_pair(rng)
        expected = seed_are_consistent(r, s)

        assert are_consistent(r, s) == expected
        for name, decider in ALL_DECIDERS:
            assert decider(r, s) == expected, name

        common = r.schema & s.schema
        for bag in (r, s):
            for target in (common, bag.schema, Schema()):
                assert bag.marginal(target) == seed_marginal(bag, target)

        assert r.bag_join(s) == seed_bag_join(r, s)

        if expected:
            witness = consistency_witness(r, s)
            assert is_witness([r, s], witness)
            # Theorem 5: support within |Supp R| + |Supp S|.
            assert len(witness.support()) <= (
                len(r.support()) + len(s.support())
            )
            assert seed_consistency_witness(r, s) is not None
        else:
            with pytest.raises(InconsistentError):
                consistency_witness(r, s)

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_row_path_bit_for_bit(self, forced, seed):
        """The same operations with columnar dispatch disabled must give
        identical objects — the fallback contract both ways."""
        rng = random.Random(9500 + seed)
        r, s = random_pair(rng)
        col_verdict = are_consistent(r, s)
        col_join = r.bag_join(s)
        with columnar.disabled():
            assert are_consistent(r, s) == col_verdict
            assert r.bag_join(s) == col_join

    def test_empty_bags_witness_is_the_empty_union_bag(self, forced):
        ab = Schema(["CA", "CB"])
        bc = Schema(["CB", "CC"])
        empty_ab, empty_bc = Bag.empty(ab), Bag.empty(bc)
        assert are_consistent(empty_ab, empty_bc)
        assert consistency_witness(empty_ab, empty_bc) == Bag.empty(ab | bc)

    def test_empty_versus_nonempty_raises(self, forced):
        ab = Schema(["CA", "CB"])
        bc = Schema(["CB", "CC"])
        nonempty = Bag.from_pairs(bc, [((0, 1), 2)])
        assert not are_consistent(Bag.empty(ab), nonempty)
        with pytest.raises(InconsistentError):
            consistency_witness(Bag.empty(ab), nonempty)

    def test_multiplicities_past_int32_stay_exact(self, forced):
        big = 1 << 40  # far past int32, comfortably inside int64
        ab = Schema(["CA", "CB"])
        bc = Schema(["CB", "CC"])
        r = Bag.from_pairs(ab, [((0, 1), big), ((2, 3), big + 7)])
        s = Bag.from_pairs(bc, [((1, 0), big), ((3, 2), big + 7)])
        assert are_consistent(r, s) == seed_are_consistent(r, s)
        witness = consistency_witness(r, s)
        assert is_witness([r, s], witness)
        assert r.bag_join(s) == seed_bag_join(r, s)

    def test_overflow_multiplicities_fall_back_exactly(self, forced):
        huge = 1 << 70  # past MAX_TOTAL: arbitrary-precision regime
        ab = Schema(["CA", "CB"])
        bc = Schema(["CB", "CC"])
        r = Bag.from_pairs(ab, [((0, 1), huge)])
        s = Bag.from_pairs(bc, [((1, 0), huge)])
        columnar.reset_kernel_stats()
        assert are_consistent(r, s) == seed_are_consistent(r, s)
        witness = consistency_witness(r, s)
        assert is_witness([r, s], witness)
        assert witness == seed_consistency_witness(r, s)
        stats = columnar.kernel_stats()
        assert stats["columnar_consistency"] == 0
        assert stats["row_consistency"] > 0


@needs_numpy
class TestLiveStreams:
    def test_delete_to_zero_stream_keeps_snapshots_exact(self, forced):
        schemas = [Schema(["CA", "CB"]), Schema(["CB", "CC"])]
        rng = random.Random(42)
        bags, transactions = planted_stream(
            schemas, rng, n_transactions=120, delete_probability=0.6
        )
        live = LiveEngine()
        handles = [live.add_bag(bag) for bag in bags]
        for transaction in transactions:
            for index, row, amount in transaction:
                handle = handles[index]
                current = dict(handle.bag().items()).get(row, 0)
                live.update(handle, row, current + amount)
        for handle, seed_bag in zip(handles, bags):
            snapshot = handle.bag()
            for target in (snapshot.schema, Schema(["CB"]), Schema()):
                assert snapshot.marginal(target) == seed_marginal(
                    snapshot, target
                )
        assert live.globally_consistent() == seed_are_consistent(
            handles[0].bag(), handles[1].bag()
        )


@needs_numpy
class TestFingerprintSum:
    @pytest.mark.parametrize("seed", range(5))
    def test_sum_u128_equals_the_python_loop(self, seed):
        rng = random.Random(7000 + seed)
        terms = [
            row_term((rng.randrange(1000),), rng.randint(1, 1 << 45))
            for _ in range(rng.randint(1, 200))
        ]
        expected = 0
        for term in terms:
            expected += term
        assert columnar.sum_u128(terms) == (expected & MASK)

    def test_content_sum_is_backend_invariant(self, forced):
        rng = random.Random(11)
        bag = random_bag(
            Schema(["CA", "CB"]), rng, domain_size=50, n_tuples=64
        )
        items = list(bag.items())
        with columnar.disabled():
            row_sum = content_sum(items)
        assert content_sum(items) == row_sum


class TestStatsAndFallback:
    def test_kernel_stats_shape(self):
        stats = columnar.kernel_stats()
        assert stats["numpy"] == columnar.AVAILABLE
        for op in (
            "marginals", "consistency", "witnesses",
            "joins", "semijoins", "fingerprints",
        ):
            assert f"columnar_{op}" in stats
            assert f"row_{op}" in stats
        assert "encodings" in stats
        assert Engine().kernel_stats() == columnar.kernel_stats()

    def test_disabled_context_forces_the_row_path(self):
        rng = random.Random(3)
        r = random_bag(Schema(["CA", "CB"]), rng, n_tuples=4)
        s = random_bag(Schema(["CB", "CC"]), rng, n_tuples=4)
        columnar.reset_kernel_stats()
        with columnar.disabled():
            assert are_consistent(r, s) == seed_are_consistent(r, s)
        stats = columnar.kernel_stats()
        assert stats["columnar_consistency"] == 0
        assert stats["row_consistency"] == 1

    @needs_numpy
    def test_counters_record_columnar_hits(self, monkeypatch):
        monkeypatch.setattr(columnar, "MIN_ROWS", 1)
        rng = random.Random(4)
        r = random_bag(Schema(["CA", "CB"]), rng, n_tuples=6)
        s = random_bag(Schema(["CB", "CC"]), rng, n_tuples=6)
        columnar.reset_kernel_stats()
        are_consistent(r, s)
        stats = columnar.kernel_stats()
        assert stats["columnar_consistency"] == 1
        assert stats["encodings"] >= 2


@needs_numpy
class TestColumnarDelta:
    def test_updates_track_a_plain_dict(self, forced):
        rng = random.Random(5)
        mults: dict[tuple, int] = {}
        delta = columnar.ColumnarDelta(("CA", "CB"), mults)
        for step in range(300):
            row = (rng.randrange(6), rng.randrange(6))
            new = rng.randrange(4)  # 0 deletes: the delete-to-zero path
            delta.update(row, new)
            if new:
                mults[row] = new
            else:
                mults.pop(row, None)
            if step % 50 == 49:
                snapshot = delta.snapshot()
                if snapshot is not None:
                    decoded = dict(
                        zip(snapshot.rows, snapshot.mults.tolist())
                    )
                    live = {
                        row: mult for row, mult in decoded.items() if mult
                    }
                    assert live == mults

    def test_overflow_disables_the_delta(self, forced):
        delta = columnar.ColumnarDelta(("CA",), {(0,): 1})
        delta.update((0,), columnar.MAX_TOTAL + 1)
        assert delta.snapshot() is None

    def test_stale_snapshot_survives_later_materialize(self, forced):
        # REVIEW regression: _materialize must rebind rows, not extend
        # the list an earlier snapshot still aliases.
        delta = columnar.ColumnarDelta(
            ("CA", "CB"), {(i, i + 1): 1 for i in range(8)}
        )
        first = delta.snapshot()
        assert first is not None
        delta.update((99, 100), 1)  # brand-new row: staged then appended
        second = delta.snapshot()
        assert second is not None
        assert len(first.rows) == 8
        assert first.marginal_table(("CA",)) == {(i,): 1 for i in range(8)}
        assert second.marginal_table(("CA",)) == {
            **{(i,): 1 for i in range(8)}, (99,): 1
        }


@needs_numpy
def test_interner_encode_is_thread_safe():
    # REVIEW regression: concurrent misses on one attribute must agree
    # on a single code per value (double-checked intern under the lock).
    import threading

    interner = columnar._Interner()
    values = [("payload", i) for i in range(3000)]
    results: dict[int, list[int]] = {}
    barrier = threading.Barrier(4)

    def work(tid: int) -> None:
        barrier.wait()
        results[tid] = interner.encode(values).tolist()

    threads = [
        threading.Thread(target=work, args=(tid,)) for tid in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    first = results[0]
    assert all(codes == first for codes in results.values())
    assert len(set(first)) == len(values)  # no code collisions
    decode = interner.decode_array()
    assert [decode[code] for code in first] == values


def test_content_sum_streams_unsized_iterables(forced):
    # REVIEW regression: generators take the streaming row path (no
    # list materialization) and agree bit for bit with the sized path.
    pairs = [((i, i), 1 + (i % 3)) for i in range(64)]
    assert content_sum(pair for pair in pairs) == content_sum(pairs)
